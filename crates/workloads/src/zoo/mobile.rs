//! Mobile-regime networks: MobileNet V1/V2/V3, NASNet-Mobile,
//! EfficientNetV2-S.

use super::net;
use crate::{Layer, Network, TensorOp};

fn conv(k: u64, c: u64, y: u64, x: u64, r: u64, s: u64, stride: u64) -> TensorOp {
    TensorOp::Conv2d {
        n: 1,
        k,
        c,
        y,
        x,
        r,
        s,
        stride,
    }
}

fn dw(c: u64, y: u64, x: u64, r: u64, s: u64, stride: u64) -> TensorOp {
    TensorOp::DepthwiseConv2d {
        n: 1,
        c,
        y,
        x,
        r,
        s,
        stride,
    }
}

fn pw(k: u64, c: u64, hw: u64) -> TensorOp {
    TensorOp::pointwise(1, k, c, hw, hw)
}

/// MobileNet V1 (224×224, ≈569 MMACs).
pub fn mobilenet_v1() -> Network {
    // (cin, cout, output spatial, stride, repeat)
    let blocks: [(u64, u64, u64, u64, u32); 9] = [
        (32, 64, 112, 1, 1),
        (64, 128, 56, 2, 1),
        (128, 128, 56, 1, 1),
        (128, 256, 28, 2, 1),
        (256, 256, 28, 1, 1),
        (256, 512, 14, 2, 1),
        (512, 512, 14, 1, 5),
        (512, 1024, 7, 2, 1),
        (1024, 1024, 7, 1, 1),
    ];
    let mut layers = vec![Layer::new("conv1", conv(32, 3, 112, 112, 3, 3, 2))];
    for (i, (cin, cout, hw, stride, rep)) in blocks.into_iter().enumerate() {
        layers.push(Layer::repeated(
            format!("dw{}", i + 1),
            dw(cin, hw, hw, 3, 3, stride),
            rep,
        ));
        layers.push(Layer::repeated(
            format!("pw{}", i + 1),
            pw(cout, cin, hw),
            rep,
        ));
    }
    layers.push(Layer::new(
        "fc",
        TensorOp::Gemm {
            m: 1,
            n: 1000,
            k: 1024,
        },
    ));
    net("MobileNet", layers)
}

/// An inverted-residual (MBConv) block: expand pointwise, depthwise,
/// project pointwise.
#[allow(clippy::too_many_arguments)]
fn mbconv(
    layers: &mut Vec<Layer>,
    tag: &str,
    cin: u64,
    cout: u64,
    expand: u64,
    hw: u64,
    kernel: u64,
    stride: u64,
    rep: u32,
) {
    let mid = cin * expand;
    if expand > 1 {
        layers.push(Layer::repeated(
            format!("{tag}_expand"),
            pw(mid, cin, hw * stride),
            rep,
        ));
    }
    layers.push(Layer::repeated(
        format!("{tag}_dw"),
        dw(mid, hw, hw, kernel, kernel, stride),
        rep,
    ));
    layers.push(Layer::repeated(
        format!("{tag}_project"),
        pw(cout, mid, hw),
        rep,
    ));
}

/// MobileNet V2 (224×224, ≈300 MMACs).
pub fn mobilenet_v2() -> Network {
    let mut layers = vec![Layer::new("conv1", conv(32, 3, 112, 112, 3, 3, 2))];
    mbconv(&mut layers, "b1", 32, 16, 1, 112, 3, 1, 1);
    mbconv(&mut layers, "b2a", 16, 24, 6, 56, 3, 2, 1);
    mbconv(&mut layers, "b2b", 24, 24, 6, 56, 3, 1, 1);
    mbconv(&mut layers, "b3a", 24, 32, 6, 28, 3, 2, 1);
    mbconv(&mut layers, "b3b", 32, 32, 6, 28, 3, 1, 2);
    mbconv(&mut layers, "b4a", 32, 64, 6, 14, 3, 2, 1);
    mbconv(&mut layers, "b4b", 64, 64, 6, 14, 3, 1, 3);
    mbconv(&mut layers, "b5", 64, 96, 6, 14, 3, 1, 3);
    mbconv(&mut layers, "b6a", 96, 160, 6, 7, 3, 2, 1);
    mbconv(&mut layers, "b6b", 160, 160, 6, 7, 3, 1, 2);
    mbconv(&mut layers, "b7", 160, 320, 6, 7, 3, 1, 1);
    layers.push(Layer::new("conv_last", pw(1280, 320, 7)));
    layers.push(Layer::new(
        "fc",
        TensorOp::Gemm {
            m: 1,
            n: 1000,
            k: 1280,
        },
    ));
    net("MobileNetV2", layers)
}

/// MobileNet V3-Large (224×224, ≈219 MMACs).
pub fn mobilenet_v3_large() -> Network {
    let mut layers = vec![Layer::new("conv1", conv(16, 3, 112, 112, 3, 3, 2))];
    mbconv(&mut layers, "b1", 16, 16, 1, 112, 3, 1, 1);
    mbconv(&mut layers, "b2", 16, 24, 4, 56, 3, 2, 1);
    mbconv(&mut layers, "b3", 24, 24, 3, 56, 3, 1, 1);
    mbconv(&mut layers, "b4", 24, 40, 3, 28, 5, 2, 1);
    mbconv(&mut layers, "b5", 40, 40, 3, 28, 5, 1, 2);
    mbconv(&mut layers, "b6", 40, 80, 6, 14, 3, 2, 1);
    mbconv(&mut layers, "b7", 80, 80, 3, 14, 3, 1, 3);
    mbconv(&mut layers, "b8", 80, 112, 6, 14, 3, 1, 2);
    mbconv(&mut layers, "b9", 112, 160, 6, 7, 5, 2, 1);
    mbconv(&mut layers, "b10", 160, 160, 6, 7, 5, 1, 2);
    layers.push(Layer::new("conv_last", pw(960, 160, 7)));
    layers.push(Layer::new(
        "fc1",
        TensorOp::Gemm {
            m: 1,
            n: 1280,
            k: 960,
        },
    ));
    layers.push(Layer::new(
        "fc2",
        TensorOp::Gemm {
            m: 1,
            n: 1000,
            k: 1280,
        },
    ));
    net("MobileNetV3-Large", layers)
}

/// MobileNet V3-Small (224×224, ≈56 MMACs).
pub fn mobilenet_v3_small() -> Network {
    let mut layers = vec![Layer::new("conv1", conv(16, 3, 112, 112, 3, 3, 2))];
    mbconv(&mut layers, "b1", 16, 16, 1, 56, 3, 2, 1);
    mbconv(&mut layers, "b2", 16, 24, 4, 28, 3, 2, 1);
    mbconv(&mut layers, "b3", 24, 24, 4, 28, 3, 1, 1);
    mbconv(&mut layers, "b4", 24, 40, 4, 14, 5, 2, 1);
    mbconv(&mut layers, "b5", 40, 40, 6, 14, 5, 1, 2);
    mbconv(&mut layers, "b6", 40, 48, 3, 14, 5, 1, 2);
    mbconv(&mut layers, "b7", 48, 96, 6, 7, 5, 2, 1);
    mbconv(&mut layers, "b8", 96, 96, 6, 7, 5, 1, 2);
    layers.push(Layer::new("conv_last", pw(576, 96, 7)));
    layers.push(Layer::new(
        "fc1",
        TensorOp::Gemm {
            m: 1,
            n: 1024,
            k: 576,
        },
    ));
    layers.push(Layer::new(
        "fc2",
        TensorOp::Gemm {
            m: 1,
            n: 1000,
            k: 1024,
        },
    ));
    net("MobileNetV3-Small", layers)
}

/// NASNet-Mobile (224×224, ≈564 MMACs). Normal/reduction cells are
/// approximated with their dominant separable convolutions.
pub fn nasnet_mobile() -> Network {
    let mut layers = vec![Layer::new("stem", conv(32, 3, 111, 111, 3, 3, 2))];
    // (tag, channels, spatial, cells)
    let stages: [(&str, u64, u64, u32); 3] =
        [("s1", 44, 56, 4), ("s2", 88, 28, 4), ("s3", 176, 14, 4)];
    for (tag, ch, hw, cells) in stages {
        // Each cell applies several separable 3x3/5x5 branches; collapse to
        // 2 dw+pw pairs (5x5 and 3x3) per cell.
        layers.push(Layer::repeated(
            format!("{tag}_dw5"),
            dw(ch, hw, hw, 5, 5, 1),
            cells,
        ));
        layers.push(Layer::repeated(format!("{tag}_pw5"), pw(ch, ch, hw), cells));
        layers.push(Layer::repeated(
            format!("{tag}_dw3"),
            dw(ch, hw, hw, 3, 3, 1),
            cells,
        ));
        layers.push(Layer::repeated(format!("{tag}_pw3"), pw(ch, ch, hw), cells));
        // Cell-boundary 1x1 adjust convs.
        layers.push(Layer::repeated(
            format!("{tag}_adjust"),
            pw(ch, ch * 2, hw),
            cells,
        ));
    }
    layers.push(Layer::new("final_pw", pw(352, 176, 7)));
    layers.push(Layer::new(
        "fc",
        TensorOp::Gemm {
            m: 1,
            n: 1000,
            k: 1056,
        },
    ));
    net("NASNetMobile", layers)
}

/// EfficientNetV2-S at 224×224 inference (≈2.9 GMACs). Early stages use
/// fused MBConv (a single dense conv), later stages regular MBConv.
pub fn efficientnet_v2_s() -> Network {
    let mut layers = vec![Layer::new("stem", conv(24, 3, 112, 112, 3, 3, 2))];
    // Fused-MBConv stages: (tag, cin, cout, expand, out spatial, stride, rep)
    let fused: [(&str, u64, u64, u64, u64, u64, u32); 3] = [
        ("f1", 24, 24, 1, 112, 1, 2),
        ("f2", 24, 48, 4, 56, 2, 4),
        ("f3", 48, 64, 4, 28, 2, 4),
    ];
    for (tag, cin, cout, expand, hw, stride, rep) in fused {
        layers.push(Layer::repeated(
            format!("{tag}_fused"),
            conv(cin * expand, cin, hw, hw, 3, 3, stride),
            rep,
        ));
        if expand > 1 {
            layers.push(Layer::repeated(
                format!("{tag}_project"),
                pw(cout, cin * expand, hw),
                rep,
            ));
        }
    }
    // Regular MBConv stages.
    mbconv(&mut layers, "m4", 64, 128, 4, 14, 3, 2, 6);
    mbconv(&mut layers, "m5", 128, 160, 6, 14, 3, 1, 9);
    mbconv(&mut layers, "m6", 160, 256, 6, 7, 3, 2, 15);
    layers.push(Layer::new("head_pw", pw(1280, 256, 7)));
    layers.push(Layer::new(
        "fc",
        TensorOp::Gemm {
            m: 1,
            n: 1000,
            k: 1280,
        },
    ));
    net("EfficientNetV2", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_macs() {
        let m = mobilenet_v1().total_macs() as f64 / 1e6;
        assert!((450.0..700.0).contains(&m), "mobilenet v1 MMACs {m}");
    }

    #[test]
    fn v2_macs() {
        let m = mobilenet_v2().total_macs() as f64 / 1e6;
        assert!((250.0..420.0).contains(&m), "mobilenet v2 MMACs {m}");
    }

    #[test]
    fn v3_ordering() {
        assert!(mobilenet_v3_small().total_macs() < mobilenet_v3_large().total_macs());
        assert!(mobilenet_v3_large().total_macs() < mobilenet_v1().total_macs());
    }

    #[test]
    fn nasnet_macs() {
        let m = nasnet_mobile().total_macs() as f64 / 1e6;
        assert!((200.0..900.0).contains(&m), "nasnet MMACs {m}");
    }

    #[test]
    fn efficientnet_macs() {
        let g = efficientnet_v2_s().total_macs() as f64 / 1e9;
        assert!((1.5..5.0).contains(&g), "efficientnetv2 GMACs {g}");
    }

    #[test]
    fn mobile_nets_have_depthwise() {
        for n in [mobilenet_v1(), mobilenet_v2(), nasnet_mobile()] {
            assert!(
                n.nests().any(|(nest, _)| nest.is_depthwise()),
                "{} lacks depthwise layers",
                n.name()
            );
        }
    }
}
