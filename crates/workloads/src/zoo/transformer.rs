//! Transformer workloads: BERT-Base and ViT-Base/16.

use super::net;
use crate::{Layer, Network, TensorOp};

fn gemm(m: u64, n: u64, k: u64) -> TensorOp {
    TensorOp::Gemm { m, n, k }
}

/// One transformer encoder stack: `layers` blocks of multi-head attention
/// (fused QKV + per-head score/context GEMMs + output projection) and a
/// two-layer feed-forward network.
fn encoder_stack(
    prefix: &str,
    seq: u64,
    hidden: u64,
    ffn: u64,
    heads: u64,
    blocks: u32,
) -> Vec<Layer> {
    let head_dim = hidden / heads;
    vec![
        Layer::repeated(
            format!("{prefix}_qkv"),
            gemm(seq, 3 * hidden, hidden),
            blocks,
        ),
        // Attention scores Q·Kᵀ per head: (seq × seq × head_dim) × heads,
        // folded into a single batched GEMM of depth head_dim and width
        // heads*seq.
        Layer::repeated(
            format!("{prefix}_scores"),
            gemm(seq, heads * seq, head_dim),
            blocks,
        ),
        // Context A·V per head.
        Layer::repeated(
            format!("{prefix}_context"),
            gemm(seq, heads * head_dim, seq),
            blocks,
        ),
        Layer::repeated(
            format!("{prefix}_attn_out"),
            gemm(seq, hidden, hidden),
            blocks,
        ),
        Layer::repeated(format!("{prefix}_ffn_up"), gemm(seq, ffn, hidden), blocks),
        Layer::repeated(format!("{prefix}_ffn_down"), gemm(seq, hidden, ffn), blocks),
    ]
}

/// BERT-Base (12 layers, hidden 768, sequence length 128, ≈11 GMACs).
pub fn bert_base() -> Network {
    let mut layers = encoder_stack("enc", 128, 768, 3072, 12, 12);
    layers.push(Layer::new("pooler", gemm(1, 768, 768)));
    net("Bert", layers)
}

/// ViT-Base/16 at 224×224 (197 tokens, 12 layers, ≈17 GMACs).
pub fn vit_base() -> Network {
    let mut layers = vec![Layer::new(
        "patch_embed",
        TensorOp::Conv2d {
            n: 1,
            k: 768,
            c: 3,
            y: 14,
            x: 14,
            r: 16,
            s: 16,
            stride: 16,
        },
    )];
    layers.extend(encoder_stack("enc", 197, 768, 3072, 12, 12));
    layers.push(Layer::new("head", gemm(1, 1000, 768)));
    net("VIT", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_macs() {
        let g = bert_base().total_macs() as f64 / 1e9;
        assert!((9.0..16.0).contains(&g), "bert GMACs {g}");
    }

    #[test]
    fn vit_macs() {
        let g = vit_base().total_macs() as f64 / 1e9;
        assert!((13.0..25.0).contains(&g), "vit GMACs {g}");
    }

    #[test]
    fn vit_has_patch_conv() {
        let n = vit_base();
        assert_eq!(n.layers()[0].name(), "patch_embed");
        assert_eq!(n.layers()[0].op().kind(), "conv");
    }

    #[test]
    fn encoder_block_counts() {
        // 12 blocks x 6 gemm kinds, collapsed into 6 repeated entries.
        let stack = encoder_stack("e", 128, 768, 3072, 12, 12);
        assert_eq!(stack.len(), 6);
        assert!(stack.iter().all(|l| l.repeat() == 12));
    }
}
