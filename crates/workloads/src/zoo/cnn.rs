//! Classic convolutional classifiers: ResNet-50, VGG-16, Xception,
//! ConvNeXt-Tiny.

use super::net;
use crate::{Layer, Network, TensorOp};

#[allow(clippy::too_many_arguments)]
fn conv(n: u64, k: u64, c: u64, y: u64, x: u64, r: u64, s: u64, stride: u64) -> TensorOp {
    TensorOp::Conv2d {
        n,
        k,
        c,
        y,
        x,
        r,
        s,
        stride,
    }
}

fn dw(c: u64, y: u64, x: u64, r: u64, s: u64, stride: u64) -> TensorOp {
    TensorOp::DepthwiseConv2d {
        n: 1,
        c,
        y,
        x,
        r,
        s,
        stride,
    }
}

/// ResNet-50 for 224×224 ImageNet inference (≈4.1 GMACs).
pub fn resnet50() -> Network {
    let mut layers = vec![Layer::new("conv1", conv(1, 64, 3, 112, 112, 7, 7, 2))];
    // (stage, spatial, mid channels, out channels, blocks)
    let stages: [(u32, u64, u64, u64, u32); 4] = [
        (2, 56, 64, 256, 3),
        (3, 28, 128, 512, 4),
        (4, 14, 256, 1024, 6),
        (5, 7, 512, 2048, 3),
    ];
    let mut in_ch = 64;
    for (stage, hw, mid, out, blocks) in stages {
        // Projection shortcut on the first block of each stage.
        layers.push(Layer::new(
            format!("s{stage}_proj"),
            TensorOp::pointwise(1, out, in_ch, hw, hw),
        ));
        layers.push(Layer::new(
            format!("s{stage}_b1_reduce"),
            TensorOp::pointwise(1, mid, in_ch, hw, hw),
        ));
        layers.push(Layer::new(
            format!("s{stage}_b1_conv3"),
            conv(1, mid, mid, hw, hw, 3, 3, 1),
        ));
        layers.push(Layer::new(
            format!("s{stage}_b1_expand"),
            TensorOp::pointwise(1, out, mid, hw, hw),
        ));
        if blocks > 1 {
            layers.push(Layer::repeated(
                format!("s{stage}_reduce"),
                TensorOp::pointwise(1, mid, out, hw, hw),
                blocks - 1,
            ));
            layers.push(Layer::repeated(
                format!("s{stage}_conv3"),
                conv(1, mid, mid, hw, hw, 3, 3, 1),
                blocks - 1,
            ));
            layers.push(Layer::repeated(
                format!("s{stage}_expand"),
                TensorOp::pointwise(1, out, mid, hw, hw),
                blocks - 1,
            ));
        }
        in_ch = out;
    }
    layers.push(Layer::new(
        "fc",
        TensorOp::Gemm {
            m: 1,
            n: 1000,
            k: 2048,
        },
    ));
    net("ResNet", layers)
}

/// VGG-16 for 224×224 inference (≈15.5 GMACs).
pub fn vgg16() -> Network {
    let blocks: [(u64, u64, u64, u32); 5] = [
        (64, 3, 224, 1),
        (128, 64, 112, 1),
        (256, 128, 56, 2),
        (512, 256, 28, 2),
        (512, 512, 14, 2),
    ];
    let mut layers = Vec::new();
    for (i, (k, c, hw, extra)) in blocks.into_iter().enumerate() {
        layers.push(Layer::new(
            format!("b{}_conv_in", i + 1),
            conv(1, k, c, hw, hw, 3, 3, 1),
        ));
        layers.push(Layer::repeated(
            format!("b{}_conv", i + 1),
            conv(1, k, k, hw, hw, 3, 3, 1),
            extra,
        ));
    }
    layers.push(Layer::new(
        "fc6",
        TensorOp::Gemm {
            m: 1,
            n: 4096,
            k: 512 * 49,
        },
    ));
    layers.push(Layer::new(
        "fc7",
        TensorOp::Gemm {
            m: 1,
            n: 4096,
            k: 4096,
        },
    ));
    layers.push(Layer::new(
        "fc8",
        TensorOp::Gemm {
            m: 1,
            n: 1000,
            k: 4096,
        },
    ));
    net("VGG", layers)
}

/// Xception for 299×299 inference (≈4.6 GMACs), separable convolutions.
pub fn xception() -> Network {
    let mut layers = vec![
        Layer::new("entry_conv1", conv(1, 32, 3, 149, 149, 3, 3, 2)),
        Layer::new("entry_conv2", conv(1, 64, 32, 147, 147, 3, 3, 1)),
    ];
    // Entry flow separable blocks: (channels_in, channels_out, spatial).
    let entry: [(u64, u64, u64); 3] = [(64, 128, 147), (128, 256, 74), (256, 728, 37)];
    for (i, (cin, cout, hw)) in entry.into_iter().enumerate() {
        layers.push(Layer::new(
            format!("entry_b{}_dw1", i + 1),
            dw(cin, hw, hw, 3, 3, 1),
        ));
        layers.push(Layer::new(
            format!("entry_b{}_pw1", i + 1),
            TensorOp::pointwise(1, cout, cin, hw, hw),
        ));
        layers.push(Layer::new(
            format!("entry_b{}_dw2", i + 1),
            dw(cout, hw, hw, 3, 3, 1),
        ));
        layers.push(Layer::new(
            format!("entry_b{}_pw2", i + 1),
            TensorOp::pointwise(1, cout, cout, hw, hw),
        ));
        layers.push(Layer::new(
            format!("entry_b{}_skip", i + 1),
            conv(1, cout, cin, hw / 2, hw / 2, 1, 1, 1),
        ));
    }
    // Middle flow: 8 identical blocks of 3 separable convs at 19×19×728.
    layers.push(Layer::repeated("mid_dw", dw(728, 19, 19, 3, 3, 1), 24));
    layers.push(Layer::repeated(
        "mid_pw",
        TensorOp::pointwise(1, 728, 728, 19, 19),
        24,
    ));
    // Exit flow.
    layers.push(Layer::new("exit_dw1", dw(728, 19, 19, 3, 3, 1)));
    layers.push(Layer::new(
        "exit_pw1",
        TensorOp::pointwise(1, 1024, 728, 19, 19),
    ));
    layers.push(Layer::new("exit_dw2", dw(1024, 10, 10, 3, 3, 1)));
    layers.push(Layer::new(
        "exit_pw2",
        TensorOp::pointwise(1, 1536, 1024, 10, 10),
    ));
    layers.push(Layer::new("exit_dw3", dw(1536, 10, 10, 3, 3, 1)));
    layers.push(Layer::new(
        "exit_pw3",
        TensorOp::pointwise(1, 2048, 1536, 10, 10),
    ));
    layers.push(Layer::new(
        "fc",
        TensorOp::Gemm {
            m: 1,
            n: 1000,
            k: 2048,
        },
    ));
    net("Xception", layers)
}

/// ConvNeXt-Tiny for 224×224 inference (≈2.2 GMACs).
pub fn convnext_tiny() -> Network {
    let mut layers = vec![Layer::new("stem", conv(1, 96, 3, 56, 56, 4, 4, 4))];
    // (stage, dim, spatial, depth)
    let stages: [(u32, u64, u64, u32); 4] = [
        (1, 96, 56, 3),
        (2, 192, 28, 3),
        (3, 384, 14, 9),
        (4, 768, 7, 3),
    ];
    let mut prev_dim = 96;
    for (stage, dim, hw, depth) in stages {
        if stage > 1 {
            layers.push(Layer::new(
                format!("s{stage}_downsample"),
                conv(1, dim, prev_dim, hw, hw, 2, 2, 2),
            ));
        }
        layers.push(Layer::repeated(
            format!("s{stage}_dw7"),
            dw(dim, hw, hw, 7, 7, 1),
            depth,
        ));
        layers.push(Layer::repeated(
            format!("s{stage}_pw_expand"),
            TensorOp::pointwise(1, dim * 4, dim, hw, hw),
            depth,
        ));
        layers.push(Layer::repeated(
            format!("s{stage}_pw_project"),
            TensorOp::pointwise(1, dim, dim * 4, hw, hw),
            depth,
        ));
        prev_dim = dim;
    }
    layers.push(Layer::new(
        "head",
        TensorOp::Gemm {
            m: 1,
            n: 1000,
            k: 768,
        },
    ));
    net("ConvNeXt", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_layer_count_and_macs() {
        let n = resnet50();
        assert!(n.len() > 20);
        let g = n.total_macs() as f64 / 1e9;
        assert!((3.0..6.0).contains(&g), "resnet50 GMACs {g}");
    }

    #[test]
    fn vgg_macs() {
        let g = vgg16().total_macs() as f64 / 1e9;
        assert!((12.0..18.0).contains(&g), "vgg16 GMACs {g}");
    }

    #[test]
    fn xception_has_depthwise() {
        let n = xception();
        assert!(n.nests().any(|(nest, _)| nest.is_depthwise()));
        let g = n.total_macs() as f64 / 1e9;
        assert!((2.0..10.0).contains(&g), "xception GMACs {g}");
    }

    #[test]
    fn convnext_macs() {
        let g = convnext_tiny().total_macs() as f64 / 1e9;
        assert!((1.5..5.0).contains(&g), "convnext GMACs {g}");
    }
}
