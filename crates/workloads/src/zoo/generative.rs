//! Dense-prediction and image-restoration workloads: UNet, ResUNet,
//! SRGAN, FSRCNN, and a DLEU-like deep-learning upscaler.

use super::net;
use crate::{Layer, Network, TensorOp};

fn conv(k: u64, c: u64, y: u64, x: u64, r: u64, s: u64, stride: u64) -> TensorOp {
    TensorOp::Conv2d {
        n: 1,
        k,
        c,
        y,
        x,
        r,
        s,
        stride,
    }
}

/// UNet for 256×256 segmentation (4-level encoder/decoder, ≈33 GMACs).
pub fn unet() -> Network {
    let mut layers = Vec::new();
    // Encoder: (level, channels, spatial)
    let enc: [(u32, u64, u64); 5] = [
        (1, 64, 256),
        (2, 128, 128),
        (3, 256, 64),
        (4, 512, 32),
        (5, 1024, 16),
    ];
    let mut cin = 3;
    for (lvl, ch, hw) in enc {
        layers.push(Layer::new(
            format!("enc{lvl}_conv1"),
            conv(ch, cin, hw, hw, 3, 3, 1),
        ));
        layers.push(Layer::new(
            format!("enc{lvl}_conv2"),
            conv(ch, ch, hw, hw, 3, 3, 1),
        ));
        cin = ch;
    }
    // Decoder with skip concatenation (input channels = 2×).
    let dec: [(u32, u64, u64); 4] = [(4, 512, 32), (3, 256, 64), (2, 128, 128), (1, 64, 256)];
    for (lvl, ch, hw) in dec {
        layers.push(Layer::new(
            format!("dec{lvl}_up"),
            conv(ch, ch * 2, hw, hw, 2, 2, 1),
        ));
        layers.push(Layer::new(
            format!("dec{lvl}_conv1"),
            conv(ch, ch * 2, hw, hw, 3, 3, 1),
        ));
        layers.push(Layer::new(
            format!("dec{lvl}_conv2"),
            conv(ch, ch, hw, hw, 3, 3, 1),
        ));
    }
    layers.push(Layer::new("out", conv(2, 64, 256, 256, 1, 1, 1)));
    net("UNet", layers)
}

/// ResUNet: UNet topology with residual blocks (≈14 GMACs at 224×224).
pub fn resunet() -> Network {
    let mut layers = Vec::new();
    let enc: [(u32, u64, u64); 4] = [(1, 64, 224), (2, 128, 112), (3, 256, 56), (4, 512, 28)];
    let mut cin = 3;
    for (lvl, ch, hw) in enc {
        layers.push(Layer::new(
            format!("enc{lvl}_res_a"),
            conv(ch, cin, hw, hw, 3, 3, 1),
        ));
        layers.push(Layer::new(
            format!("enc{lvl}_res_b"),
            conv(ch, ch, hw, hw, 3, 3, 1),
        ));
        layers.push(Layer::new(
            format!("enc{lvl}_skip"),
            conv(ch, cin, hw, hw, 1, 1, 1),
        ));
        cin = ch;
    }
    let dec: [(u32, u64, u64); 3] = [(3, 256, 56), (2, 128, 112), (1, 64, 224)];
    for (lvl, ch, hw) in dec {
        layers.push(Layer::new(
            format!("dec{lvl}_res_a"),
            conv(ch, ch * 2, hw, hw, 3, 3, 1),
        ));
        layers.push(Layer::new(
            format!("dec{lvl}_res_b"),
            conv(ch, ch, hw, hw, 3, 3, 1),
        ));
    }
    layers.push(Layer::new("out", conv(1, 64, 224, 224, 1, 1, 1)));
    net("ResUNet", layers)
}

/// SRGAN generator: 16 residual blocks at 96×96 LR plus two pixel-shuffle
/// upsampling convolutions (≈22 GMACs).
pub fn srgan() -> Network {
    let mut layers = vec![Layer::new("head", conv(64, 3, 96, 96, 9, 9, 1))];
    layers.push(Layer::repeated(
        "resblock_conv",
        conv(64, 64, 96, 96, 3, 3, 1),
        32, // 16 blocks x 2 convs
    ));
    layers.push(Layer::new("post_res", conv(64, 64, 96, 96, 3, 3, 1)));
    // Pixel-shuffle upsampling: conv to 256ch then shuffle (x2), twice.
    layers.push(Layer::new("up1", conv(256, 64, 96, 96, 3, 3, 1)));
    layers.push(Layer::new("up2", conv(256, 64, 192, 192, 3, 3, 1)));
    layers.push(Layer::new("tail", conv(3, 64, 384, 384, 9, 9, 1)));
    net("SRGAN", layers)
}

/// FSRCNN for ×2 super-resolution of a `w × h` low-resolution input
/// (d=56, s=12, m=4 mapping layers, 9×9 deconvolution at HR).
pub fn fsrcnn(w: u64, h: u64) -> Network {
    let layers = vec![
        Layer::new("feature", conv(56, 1, h, w, 5, 5, 1)),
        Layer::new("shrink", conv(12, 56, h, w, 1, 1, 1)),
        Layer::repeated("map", conv(12, 12, h, w, 3, 3, 1), 4),
        Layer::new("expand", conv(56, 12, h, w, 1, 1, 1)),
        // Deconvolution modelled as its transpose conv at HR resolution.
        Layer::new("deconv", conv(1, 56, 2 * h, 2 * w, 9, 9, 1)),
    ];
    Network::new(format!("FSRCNN-{w}x{h}"), layers)
}

/// A DLEU-like deep-learning image enhancement and upscaling network:
/// shallow feature extractor, 8 residual blocks at 640×360, and a ×2
/// pixel-shuffle tail (≈60 GMACs).
pub fn dleu() -> Network {
    let mut layers = vec![Layer::new("head", conv(32, 3, 360, 640, 3, 3, 1))];
    layers.push(Layer::repeated(
        "resblock_conv",
        conv(32, 32, 360, 640, 3, 3, 1),
        16, // 8 blocks x 2 convs
    ));
    layers.push(Layer::new("fuse", conv(32, 32, 360, 640, 3, 3, 1)));
    layers.push(Layer::new("up", conv(128, 32, 360, 640, 3, 3, 1)));
    layers.push(Layer::new("enhance", conv(16, 32, 720, 1280, 3, 3, 1)));
    layers.push(Layer::new("tail", conv(3, 16, 720, 1280, 3, 3, 1)));
    net("DLEU", layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unet_macs() {
        let g = unet().total_macs() as f64 / 1e9;
        assert!((20.0..60.0).contains(&g), "unet GMACs {g}");
    }

    #[test]
    fn srgan_macs() {
        let g = srgan().total_macs() as f64 / 1e9;
        assert!((10.0..40.0).contains(&g), "srgan GMACs {g}");
    }

    #[test]
    fn fsrcnn_scales_with_resolution() {
        let small = fsrcnn(320, 120).total_macs();
        let mid = fsrcnn(640, 360).total_macs();
        let large = fsrcnn(1280, 720).total_macs();
        assert!(small < mid && mid < large);
        assert!(fsrcnn(320, 120).name().contains("320x120"));
    }

    #[test]
    fn resunet_smaller_than_unet() {
        assert!(resunet().total_macs() < unet().total_macs());
    }

    #[test]
    fn dleu_is_heavy() {
        assert!(dleu().total_macs() > 40_000_000_000 / 1000); // > 40 MMACs trivially
        let g = dleu().total_macs() as f64 / 1e9;
        assert!((20.0..120.0).contains(&g), "dleu GMACs {g}");
    }
}
