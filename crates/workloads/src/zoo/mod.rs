//! Layer tables for every network in the paper's evaluation.
//!
//! Each constructor returns a [`Network`] whose layers carry faithful
//! operator dimensions for batch-1 inference. Identical repeated blocks are
//! collapsed via [`Layer::repeated`] so per-layer mapping search runs once
//! per unique shape.
//!
//! The registry functions at the bottom ([`by_name`], [`all`],
//! [`edge_suite`], …) group networks the way the paper's experiments use
//! them.

mod cnn;
mod generative;
mod mobile;
mod transformer;

pub use cnn::{convnext_tiny, resnet50, vgg16, xception};
pub use generative::{dleu, fsrcnn, resunet, srgan, unet};
pub use mobile::{
    efficientnet_v2_s, mobilenet_v1, mobilenet_v2, mobilenet_v3_large, mobilenet_v3_small,
    nasnet_mobile,
};
pub use transformer::{bert_base, vit_base};

use crate::{Layer, Network};

/// Looks a network up by its paper-table name (case-insensitive).
///
/// Recognized names include `bert`, `mobilenet`, `mobilenetv2`,
/// `mobilenetv3-large`, `mobilenetv3-small`, `resnet`, `srgan`, `unet`,
/// `vit`, `xception`, `vgg`, `nasnetmobile`, `efficientnetv2`, `convnext`,
/// `resunet`, `fsrcnn`, and `dleu`.
pub fn by_name(name: &str) -> Option<Network> {
    let key = name.to_ascii_lowercase().replace(['_', ' '], "-");
    Some(match key.as_str() {
        "bert" | "bert-base" => bert_base(),
        "mobilenet" | "mobilenetv1" => mobilenet_v1(),
        "mobilenetv2" => mobilenet_v2(),
        "mobilenetv3-large" => mobilenet_v3_large(),
        "mobilenetv3-small" => mobilenet_v3_small(),
        "resnet" | "resnet50" => resnet50(),
        "srgan" => srgan(),
        "unet" => unet(),
        "vit" | "vit-base" => vit_base(),
        "xception" => xception(),
        "vgg" | "vgg16" => vgg16(),
        "nasnetmobile" => nasnet_mobile(),
        "efficientnetv2" | "efficientnetv2-s" => efficientnet_v2_s(),
        "convnext" | "convnext-tiny" => convnext_tiny(),
        "resunet" => resunet(),
        "fsrcnn" => fsrcnn(320, 120),
        "dleu" => dleu(),
        _ => return None,
    })
}

/// Every network in the zoo.
pub fn all() -> Vec<Network> {
    vec![
        bert_base(),
        mobilenet_v1(),
        mobilenet_v2(),
        mobilenet_v3_large(),
        mobilenet_v3_small(),
        resnet50(),
        srgan(),
        unet(),
        vit_base(),
        xception(),
        vgg16(),
        nasnet_mobile(),
        efficientnet_v2_s(),
        convnext_tiny(),
        resunet(),
        fsrcnn(320, 120),
        dleu(),
    ]
}

/// The seven networks of Tables 1 and 2.
pub fn edge_suite() -> Vec<Network> {
    vec![
        bert_base(),
        mobilenet_v1(),
        resnet50(),
        srgan(),
        unet(),
        vit_base(),
        xception(),
    ]
}

/// Fig. 8 training set: {UNet, SRGAN, BERT}.
pub fn robustness_train_suite() -> Vec<Network> {
    vec![unet(), srgan(), bert_base()]
}

/// Fig. 8 validation set: {ResNet, ResUNet, ViT, MobileNet}.
pub fn robustness_validation_suite() -> Vec<Network> {
    vec![resnet50(), resunet(), vit_base(), mobilenet_v1()]
}

/// Fig. 9 training set: {MobileNetV2, ResNet, SRGAN, VGG}.
pub fn generalization_train_suite() -> Vec<Network> {
    vec![mobilenet_v2(), resnet50(), srgan(), vgg16()]
}

/// Fig. 9 validation set: the eight unseen networks.
pub fn generalization_validation_suite() -> Vec<Network> {
    vec![
        unet(),
        vit_base(),
        xception(),
        mobilenet_v3_large(),
        mobilenet_v3_small(),
        nasnet_mobile(),
        efficientnet_v2_s(),
        convnext_tiny(),
    ]
}

/// Fig. 11 industrial suite: UNet, FSRCNN at three resolutions, DLEU.
pub fn ascend_suite() -> Vec<Network> {
    vec![
        unet(),
        fsrcnn(320, 120),
        fsrcnn(640, 360),
        fsrcnn(1280, 720),
        dleu(),
    ]
}

pub(crate) fn net(name: &str, layers: Vec<Layer>) -> Network {
    Network::new(name, layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_all_names() {
        for n in [
            "BERT",
            "MobileNet",
            "MobileNetV2",
            "MobileNetV3-Large",
            "mobilenetv3_small",
            "ResNet",
            "SRGAN",
            "UNet",
            "ViT",
            "Xception",
            "VGG",
            "NASNetMobile",
            "EfficientNetV2",
            "ConvNeXt",
            "ResUNet",
            "FSRCNN",
            "DLEU",
        ] {
            assert!(by_name(n).is_some(), "missing network {n}");
        }
        assert!(by_name("nonexistent-net").is_none());
    }

    #[test]
    fn all_networks_nonempty_and_distinctly_named() {
        let nets = all();
        assert!(nets.len() >= 17);
        let mut names: Vec<_> = nets.iter().map(|n| n.name().to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), nets.len(), "duplicate network names");
        for n in &nets {
            assert!(n.total_macs() > 0);
        }
    }

    #[test]
    fn suites_match_paper_cardinality() {
        assert_eq!(edge_suite().len(), 7);
        assert_eq!(robustness_train_suite().len(), 3);
        assert_eq!(robustness_validation_suite().len(), 4);
        assert_eq!(generalization_train_suite().len(), 4);
        assert_eq!(generalization_validation_suite().len(), 8);
        assert_eq!(ascend_suite().len(), 5);
    }

    #[test]
    fn mac_magnitudes_are_plausible() {
        // Sanity-check the layer tables against published MAC counts
        // (order of magnitude only).
        let gmacs = |n: Network| n.total_macs() as f64 / 1e9;
        assert!((0.4..1.0).contains(&gmacs(mobilenet_v1())), "mnv1");
        assert!((0.2..0.5).contains(&gmacs(mobilenet_v2())), "mnv2");
        assert!((3.0..6.0).contains(&gmacs(resnet50())), "resnet50");
        assert!((10.0..20.0).contains(&gmacs(vgg16())), "vgg16");
        assert!((10.0..25.0).contains(&gmacs(bert_base())), "bert");
        assert!((10.0..25.0).contains(&gmacs(vit_base())), "vit");
    }
}
