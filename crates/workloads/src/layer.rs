//! Named layers: a tensor operator with a name and repeat count.

use std::fmt;

use crate::ops::TensorOp;

/// A named layer of a network: one tensor operator, possibly repeated
/// (identical blocks are stored once with a `repeat` count).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layer {
    name: String,
    op: TensorOp,
    repeat: u32,
}

impl Layer {
    /// Creates a layer executed once.
    pub fn new(name: impl Into<String>, op: TensorOp) -> Self {
        Self::repeated(name, op, 1)
    }

    /// Creates a layer executed `repeat` times.
    ///
    /// # Panics
    ///
    /// Panics if `repeat == 0`.
    pub fn repeated(name: impl Into<String>, op: TensorOp, repeat: u32) -> Self {
        assert!(repeat > 0, "layer repeat count must be positive");
        Layer {
            name: name.into(),
            op,
            repeat,
        }
    }

    /// Layer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tensor operator.
    pub fn op(&self) -> &TensorOp {
        &self.op
    }

    /// How many times this layer executes in one network inference.
    pub fn repeat(&self) -> u32 {
        self.repeat
    }

    /// Total MACs contributed by this layer (op MACs × repeat).
    pub fn total_macs(&self) -> u64 {
        self.op.macs() * u64::from(self.repeat)
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.repeat > 1 {
            write!(f, "{} x{}: {}", self.name, self.repeat, self.op)
        } else {
            write!(f, "{}: {}", self.name, self.op)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_scales_macs() {
        let op = TensorOp::Gemm { m: 4, n: 4, k: 4 };
        let l = Layer::repeated("ffn", op, 12);
        assert_eq!(l.total_macs(), 64 * 12);
        assert_eq!(l.repeat(), 12);
        assert_eq!(l.name(), "ffn");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_repeat_panics() {
        let _ = Layer::repeated("bad", TensorOp::Gemm { m: 1, n: 1, k: 1 }, 0);
    }

    #[test]
    fn display_shows_repeat() {
        let op = TensorOp::Gemm { m: 4, n: 4, k: 4 };
        assert!(format!("{}", Layer::repeated("a", op, 2)).contains("x2"));
        assert!(!format!("{}", Layer::new("a", op)).contains("x1"));
    }
}
