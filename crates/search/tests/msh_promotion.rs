//! Property tests for the modified-successive-halving promotion rule
//! (`promotion_quota` + `select_by_keys`): the AUC-reserved slots never
//! exceed `p`, the dedup top-up always fills exactly `k` slots, and
//! `auc_fraction = 0` degrades to pure terminal-value selection.

use proptest::prelude::*;

use unico_search::sh::{promotion_quota, select_by_keys};

fn keys() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((0.0f64..100.0, 0.0f64..1.0), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    fn quota_respects_bounds(n in 1usize..200, frac in 0.0f64..1.0) {
        let (k, p) = promotion_quota(n, frac);
        prop_assert!(k >= 1);
        prop_assert!(k <= n.max(1));
        prop_assert!(p < k, "AUC slots must leave room for at least one TV slot");
        prop_assert!(p <= (frac * n as f64).floor() as usize);
    }

    fn auc_slots_never_exceed_p(pairs in keys(), frac in 0.0f64..1.0) {
        let tv: Vec<f64> = pairs.iter().map(|&(t, _)| t).collect();
        let auc: Vec<f64> = pairs.iter().map(|&(_, a)| a).collect();
        let (k, p) = promotion_quota(pairs.len(), frac);
        let sel = select_by_keys(&tv, &auc, k, p);
        prop_assert!(sel.promoted_by_auc <= p);
        prop_assert!(sel.selected.iter().all(|&i| i < pairs.len()));
    }

    fn dedup_top_up_fills_exactly_k(pairs in keys(), frac in 0.0f64..1.0) {
        let tv: Vec<f64> = pairs.iter().map(|&(t, _)| t).collect();
        // Adversarial AUC keys: constant, so the AUC pass prefers
        // candidates that duplicate the TV picks and the top-up must
        // backfill.
        let auc = vec![0.5; pairs.len()];
        let (k, p) = promotion_quota(pairs.len(), frac);
        let sel = select_by_keys(&tv, &auc, k, p);
        prop_assert_eq!(sel.selected.len(), k.min(pairs.len()));
        let mut uniq = sel.selected.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), sel.selected.len(), "no duplicate survivors");
    }

    fn plain_sh_matches_pure_tv_selection(pairs in keys()) {
        let tv: Vec<f64> = pairs.iter().map(|&(t, _)| t).collect();
        let auc: Vec<f64> = pairs.iter().map(|&(_, a)| a).collect();
        let (k, p) = promotion_quota(pairs.len(), 0.0);
        prop_assert_eq!(p, 0, "auc_fraction = 0 reserves no AUC slots");
        let sel = select_by_keys(&tv, &auc, k, p);
        prop_assert_eq!(sel.promoted_by_auc, 0);

        // The survivors' TVs must be exactly the k smallest TVs
        // (multiset comparison tolerates tie reordering).
        let mut chosen: Vec<f64> = sel.selected.iter().map(|&i| tv[i]).collect();
        chosen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut all = tv.clone();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(&chosen[..], &all[..k.min(all.len())]);
    }

    fn selection_invariant_under_frac(pairs in keys(), frac in 0.0f64..1.0) {
        // Whatever the split, the TV-best candidate always survives.
        let tv: Vec<f64> = pairs.iter().map(|&(t, _)| t).collect();
        let auc: Vec<f64> = pairs.iter().map(|&(_, a)| a).collect();
        let (k, p) = promotion_quota(pairs.len(), frac);
        let sel = select_by_keys(&tv, &auc, k, p);
        let best = tv
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        prop_assert!(
            sel.selected.iter().any(|&i| tv[i] == tv[best]),
            "the terminal-value champion must always be promoted"
        );
    }
}
