//! Cross-method integration test: every outer-loop search driver runs on
//! the same tiny environment and produces structurally valid results.

use unico_model::{Platform, SpatialPlatform};
use unico_search::{
    run_hasco, run_hyperband, run_mobohb, run_nsga2, CoSearchEnv, CoSearchResult, EnvConfig,
    HascoConfig, HyperbandConfig, MobohbConfig, Nsga2Config,
};
use unico_workloads::zoo;

fn env(p: &SpatialPlatform) -> CoSearchEnv<'_, SpatialPlatform> {
    CoSearchEnv::new(
        p,
        &[zoo::mobilenet_v1()],
        EnvConfig {
            max_layers_per_network: 1,
            power_cap_mw: Some(2_000.0),
            area_cap_mm2: None,
        },
    )
}

fn check(name: &str, res: &CoSearchResult<unico_model::HwConfig>, p: &SpatialPlatform) {
    assert!(res.hw_evals > 0, "{name}: no evaluations");
    assert!(res.wall_clock_s > 0.0, "{name}: no cost charged");
    assert!(!res.trace.points().is_empty(), "{name}: empty trace");
    // Cost axis is monotone.
    let secs: Vec<f64> = res.trace.points().iter().map(|pt| pt.seconds).collect();
    assert!(
        secs.windows(2).all(|w| w[1] >= w[0]),
        "{name}: time went backwards"
    );
    // Front entries respect the power cap and are mutually non-dominated.
    let objs = res.front.objectives();
    for y in &objs {
        assert_eq!(y.len(), 3, "{name}: objective dim");
        assert!(y[1] <= 2_000.0, "{name}: power cap violated");
    }
    for i in 0..objs.len() {
        for j in 0..objs.len() {
            if i != j {
                assert!(
                    !unico_surrogate::pareto::dominates(&objs[i], &objs[j]),
                    "{name}: dominated point on front"
                );
            }
        }
    }
    // Every front payload is a real in-space configuration.
    for (_, hw) in res.front.iter() {
        let g = p.space().encode_genome(hw);
        assert_eq!(p.space().decode(&g), *hw, "{name}: off-space design");
        assert!(p.area_mm2(hw) > 0.0);
    }
}

#[test]
fn all_baselines_produce_valid_results() {
    let p = SpatialPlatform::edge();
    let e = env(&p);

    let hasco = run_hasco(
        &e,
        &HascoConfig {
            iterations: 6,
            inner_budget: 24,
            candidate_pool: 16,
            warmup: 2,
            ..HascoConfig::default()
        },
    );
    check("hasco", &hasco, &p);
    assert_eq!(hasco.hw_evals, 6);

    let nsga = run_nsga2(
        &e,
        &Nsga2Config {
            population: 6,
            generations: 2,
            inner_budget: 24,
            ..Nsga2Config::default()
        },
    );
    check("nsga2", &nsga, &p);

    let mobohb = run_mobohb(
        &e,
        &MobohbConfig {
            iterations: 2,
            batch: 6,
            b_max: 24,
            candidate_pool: 16,
            ..MobohbConfig::default()
        },
    );
    check("mobohb", &mobohb, &p);

    let hb = run_hyperband(
        &e,
        &HyperbandConfig {
            b_max: 9,
            eta: 3,
            rounds: 1,
            ..HyperbandConfig::default()
        },
    );
    check("hyperband", &hb, &p);

    // Cost ordering: HASCO's full-budget sequential loop is the most
    // expensive per hardware evaluation.
    let per_eval = |r: &CoSearchResult<unico_model::HwConfig>| r.wall_clock_s / r.hw_evals as f64;
    assert!(
        per_eval(&hasco) > per_eval(&mobohb),
        "SH must make MOBOHB cheaper per eval than HASCO"
    );
    assert!(
        per_eval(&hasco) > per_eval(&hb),
        "Hyperband brackets must be cheaper per eval than HASCO"
    );
}

#[test]
fn mapping_tool_choice_flows_through_the_env() {
    use unico_model::MappingTool;
    use unico_search::{Counter, Telemetry};
    for tool in [
        MappingTool::Annealing,
        MappingTool::Genetic,
        MappingTool::QLearning,
        MappingTool::Gradient,
    ] {
        let steps_before = Telemetry::global().get(Counter::GradientSteps);
        let p = SpatialPlatform::edge().with_mapping_tool(tool);
        let e = env(&p);
        let res = run_mobohb(
            &e,
            &MobohbConfig {
                iterations: 1,
                batch: 4,
                b_max: 24,
                candidate_pool: 8,
                random_fraction: 1.0,
                ..MobohbConfig::default()
            },
        );
        assert_eq!(res.hw_evals, 4, "{tool:?}");
        // The gradient tool (and only it) books descent steps into the
        // global telemetry; the analytical surrogate supports it, so a
        // 24-eval session must take at least one step.
        let steps = Telemetry::global().get(Counter::GradientSteps) - steps_before;
        if tool == MappingTool::Gradient {
            assert!(steps > 0, "gradient tool booked no descent steps");
        } else {
            assert_eq!(steps, 0, "{tool:?} booked gradient steps");
        }
    }
}

#[test]
fn edp_objective_flows_through_the_env() {
    use unico_model::MappingObjective;
    let p = SpatialPlatform::edge().with_objective(MappingObjective::Edp);
    let e = env(&p);
    let res = run_mobohb(
        &e,
        &MobohbConfig {
            iterations: 1,
            batch: 6,
            b_max: 32,
            candidate_pool: 8,
            random_fraction: 1.0,
            ..MobohbConfig::default()
        },
    );
    check("mobohb-edp", &res, &p);
}
