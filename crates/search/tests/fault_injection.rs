//! Fault-injected successive halving at the engine level: a worker
//! panic injected into round 0 must be contained by the engine, poison
//! the afflicted sessions so they assess infeasible, and still let the
//! round — and the whole SH run — complete with healthy finalists.

use rand::rngs::StdRng;
use rand::SeedableRng;

use unico_model::{Platform, SpatialPlatform};
use unico_search::sh::{self, ShConfig};
use unico_search::telemetry::{Counter, Telemetry};
use unico_search::{
    CoSearchEnv, EnvConfig, FaultContext, FaultKind, FaultPlan, HwSession, MappingEngine,
    RetryPolicy,
};
use unico_workloads::zoo;

fn test_env(p: &SpatialPlatform) -> CoSearchEnv<'_, SpatialPlatform> {
    CoSearchEnv::new(
        p,
        &[zoo::mobilenet_v1()],
        EnvConfig {
            max_layers_per_network: 1,
            power_cap_mw: None,
            area_cap_mm2: None,
        },
    )
}

fn sessions<'e>(
    env: &'e CoSearchEnv<'e, SpatialPlatform>,
    n: usize,
) -> Vec<HwSession<'e, SpatialPlatform>> {
    let mut rng = StdRng::seed_from_u64(17);
    (0..n)
        .map(|i| env.session(env.platform().sample_hw(&mut rng), i as u64))
        .collect()
}

#[test]
fn worker_panic_poisons_session_and_round_completes() {
    let p = SpatialPlatform::edge();
    let env = test_env(&p);
    let mut ss = sessions(&env, 8);

    // Panic sessions 2 and 5 in round 0 (engine batch 0).
    let plan = FaultPlan::new()
        .with_fault(0, 2, FaultKind::WorkerPanic)
        .with_fault(0, 5, FaultKind::WorkerPanic);
    let ctx = FaultContext::new(plan, RetryPolicy::default());
    let engine = MappingEngine::new(4);
    let telemetry = Telemetry::new();

    let out = sh::run_with_engine_faulted(
        &mut ss,
        &ShConfig::modified(64),
        &engine,
        &telemetry,
        Some(&ctx),
    );

    // The run completed every round despite the panics.
    assert_eq!(out.round_budgets.len(), 3);
    assert_eq!(*out.round_budgets.last().unwrap(), 64);
    assert_eq!(out.finalists.len(), 2);
    assert_eq!(out.contained_panics, 2);

    // The panicked sessions are poisoned and score infeasible; panics
    // never retry.
    for &i in &[2usize, 5] {
        assert!(ss[i].is_poisoned(), "session {i} must be poisoned");
        assert!(ss[i].assess().is_none(), "session {i} must be infeasible");
        assert_eq!(ss[i].terminal_value(), f64::INFINITY);
    }
    assert!(
        out.finalists.iter().all(|&i| i != 2 && i != 5),
        "poisoned sessions must not be promoted to finalists"
    );

    // The engine contained both panics without losing its workers, and
    // telemetry mirrors the containment.
    let m = engine.metrics();
    assert_eq!(m.panics_contained, 2);
    assert_eq!(m.threads_spawned, 4, "workers survive contained panics");
    // `engine_panics` in the run report is derived from this engine
    // metric by the outer loop; the pool itself records the fault
    // counters.
    assert_eq!(telemetry.get(Counter::FaultPanics), 2);
    assert_eq!(telemetry.get(Counter::FaultsInjected), 2);
    assert_eq!(telemetry.get(Counter::FaultRetries), 0);
    assert_eq!(telemetry.get(Counter::FaultQuarantines), 0);

    // Healthy sessions were unaffected: finalists ran to the full
    // budget and assess feasibly (no power/area caps in this env).
    for &i in &out.finalists {
        assert_eq!(ss[i].spent(), 64);
        assert!(ss[i].assess().is_some());
    }
}

#[test]
fn engine_survives_panics_across_consecutive_rounds() {
    let p = SpatialPlatform::edge();
    let env = test_env(&p);
    let mut ss = sessions(&env, 8);

    // One panic per round; the victim session index differs per round
    // (later rounds advance only survivors, so plant on all indices).
    let mut plan = FaultPlan::new();
    for batch in 0..3u64 {
        for session in 0..8usize {
            plan = plan.with_fault(batch, session, FaultKind::WorkerPanic);
        }
    }
    let ctx = FaultContext::new(plan, RetryPolicy::default());
    let engine = MappingEngine::new(4);
    let telemetry = Telemetry::new();

    let out = sh::run_with_engine_faulted(
        &mut ss,
        &ShConfig::modified(64),
        &engine,
        &telemetry,
        Some(&ctx),
    );

    // Every selected session panicked in every round, yet SH still ran
    // all rounds to completion on the same engine.
    assert_eq!(out.round_budgets.len(), 3);
    assert!(out.contained_panics >= 8, "round 0 poisons all 8");
    let m = engine.metrics();
    assert_eq!(m.panics_contained, out.contained_panics);
    assert_eq!(telemetry.get(Counter::FaultPanics), out.contained_panics);
    assert_eq!(m.threads_spawned, 4);
    // With everything poisoned, promotion still fills its quota and the
    // finalists exist (infeasible, but the algorithm never wedges).
    assert_eq!(out.finalists.len(), 2);
    assert!(ss.iter().all(|s| s.is_poisoned()));
    assert!(ss.iter().all(|s| s.assess().is_none()));
}
