//! Multi-objective BOHB baseline (MOBOHB): batched Bayesian optimization
//! with *vanilla* successive halving and all-sample surrogate updates.
//!
//! The contrast with UNICO is deliberate and matches the paper's Fig. 7
//! discussion: MOBOHB shares the batch + SH skeleton but uses plain SH
//! (terminal value only) and feeds every evaluated sample back into the
//! surrogate, without UNICO's AUC promotion or high-fidelity selection.

use rand::rngs::StdRng;
use rand::SeedableRng;

use unico_model::{EvalCache, Platform};
use unico_surrogate::pareto::ParetoFront;
use unico_surrogate::scalarize::{normalize_columns, parego, sample_simplex, DEFAULT_RHO};
use unico_surrogate::{select_batch, AcquisitionKind, GaussianProcess, KernelKind};

use crate::engine::MappingEngine;
use crate::env::{CoSearchEnv, HwSession};
use crate::sh::{self, ShConfig};
use crate::telemetry::Telemetry;
use crate::trace::{SearchTrace, SimClock};
use crate::CoSearchResult;

/// MOBOHB configuration.
#[derive(Debug, Clone, Copy)]
pub struct MobohbConfig {
    /// Outer iterations.
    pub iterations: usize,
    /// Hardware candidates sampled per iteration.
    pub batch: usize,
    /// Maximum per-job mapping-search budget (`b_max`).
    pub b_max: u64,
    /// Fraction of each batch drawn uniformly at random (BOHB's
    /// model-free exploration share).
    pub random_fraction: f64,
    /// Candidate pool size for the acquisition.
    pub candidate_pool: usize,
    /// RNG seed.
    pub seed: u64,
    /// Parallel workers for cost accounting.
    pub workers: u32,
}

impl Default for MobohbConfig {
    fn default() -> Self {
        MobohbConfig {
            iterations: 12,
            batch: 12,
            b_max: 300,
            random_fraction: 0.33,
            candidate_pool: 192,
            seed: 0,
            workers: 16,
        }
    }
}

/// Runs the MOBOHB baseline.
///
/// # Panics
///
/// Panics if `batch == 0`.
pub fn run_mobohb<P: Platform>(
    env: &CoSearchEnv<'_, P>,
    cfg: &MobohbConfig,
) -> CoSearchResult<P::Hw>
where
    P::Hw: Send,
{
    assert!(cfg.batch > 0, "batch must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut clock = SimClock::new(cfg.workers);
    let mut trace = SearchTrace::new();
    let mut front: ParetoFront<P::Hw> = ParetoFront::new();
    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<Vec<f64>> = Vec::new();
    let mut hw_evals = 0usize;
    // One worker pool for all iterations; SH rounds reuse its threads.
    let engine = MappingEngine::new((cfg.workers as usize).max(1));
    let cache_start = env.platform().eval_cache().map(EvalCache::stats);

    for iter in 0..cfg.iterations {
        // --- Assemble the batch: model-guided + random shares. ---
        let n_random = ((cfg.batch as f64) * cfg.random_fraction).ceil() as usize;
        let n_model = cfg.batch.saturating_sub(n_random);
        let mut batch_hw: Vec<P::Hw> = Vec::with_capacity(cfg.batch);
        if n_model > 0 && xs.len() >= 4 {
            let weights = sample_simplex(&mut rng, 3);
            let normalized = normalize_columns(&ys);
            let targets: Vec<f64> = normalized
                .iter()
                .map(|y| parego(y, &weights, DEFAULT_RHO))
                .collect();
            let best = targets.iter().copied().fold(f64::INFINITY, f64::min);
            let mut gp = GaussianProcess::new(KernelKind::Matern52, env.platform().feature_dim());
            if gp.fit(&xs, &targets, &mut rng).is_ok() {
                clock.charge_sequential(2.0);
                let pool: Vec<P::Hw> = (0..cfg.candidate_pool)
                    .map(|_| env.platform().sample_hw(&mut rng))
                    .collect();
                let feats: Vec<Vec<f64>> = pool.iter().map(|h| env.platform().encode(h)).collect();
                let picks = select_batch(
                    gp,
                    &feats,
                    best,
                    AcquisitionKind::ExpectedImprovement,
                    n_model,
                );
                for i in picks {
                    batch_hw.push(pool[i].clone());
                }
            }
        }
        while batch_hw.len() < cfg.batch {
            batch_hw.push(env.platform().sample_hw(&mut rng));
        }

        // --- Vanilla successive halving over the batch. ---
        let mut sessions: Vec<HwSession<'_, P>> = batch_hw
            .into_iter()
            .enumerate()
            .map(|(i, hw)| env.session(hw, cfg.seed.wrapping_add((iter * 131 + i) as u64)))
            .collect();
        sh::run_with_engine(
            &mut sessions,
            &ShConfig::plain(cfg.b_max),
            &engine,
            Telemetry::global(),
        );
        let cpu: f64 = sessions.iter().map(HwSession::cost_seconds).sum();
        clock.charge(cpu, (cfg.batch * env.num_jobs()) as u32);
        hw_evals += sessions.len();

        // --- All-sample surrogate update + front maintenance. ---
        for s in &sessions {
            if let Some(a) = s.assess() {
                let obj = a.objectives();
                xs.push(env.platform().encode(s.hw()));
                ys.push(obj.clone());
                front.offer(obj, s.hw().clone());
            }
        }
        // Bound the GP training set to the newest points.
        const GP_CAP: usize = 400;
        if xs.len() > GP_CAP {
            let drop = xs.len() - GP_CAP;
            xs.drain(..drop);
            ys.drain(..drop);
        }
        trace.record(clock.seconds(), front.objectives());
    }

    if let (Some(cache), Some(start)) = (env.platform().eval_cache(), cache_start) {
        Telemetry::global().add_cache_stats(cache.stats().delta_since(&start));
    }

    CoSearchResult {
        front,
        wall_clock_s: clock.seconds(),
        trace,
        hw_evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvConfig;
    use unico_model::SpatialPlatform;
    use unico_workloads::zoo;

    #[test]
    fn mobohb_runs_with_sh_savings() {
        let p = SpatialPlatform::edge();
        let env = CoSearchEnv::new(
            &p,
            &[zoo::mobilenet_v1()],
            EnvConfig {
                max_layers_per_network: 1,
                power_cap_mw: None,
                area_cap_mm2: None,
            },
        );
        let cfg = MobohbConfig {
            iterations: 3,
            batch: 8,
            b_max: 32,
            candidate_pool: 32,
            ..MobohbConfig::default()
        };
        let res = run_mobohb(&env, &cfg);
        assert_eq!(res.hw_evals, 24);
        assert_eq!(res.trace.points().len(), 3);
        assert!(!res.front.is_empty());
        // SH means not every candidate consumed the full budget, so the
        // total cost must be below the no-early-stopping worst case.
        let full_cost_one_iter = 8.0 * 32.0 * 1.0; // batch x b_max x 1 s
        let worst = 3.0 * full_cost_one_iter / res.wall_clock_s.max(1e-9);
        assert!(worst > 1.0, "SH should save cost");
    }

    #[test]
    fn deterministic_under_seed() {
        let p = SpatialPlatform::edge();
        let env = CoSearchEnv::new(
            &p,
            &[zoo::mobilenet_v1()],
            EnvConfig {
                max_layers_per_network: 1,
                power_cap_mw: None,
                area_cap_mm2: None,
            },
        );
        let cfg = MobohbConfig {
            iterations: 2,
            batch: 6,
            b_max: 16,
            candidate_pool: 16,
            seed: 9,
            ..MobohbConfig::default()
        };
        let a = run_mobohb(&env, &cfg);
        let b = run_mobohb(&env, &cfg);
        assert_eq!(a.front.objectives(), b.front.objectives());
    }
}
