//! The persistent mapping-search execution engine.
//!
//! The paper's §3.5 master/slave execution model keeps a fixed set of
//! slave machines alive for the whole co-search and streams software
//! mapping jobs at them. The seed implementation instead tore down and
//! respawned its entire worker pool (`crossbeam::thread::scope`) on
//! every successive-halving round of every MOBO iteration, putting
//! thread churn on the critical path. [`MappingEngine`] is the
//! long-lived counterpart: it spawns its workers **once** (per
//! `Unico::run` / co-search session), feeds them through a job queue,
//! and keeps them parked between batches.
//!
//! Properties:
//!
//! * **Spawn once.** [`EngineMetrics::threads_spawned`] stays at the
//!   pool width for the engine's whole lifetime, across any number of
//!   [`MappingEngine::execute`] batches.
//! * **Panic containment.** A panicking job is caught inside the
//!   worker; the batch completes, the panic is counted, and the caller
//!   can mark the offending session infeasible instead of aborting the
//!   whole run (see [`crate::advance_with_engine`]).
//! * **Graceful shutdown.** Dropping the engine wakes all workers and
//!   joins them.
//!
//! # Safety
//!
//! [`MappingEngine::execute`] accepts jobs that borrow caller state
//! (hardware sessions live only as long as their environment). The
//! borrow is erased to `'static` so the boxed closures can cross into
//! the long-lived workers; this is sound because `execute` blocks until
//! every submitted job has finished running (or panicked and been
//! caught) — the canonical scoped-threadpool argument. The `unsafe` is
//! confined to one documented function below.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A job with its borrow lifetime still attached.
pub type ScopedJob<'s> = Box<dyn FnOnce() + Send + 's>;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Completion latch shared by all jobs of one `execute` batch.
struct Batch {
    remaining: Mutex<usize>,
    done: Condvar,
    panics: AtomicU64,
}

/// State shared between the master handle and the workers.
struct Shared {
    queue: Mutex<VecDeque<(Job, Arc<Batch>)>>,
    ready: Condvar,
    shutdown: AtomicBool,
    jobs_executed: AtomicU64,
    panics_contained: AtomicU64,
    batches: AtomicU64,
}

/// Counter snapshot of a [`MappingEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Worker threads spawned over the engine's lifetime. Equals the
    /// pool width forever — the engine never respawns.
    pub threads_spawned: u64,
    /// Jobs executed (including ones that panicked).
    pub jobs_executed: u64,
    /// Panics caught inside workers.
    pub panics_contained: u64,
    /// `execute` batches processed.
    pub batches: u64,
}

/// A long-lived worker pool for software-mapping jobs.
pub struct MappingEngine {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for MappingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappingEngine")
            .field("workers", &self.handles.len())
            .field("metrics", &self.metrics())
            .finish()
    }
}

impl MappingEngine {
    /// Spawns `workers` threads that live until the engine is dropped.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "engine needs at least one worker");
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            jobs_executed: AtomicU64::new(0),
            panics_contained: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("unico-mapping-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn mapping worker")
            })
            .collect();
        MappingEngine { shared, handles }
    }

    /// Pool width.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Lifetime counters.
    pub fn metrics(&self) -> EngineMetrics {
        EngineMetrics {
            threads_spawned: self.handles.len() as u64,
            jobs_executed: self.shared.jobs_executed.load(Ordering::Relaxed),
            panics_contained: self.shared.panics_contained.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
        }
    }

    /// Runs a batch of jobs on the pool and blocks until every job has
    /// finished. Jobs may borrow caller state: the borrow outlives all
    /// uses because this method does not return before the last job
    /// completes. Returns the number of jobs that panicked (each panic
    /// is contained inside its worker).
    pub fn execute(&self, jobs: Vec<ScopedJob<'_>>) -> u64 {
        if jobs.is_empty() {
            return 0;
        }
        self.shared.batches.fetch_add(1, Ordering::Relaxed);
        let batch = Arc::new(Batch {
            remaining: Mutex::new(jobs.len()),
            done: Condvar::new(),
            panics: AtomicU64::new(0),
        });
        {
            let mut queue = self.shared.queue.lock().expect("engine queue lock");
            for job in jobs {
                queue.push_back((erase_job_lifetime(job), Arc::clone(&batch)));
            }
        }
        self.shared.ready.notify_all();
        let mut remaining = batch.remaining.lock().expect("batch latch lock");
        while *remaining > 0 {
            remaining = batch.done.wait(remaining).expect("batch latch wait");
        }
        batch.panics.load(Ordering::Relaxed)
    }
}

impl Drop for MappingEngine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.ready.notify_all();
        for handle in self.handles.drain(..) {
            // Workers contain job panics themselves; a join error would
            // mean a bug in the worker loop. Shutdown still proceeds.
            let _ = handle.join();
        }
    }
}

/// Erases a job's borrow lifetime so it can enter the long-lived queue.
///
/// # Safety
///
/// Sound only because [`MappingEngine::execute`] blocks until the job
/// has run to completion (or panicked and been caught) before
/// returning, so the erased borrows strictly outlive every use. The
/// two trait-object types differ only in lifetime and share one layout.
#[allow(unsafe_code)]
fn erase_job_lifetime(job: ScopedJob<'_>) -> Job {
    unsafe { std::mem::transmute::<ScopedJob<'_>, Job>(job) }
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("engine queue lock");
            loop {
                if let Some(task) = queue.pop_front() {
                    break Some(task);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.ready.wait(queue).expect("engine queue wait");
            }
        };
        let Some((job, batch)) = task else {
            return;
        };
        let outcome = catch_unwind(AssertUnwindSafe(job));
        shared.jobs_executed.fetch_add(1, Ordering::Relaxed);
        if outcome.is_err() {
            shared.panics_contained.fetch_add(1, Ordering::Relaxed);
            batch.panics.fetch_add(1, Ordering::Relaxed);
        }
        let mut remaining = batch.remaining.lock().expect("batch latch lock");
        *remaining -= 1;
        if *remaining == 0 {
            batch.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executes_all_jobs_and_blocks_until_done() {
        let engine = MappingEngine::new(4);
        let hits = AtomicUsize::new(0);
        let jobs: Vec<ScopedJob<'_>> = (0..64)
            .map(|_| {
                let hits = &hits;
                Box::new(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as ScopedJob<'_>
            })
            .collect();
        let panics = engine.execute(jobs);
        assert_eq!(panics, 0);
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn threads_spawn_once_across_batches() {
        let engine = MappingEngine::new(3);
        for _ in 0..10 {
            let jobs: Vec<ScopedJob<'_>> =
                (0..7).map(|_| Box::new(|| ()) as ScopedJob<'_>).collect();
            engine.execute(jobs);
        }
        let m = engine.metrics();
        assert_eq!(m.threads_spawned, 3, "no per-batch respawn");
        assert_eq!(m.batches, 10);
        assert_eq!(m.jobs_executed, 70);
    }

    #[test]
    fn contains_panics_and_keeps_serving() {
        let engine = MappingEngine::new(2);
        let ok = AtomicUsize::new(0);
        let jobs: Vec<ScopedJob<'_>> = (0..8)
            .map(|i| {
                let ok = &ok;
                Box::new(move || {
                    if i % 2 == 0 {
                        panic!("job {i} exploded");
                    }
                    ok.fetch_add(1, Ordering::Relaxed);
                }) as ScopedJob<'_>
            })
            .collect();
        let panics = engine.execute(jobs);
        assert_eq!(panics, 4);
        assert_eq!(ok.load(Ordering::Relaxed), 4);
        // The pool still works after contained panics.
        let again: Vec<ScopedJob<'_>> = vec![Box::new(|| ())];
        assert_eq!(engine.execute(again), 0);
        let m = engine.metrics();
        assert_eq!(m.panics_contained, 4);
        assert_eq!(m.threads_spawned, 2);
    }

    #[test]
    fn borrowed_state_is_visible_after_execute() {
        let engine = MappingEngine::new(2);
        let mut values = vec![0u64; 16];
        let jobs: Vec<ScopedJob<'_>> = values
            .iter_mut()
            .enumerate()
            .map(|(i, v)| {
                Box::new(move || {
                    *v = i as u64 + 1;
                }) as ScopedJob<'_>
            })
            .collect();
        engine.execute(jobs);
        assert_eq!(values, (1..=16).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_batch_is_noop() {
        let engine = MappingEngine::new(1);
        assert_eq!(engine.execute(Vec::new()), 0);
        assert_eq!(engine.metrics().batches, 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = MappingEngine::new(0);
    }
}
