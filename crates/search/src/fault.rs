//! Deterministic fault injection for chaos-testing the co-search stack.
//!
//! A [`FaultPlan`] decides — as a pure function of *(batch, session,
//! attempt)* — whether a mapping-search advance is sabotaged and how:
//!
//! * [`FaultKind::EvalError`] — the platform evaluation fails; the
//!   session makes no progress this attempt and is retried with backoff.
//! * [`FaultKind::WorkerPanic`] — the job panics *inside* an engine
//!   worker, exercising the [`MappingEngine`](crate::MappingEngine)
//!   containment path; the session is poisoned and scored infeasible.
//! * [`FaultKind::Stall`] — the job sleeps for
//!   [`RetryPolicy::stall_ms`]; if that exceeds
//!   [`RetryPolicy::deadline_ms`] the attempt is abandoned and retried,
//!   otherwise the stall is benign and the advance completes.
//!
//! Plans are either explicit (a list of planted faults, for matrix
//! tests) or seeded (a per-site Bernoulli draw from a hash of the site,
//! for randomized chaos runs). Both are deterministic: two runs with the
//! same plan inject the same faults at the same sites, which keeps
//! fault-injected runs replayable and their reports byte-comparable.
//!
//! Retry semantics live in [`crate::pool::advance_with_engine_faulted`]:
//! a failed attempt (error or over-deadline stall) is retried up to
//! [`RetryPolicy::max_retries`] times with exponential backoff; a
//! session that still fails is *quarantined* — poisoned so it assesses
//! infeasible — and the round, batch and run all keep going.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What an injected fault does to the sabotaged advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The platform evaluation returns an error: no progress, retried.
    EvalError,
    /// The job panics inside an engine worker: contained, poisoned.
    WorkerPanic,
    /// The job sleeps; past the deadline the attempt is abandoned.
    Stall,
}

/// One planted fault of an explicit plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Planted {
    /// Engine batch (SH-round advance) the fault fires in.
    batch: u64,
    /// Stable session index within the round's session slice.
    session: usize,
    kind: FaultKind,
    /// How many consecutive attempts the fault affects (`1` = first
    /// attempt fails, the retry succeeds; `> max_retries` = quarantine).
    fires: u32,
}

/// A deterministic fault schedule. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    planted: Vec<Planted>,
    seeded: Option<Seeded>,
}

#[derive(Debug, Clone, Copy)]
struct Seeded {
    seed: u64,
    rate: f64,
    max_fires: u32,
}

impl FaultPlan {
    /// An empty plan (injects nothing until faults are planted).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A seeded probabilistic plan: each *(batch, session)* site faults
    /// independently with probability `rate`, with kind and persistence
    /// (1–2 attempts) drawn from a hash of the site. Deterministic in
    /// `seed`.
    pub fn seeded(seed: u64, rate: f64) -> Self {
        FaultPlan {
            planted: Vec::new(),
            seeded: Some(Seeded {
                seed,
                rate: rate.clamp(0.0, 1.0),
                max_fires: 2,
            }),
        }
    }

    /// Plants a fault at `(batch, session)` affecting the first attempt
    /// only (the retry succeeds).
    pub fn with_fault(self, batch: u64, session: usize, kind: FaultKind) -> Self {
        self.with_repeating_fault(batch, session, kind, 1)
    }

    /// Plants a fault affecting the first `fires` attempts; choosing
    /// `fires > max_retries` forces a quarantine.
    ///
    /// # Panics
    ///
    /// Panics if `fires == 0`.
    pub fn with_repeating_fault(
        mut self,
        batch: u64,
        session: usize,
        kind: FaultKind,
        fires: u32,
    ) -> Self {
        assert!(fires > 0, "a planted fault must fire at least once");
        self.planted.push(Planted {
            batch,
            session,
            kind,
            fires,
        });
        self
    }

    /// `true` when the plan can never inject anything.
    pub fn is_empty(&self) -> bool {
        self.planted.is_empty() && self.seeded.is_none()
    }

    /// The fault (if any) for attempt `attempt` of `(batch, session)`.
    /// Pure: the same site and attempt always answer the same.
    pub fn fault_at(&self, batch: u64, session: usize, attempt: u32) -> Option<FaultKind> {
        if let Some(p) = self
            .planted
            .iter()
            .find(|p| p.batch == batch && p.session == session)
        {
            return (attempt < p.fires).then_some(p.kind);
        }
        let s = self.seeded?;
        let mix = s
            .seed
            .wrapping_add(batch.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((session as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let mut rng = StdRng::seed_from_u64(mix);
        if !rng.gen_bool(s.rate) {
            return None;
        }
        let kind = match rng.gen_range(0u32..3) {
            0 => FaultKind::EvalError,
            1 => FaultKind::WorkerPanic,
            _ => FaultKind::Stall,
        };
        let fires = rng.gen_range(1..=s.max_fires.max(1));
        (attempt < fires).then_some(kind)
    }
}

/// Bounded-retry and deadline policy for fault-afflicted advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt before quarantining.
    pub max_retries: u32,
    /// Base backoff between attempts, milliseconds (doubles per retry).
    pub backoff_ms: u64,
    /// Deadline an advance must beat, milliseconds.
    pub deadline_ms: u64,
    /// How long an injected stall sleeps, milliseconds. A stall at or
    /// under the deadline is benign; past it the attempt fails.
    pub stall_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_ms: 1,
            deadline_ms: 2,
            stall_ms: 5,
        }
    }
}

impl RetryPolicy {
    /// Whether an injected stall misses the deadline (decided from the
    /// configured durations, not wall clock, so runs stay deterministic
    /// on loaded machines).
    pub fn stall_misses_deadline(&self) -> bool {
        self.stall_ms > self.deadline_ms
    }
}

/// A live fault-injection context threaded through the engine advances:
/// the plan, the retry policy, and the global batch sequence the plan's
/// `batch` coordinates refer to.
#[derive(Debug, Default)]
pub struct FaultContext {
    plan: FaultPlan,
    policy: RetryPolicy,
    batch_seq: AtomicU64,
}

impl FaultContext {
    /// Creates a context over a plan with the given retry policy.
    pub fn new(plan: FaultPlan, policy: RetryPolicy) -> Self {
        FaultContext {
            plan,
            policy,
            batch_seq: AtomicU64::new(0),
        }
    }

    /// The plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The retry policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Claims the next engine-batch index (called once per advance).
    pub fn next_batch(&self) -> u64 {
        self.batch_seq.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_faults_fire_per_attempt() {
        let plan = FaultPlan::new()
            .with_fault(3, 1, FaultKind::EvalError)
            .with_repeating_fault(5, 0, FaultKind::Stall, 4);
        assert_eq!(plan.fault_at(3, 1, 0), Some(FaultKind::EvalError));
        assert_eq!(
            plan.fault_at(3, 1, 1),
            None,
            "single-fire fault retries clean"
        );
        assert_eq!(plan.fault_at(3, 0, 0), None);
        assert_eq!(plan.fault_at(5, 0, 3), Some(FaultKind::Stall));
        assert_eq!(plan.fault_at(5, 0, 4), None);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn seeded_plan_is_deterministic_and_rate_bounded() {
        let a = FaultPlan::seeded(9, 0.3);
        let b = FaultPlan::seeded(9, 0.3);
        let mut fired = 0usize;
        for batch in 0..40u64 {
            for session in 0..10usize {
                let fa = a.fault_at(batch, session, 0);
                assert_eq!(fa, b.fault_at(batch, session, 0), "same seed, same plan");
                fired += usize::from(fa.is_some());
            }
        }
        let rate = fired as f64 / 400.0;
        assert!((0.15..0.45).contains(&rate), "empirical rate {rate}");
        // Rate 0 and 1 clamp to never / always.
        assert!(FaultPlan::seeded(1, 0.0).fault_at(0, 0, 0).is_none());
        assert!(FaultPlan::seeded(1, 1.0).fault_at(0, 0, 0).is_some());
    }

    #[test]
    fn context_batch_sequence_and_policy() {
        let ctx = FaultContext::new(FaultPlan::new(), RetryPolicy::default());
        assert_eq!(ctx.next_batch(), 0);
        assert_eq!(ctx.next_batch(), 1);
        assert!(ctx.policy().stall_misses_deadline());
        let benign = RetryPolicy {
            stall_ms: 1,
            deadline_ms: 2,
            ..RetryPolicy::default()
        };
        assert!(!benign.stall_misses_deadline());
    }

    #[test]
    #[should_panic(expected = "at least once")]
    fn zero_fire_fault_rejected() {
        let _ = FaultPlan::new().with_repeating_fault(0, 0, FaultKind::EvalError, 0);
    }
}
