//! Lightweight run telemetry: per-phase wall-clock timers, monotonic
//! counters, and a structured JSON run-report.
//!
//! A [`Telemetry`] is cheap to create, internally synchronized (atomics
//! for counters, a mutex only around the phase map), and therefore
//! shareable by reference across the master loop and the worker pool.
//! At the end of a run it renders into a [`RunReport`] that
//! `unico-core` attaches to its results and the `unico-bench` binaries
//! write next to their CSV artifacts (see `EXPERIMENTS.md` for the
//! JSON schema).
//!
//! A process-wide instance ([`Telemetry::global`]) accumulates across
//! every run in the process; drivers that return aggregated results
//! without threading a telemetry handle still contribute to it, which
//! is what the experiment binaries report.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Monotonic counters tracked by [`Telemetry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Mapping-search budget steps consumed (per-job evaluations).
    MappingEvals,
    /// Gaussian-process fits performed (full and incremental).
    GpFits,
    /// Gaussian-process fits that reused the previous factorization
    /// (row appends / fixed-hyper refits) instead of a full
    /// hyperparameter search — a subset of [`Counter::GpFits`].
    GpFitsIncremental,
    /// Successive-halving survivors promoted by terminal value.
    ShPromotionsTv,
    /// Successive-halving survivors promoted through the AUC-reserved
    /// slots (the MSH second chance).
    ShPromotionsAuc,
    /// Successive-halving rounds executed.
    ShRounds,
    /// Samples accepted into the surrogate by the Upper Update Limit.
    UulAccepted,
    /// Samples rejected by the Upper Update Limit.
    UulRejected,
    /// Jobs executed by the persistent mapping engine.
    EngineJobs,
    /// Job batches submitted to the persistent mapping engine.
    EngineBatches,
    /// Worker panics contained by the engine (sessions poisoned).
    EnginePanics,
    /// Worker threads spawned (stays at the pool width for the whole
    /// lifetime of a persistent engine — the "no per-round respawn"
    /// witness).
    EngineThreadsSpawned,
    /// Hardware configurations fully evaluated.
    HwEvals,
    /// PPA evaluations answered from the evaluation cache.
    CacheHits,
    /// PPA evaluations that missed the cache and were computed.
    CacheMisses,
    /// Cache entries dropped by per-shard FIFO eviction.
    CacheEvictions,
    /// Batched cache lookups performed (one per `get_or_compute_batch`
    /// call with a non-empty key set).
    CacheBatchLookups,
    /// Keys resolved through batched cache lookups (the summed batch
    /// sizes; `keys / lookups` is the mean eval batch width).
    CacheBatchKeys,
    /// Faults injected by a deterministic fault plan (all kinds).
    FaultsInjected,
    /// Injected evaluation errors.
    FaultErrors,
    /// Injected worker panics (each also contained by the engine).
    FaultPanics,
    /// Injected stalls (sleeps; only those past the deadline fail).
    FaultStalls,
    /// Retry attempts issued after a failed (error/stalled) advance.
    FaultRetries,
    /// Sessions quarantined (poisoned) after exhausting retries.
    FaultQuarantines,
    /// Checkpoints written to disk (periodic, final, and panic-guard
    /// flushes all count).
    CheckpointsWritten,
    /// Surrogate gradient-descent steps taken by gradient mapping
    /// searchers (free: they consume no mapping-eval budget).
    GradientSteps,
    /// Continuous points legalized and exactly re-evaluated by gradient
    /// mapping searchers.
    GradientLegalizations,
    /// Backtracking line-search rejections in gradient mapping search.
    GradientBacktracks,
    /// Gradient-search trajectory restarts from fresh random templates.
    GradientRestarts,
    /// Candidate fusion groups priced through a platform's fused cost
    /// oracle.
    FusionGroupsTried,
    /// Fusion groups accepted into a plan (legal and strictly
    /// DRAM-reducing).
    FusionGroupsAccepted,
    /// Graph-frontend nodes lowered into loop nests (counted once per
    /// imported graph attached to a run).
    FrontendOpsLowered,
}

impl Counter {
    /// Every counter, in report order.
    pub const ALL: [Counter; 32] = [
        Counter::MappingEvals,
        Counter::GpFits,
        Counter::GpFitsIncremental,
        Counter::ShPromotionsTv,
        Counter::ShPromotionsAuc,
        Counter::ShRounds,
        Counter::UulAccepted,
        Counter::UulRejected,
        Counter::EngineJobs,
        Counter::EngineBatches,
        Counter::EnginePanics,
        Counter::EngineThreadsSpawned,
        Counter::HwEvals,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheEvictions,
        Counter::CacheBatchLookups,
        Counter::CacheBatchKeys,
        Counter::FaultsInjected,
        Counter::FaultErrors,
        Counter::FaultPanics,
        Counter::FaultStalls,
        Counter::FaultRetries,
        Counter::FaultQuarantines,
        Counter::CheckpointsWritten,
        Counter::GradientSteps,
        Counter::GradientLegalizations,
        Counter::GradientBacktracks,
        Counter::GradientRestarts,
        Counter::FusionGroupsTried,
        Counter::FusionGroupsAccepted,
        Counter::FrontendOpsLowered,
    ];

    /// Stable snake_case name used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Counter::MappingEvals => "mapping_evals",
            Counter::GpFits => "gp_fits",
            Counter::GpFitsIncremental => "gp_fits_incremental",
            Counter::ShPromotionsTv => "sh_promotions_tv",
            Counter::ShPromotionsAuc => "sh_promotions_auc",
            Counter::ShRounds => "sh_rounds",
            Counter::UulAccepted => "uul_accepted",
            Counter::UulRejected => "uul_rejected",
            Counter::EngineJobs => "engine_jobs",
            Counter::EngineBatches => "engine_batches",
            Counter::EnginePanics => "engine_panics",
            Counter::EngineThreadsSpawned => "engine_threads_spawned",
            Counter::HwEvals => "hw_evals",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::CacheEvictions => "cache_evictions",
            Counter::CacheBatchLookups => "cache_batch_lookups",
            Counter::CacheBatchKeys => "cache_batch_keys",
            Counter::FaultsInjected => "faults_injected",
            Counter::FaultErrors => "fault_errors",
            Counter::FaultPanics => "fault_panics",
            Counter::FaultStalls => "fault_stalls",
            Counter::FaultRetries => "fault_retries",
            Counter::FaultQuarantines => "fault_quarantines",
            Counter::CheckpointsWritten => "checkpoints_written",
            Counter::GradientSteps => "gradient_steps",
            Counter::GradientLegalizations => "gradient_legalizations",
            Counter::GradientBacktracks => "gradient_backtracks",
            Counter::GradientRestarts => "gradient_restarts",
            Counter::FusionGroupsTried => "fusion_groups_tried",
            Counter::FusionGroupsAccepted => "fusion_groups_accepted",
            Counter::FrontendOpsLowered => "frontend_ops_lowered",
        }
    }

    /// The counter with the given stable name, if any — the inverse of
    /// [`Counter::name`], used to restore counters from a checkpoint.
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.iter().copied().find(|c| c.name() == name)
    }

    fn index(self) -> usize {
        Counter::ALL
            .iter()
            .position(|c| *c == self)
            .expect("counter listed in ALL")
    }
}

/// Thread-safe phase timers and counters for one run (or one process,
/// for [`Telemetry::global`]).
#[derive(Debug, Default)]
pub struct Telemetry {
    counters: [AtomicU64; Counter::ALL.len()],
    phases: Mutex<BTreeMap<String, f64>>,
}

impl Telemetry {
    /// A fresh, empty telemetry sink.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// The process-wide sink. Every instrumented run also accumulates
    /// here (via [`Telemetry::absorb`] or direct counting), so binaries
    /// can report without threading handles through driver signatures.
    pub fn global() -> &'static Telemetry {
        static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
        GLOBAL.get_or_init(Telemetry::new)
    }

    /// Adds `n` to a counter.
    pub fn add(&self, counter: Counter, n: u64) {
        self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of a counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Runs `f`, charging its wall-clock time to `phase`.
    pub fn time<T>(&self, phase: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add_phase_secs(phase, start.elapsed().as_secs_f64());
        out
    }

    /// Adds raw seconds to a phase timer.
    pub fn add_phase_secs(&self, phase: &str, secs: f64) {
        let mut phases = self.phases.lock().expect("phase map lock");
        *phases.entry(phase.to_string()).or_insert(0.0) += secs;
    }

    /// Seconds accumulated under `phase` so far.
    pub fn phase_secs(&self, phase: &str) -> f64 {
        self.phases
            .lock()
            .expect("phase map lock")
            .get(phase)
            .copied()
            .unwrap_or(0.0)
    }

    /// Accumulates another telemetry's counters and phase timers into
    /// this one (used to roll per-run telemetry into the global sink).
    pub fn absorb(&self, other: &Telemetry) {
        for c in Counter::ALL {
            self.add(c, other.get(c));
        }
        let other_phases = other.phases.lock().expect("phase map lock");
        for (phase, secs) in other_phases.iter() {
            self.add_phase_secs(phase, *secs);
        }
    }

    /// Adds an evaluation-cache stats delta to the three cache
    /// counters (drivers snapshot [`unico_model::EvalCache::stats`]
    /// around a run and record the difference).
    pub fn add_cache_stats(&self, d: unico_model::CacheStats) {
        self.add(Counter::CacheHits, d.hits);
        self.add(Counter::CacheMisses, d.misses);
        self.add(Counter::CacheEvictions, d.evictions);
    }

    /// Books aggregated gradient-search counters (a no-op when the
    /// stats are all zero, i.e. no gradient searcher ran).
    pub fn add_gradient_stats(&self, s: unico_mapping::GradientStats) {
        self.add(Counter::GradientSteps, s.gradient_steps);
        self.add(Counter::GradientLegalizations, s.legalizations);
        self.add(Counter::GradientBacktracks, s.backtracks);
        self.add(Counter::GradientRestarts, s.restarts);
    }

    /// Books fusion-planner counters (tried / accepted groups).
    pub fn add_fusion_stats(&self, s: unico_mapping::FusionStats) {
        self.add(Counter::FusionGroupsTried, s.groups_tried);
        self.add(Counter::FusionGroupsAccepted, s.groups_accepted);
    }

    /// Captures the current counter and phase-timer totals as a
    /// [`TelemetrySnapshot`] — the unit the service layer diffs to
    /// stream per-iteration telemetry deltas over NDJSON.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: Counter::ALL
                .iter()
                .map(|c| (c.name().to_string(), self.get(*c)))
                .collect(),
            phases_s: self.phases.lock().expect("phase map lock").clone(),
        }
    }

    /// Snapshots into a named [`RunReport`].
    ///
    /// When any cache counter is nonzero the report carries a `cache`
    /// section aggregated from the counters, with `entries` derived as
    /// `misses - evictions` (exact for the unbounded caches the
    /// experiment drivers attach; a lower bound under FIFO-capped
    /// caches that were pre-populated). Callers with a live
    /// [`unico_model::EvalCache`] at hand (e.g. `Unico::run`) overwrite
    /// the section with the per-run delta instead.
    pub fn report(&self, name: &str) -> RunReport {
        let phases = self.phases.lock().expect("phase map lock").clone();
        let counters: std::collections::BTreeMap<String, u64> = Counter::ALL
            .iter()
            .map(|c| (c.name().to_string(), self.get(*c)))
            .collect();
        let (hits, misses, evictions) = (
            self.get(Counter::CacheHits),
            self.get(Counter::CacheMisses),
            self.get(Counter::CacheEvictions),
        );
        let cache = (hits + misses + evictions > 0).then(|| CacheReport {
            hits,
            misses,
            evictions,
            entries: misses.saturating_sub(evictions),
        });
        let faults = FaultReport {
            injected: self.get(Counter::FaultsInjected),
            errors: self.get(Counter::FaultErrors),
            panics: self.get(Counter::FaultPanics),
            stalls: self.get(Counter::FaultStalls),
            retries: self.get(Counter::FaultRetries),
            quarantines: self.get(Counter::FaultQuarantines),
        };
        let written = self.get(Counter::CheckpointsWritten);
        RunReport {
            name: name.to_string(),
            phases_s: phases,
            counters,
            cache,
            faults: faults.any().then_some(faults),
            checkpoint: (written > 0).then_some(CheckpointReport { written }),
        }
    }
}

/// A point-in-time copy of a [`Telemetry`]'s counters and phase timers.
///
/// Two snapshots of the same telemetry diff into a *delta*
/// ([`TelemetrySnapshot::delta_since`]); rendering a delta with
/// [`TelemetrySnapshot::to_json`] keeps only the counters that moved,
/// which is what `unico-serve` streams as one NDJSON event per MOBO
/// iteration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Counter totals by stable name (every counter, including zeros).
    pub counters: BTreeMap<String, u64>,
    /// Per-phase wall-clock seconds.
    pub phases_s: BTreeMap<String, f64>,
}

impl TelemetrySnapshot {
    /// The change between `earlier` and `self`: counters subtract
    /// (saturating, so an absorbed-baseline reset can never underflow)
    /// and phase timers subtract clamped at zero.
    pub fn delta_since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                let base = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(base))
            })
            .collect();
        let phases_s = self
            .phases_s
            .iter()
            .map(|(k, v)| {
                let base = earlier.phases_s.get(k).copied().unwrap_or(0.0);
                (k.clone(), (v - base).max(0.0))
            })
            .collect();
        TelemetrySnapshot { counters, phases_s }
    }

    /// `true` when every counter and phase timer is zero.
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(|&v| v == 0) && self.phases_s.values().all(|&v| v == 0.0)
    }

    /// Renders the snapshot as a compact JSON object
    /// (`{"counters":{...},"phases_s":{...}}`), dropping zero-valued
    /// counters and phases so per-iteration deltas stay one short line.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (k, v) in self.counters.iter().filter(|(_, &v)| v > 0) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{}:{v}", json_string(k)));
        }
        out.push_str("},\"phases_s\":{");
        first = true;
        for (k, v) in self.phases_s.iter().filter(|(_, &v)| v > 0.0) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{}:{}", json_string(k), json_number(*v)));
        }
        out.push_str("}}");
        out
    }
}

/// Fault-injection counters attached to a [`RunReport`] (the `faults`
/// section of `unico.run_report.v3`); rendered as `null` when no fault
/// plan fired, so fault-free runs stay byte-identical to reports from
/// builds without a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Faults injected (all kinds).
    pub injected: u64,
    /// Injected evaluation errors.
    pub errors: u64,
    /// Injected worker panics.
    pub panics: u64,
    /// Injected stalls.
    pub stalls: u64,
    /// Retry attempts after failed advances.
    pub retries: u64,
    /// Sessions quarantined after exhausting retries.
    pub quarantines: u64,
}

impl FaultReport {
    /// `true` when any fault counter is nonzero.
    pub fn any(&self) -> bool {
        self.injected + self.errors + self.panics + self.stalls + self.retries + self.quarantines
            > 0
    }
}

/// Checkpoint counters attached to a [`RunReport`] (the `checkpoint`
/// section of `unico.run_report.v3`); `null` when checkpointing was
/// disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointReport {
    /// Checkpoints written to disk.
    pub written: u64,
}

/// Evaluation-cache counters attached to a [`RunReport`] (the `cache`
/// section of `unico.run_report.v3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheReport {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that computed (one per distinct key).
    pub misses: u64,
    /// Entries dropped by FIFO eviction.
    pub evictions: u64,
    /// Entries resident at snapshot time.
    pub entries: u64,
}

impl CacheReport {
    /// Hit rate in `[0, 1]`; `0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let n = self.hits + self.misses;
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

impl From<unico_model::CacheStats> for CacheReport {
    fn from(s: unico_model::CacheStats) -> Self {
        CacheReport {
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            entries: s.entries,
        }
    }
}

/// A structured snapshot of one run's telemetry, serializable to JSON
/// (schema `unico.run_report.v3`, documented in `EXPERIMENTS.md`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Run identifier (binary or experiment name).
    pub name: String,
    /// Per-phase wall-clock seconds.
    pub phases_s: BTreeMap<String, f64>,
    /// Monotonic counters by stable name.
    pub counters: BTreeMap<String, u64>,
    /// Evaluation-cache section (`null` when no cache was attached).
    pub cache: Option<CacheReport>,
    /// Fault-injection section (`null` when no fault plan fired).
    pub faults: Option<FaultReport>,
    /// Checkpoint section (`null` when checkpointing was disabled).
    pub checkpoint: Option<CheckpointReport>,
}

impl RunReport {
    /// Renders the report as a self-describing JSON object.
    pub fn to_json(&self) -> String {
        self.render_json(true)
    }

    /// Renders the report without the wall-clock `phases_s` section —
    /// the only field that varies between two otherwise identical
    /// seeded runs. The determinism gate compares this form
    /// byte-for-byte.
    pub fn deterministic_json(&self) -> String {
        self.render_json(false)
    }

    fn render_json(&self, include_phases: bool) -> String {
        let mut out = String::from("{");
        out.push_str("\"schema\":\"unico.run_report.v3\",");
        out.push_str(&format!("\"name\":{},", json_string(&self.name)));
        if include_phases {
            out.push_str("\"phases_s\":{");
            let mut first = true;
            for (k, v) in &self.phases_s {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("{}:{}", json_string(k), json_number(*v)));
            }
            out.push_str("},");
        }
        out.push_str("\"counters\":{");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{}:{v}", json_string(k)));
        }
        out.push_str("},\"cache\":");
        match &self.cache {
            None => out.push_str("null"),
            Some(c) => out.push_str(&format!(
                "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"entries\":{},\"hit_rate\":{}}}",
                c.hits,
                c.misses,
                c.evictions,
                c.entries,
                json_number(c.hit_rate())
            )),
        }
        out.push_str(",\"faults\":");
        match &self.faults {
            None => out.push_str("null"),
            Some(f) => out.push_str(&format!(
                "{{\"injected\":{},\"errors\":{},\"panics\":{},\"stalls\":{},\
                 \"retries\":{},\"quarantines\":{}}}",
                f.injected, f.errors, f.panics, f.stalls, f.retries, f.quarantines
            )),
        }
        out.push_str(",\"checkpoint\":");
        match &self.checkpoint {
            None => out.push_str("null"),
            Some(c) => out.push_str(&format!("{{\"written\":{}}}", c.written)),
        }
        out.push('}');
        out
    }
}

/// JSON string literal with escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number literal; non-finite values (which JSON cannot express)
/// degrade to `null`.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let t = Telemetry::new();
        t.add(Counter::MappingEvals, 10);
        t.add(Counter::MappingEvals, 5);
        t.add(Counter::GpFits, 2);
        assert_eq!(t.get(Counter::MappingEvals), 15);
        assert_eq!(t.get(Counter::GpFits), 2);
        let r = t.report("unit");
        assert_eq!(r.counters["mapping_evals"], 15);
        assert_eq!(r.counters["gp_fits"], 2);
        assert_eq!(r.counters.len(), Counter::ALL.len());
    }

    #[test]
    fn phases_time_and_merge() {
        let t = Telemetry::new();
        let v = t.time("sampling", || 41 + 1);
        assert_eq!(v, 42);
        t.add_phase_secs("sampling", 1.0);
        assert!(t.phase_secs("sampling") >= 1.0);

        let sink = Telemetry::new();
        sink.absorb(&t);
        sink.absorb(&t);
        assert!(sink.phase_secs("sampling") >= 2.0);
        assert_eq!(sink.get(Counter::MappingEvals), 0);
    }

    #[test]
    fn report_json_is_well_formed() {
        let t = Telemetry::new();
        t.add(Counter::ShPromotionsAuc, 3);
        t.add_phase_secs("mapping_search", 0.25);
        let json = t.report("bench \"quoted\"\n").to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"schema\":\"unico.run_report.v3\""));
        assert!(json.contains("\"sh_promotions_auc\":3"));
        assert!(json.contains("\"mapping_search\":0.25"));
        assert!(json.contains("\"cache\":null"));
        assert!(json.contains("\"faults\":null"));
        assert!(json.contains("\"checkpoint\":null"));
        assert!(json.contains("\\\"quoted\\\"\\n"));
        // Balanced braces and no raw control characters.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert!(!json.chars().any(|c| (c as u32) < 0x20));
    }

    #[test]
    fn json_number_guards_non_finite() {
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(f64::INFINITY), "null");
        assert_eq!(json_number(f64::NAN), "null");
    }

    #[test]
    fn cache_section_and_deterministic_json() {
        let t = Telemetry::new();
        t.add(Counter::CacheHits, 30);
        t.add(Counter::CacheMisses, 10);
        t.add_phase_secs("sampling", 0.5);
        // Nonzero cache counters auto-populate the section, with
        // entries derived as misses - evictions.
        let r = t.report("cached");
        let c = r.cache.expect("auto-populated from counters");
        assert_eq!((c.hits, c.misses, c.evictions, c.entries), (30, 10, 0, 10));
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
        let json = r.to_json();
        assert!(json.contains("\"cache\":{\"hits\":30,\"misses\":10,"));
        assert!(json.contains("\"hit_rate\":0.75"));
        assert!(json.contains("\"cache_hits\":30"));
        // The deterministic form drops only the wall-clock phases.
        let det = r.deterministic_json();
        assert!(!det.contains("phases_s"));
        assert!(det.contains("\"cache_hits\":30"));
        assert!(det.contains("\"hit_rate\":0.75"));
        // Zero-lookup reports divide safely.
        assert_eq!(CacheReport::default().hit_rate(), 0.0);
    }

    #[test]
    fn snapshot_delta_and_compact_json() {
        let t = Telemetry::new();
        t.add(Counter::MappingEvals, 100);
        t.add(Counter::HwEvals, 6);
        t.add_phase_secs("mapping_search", 0.5);
        let a = t.snapshot();
        assert_eq!(a.counters["mapping_evals"], 100);
        assert_eq!(a.counters.len(), Counter::ALL.len());

        t.add(Counter::MappingEvals, 40);
        t.add_phase_secs("mapping_search", 0.25);
        t.add_phase_secs("gp_fit", 0.125);
        let b = t.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.counters["mapping_evals"], 40);
        assert_eq!(d.counters["hw_evals"], 0);
        assert!((d.phases_s["mapping_search"] - 0.25).abs() < 1e-9);
        assert!((d.phases_s["gp_fit"] - 0.125).abs() < 1e-9);
        assert!(!d.is_empty());
        // Zero counters and phases are dropped from the JSON rendering.
        let json = d.to_json();
        assert!(json.contains("\"mapping_evals\":40"));
        assert!(!json.contains("hw_evals"));
        assert!(json.contains("\"gp_fit\":0.125"));
        // A no-op interval is an empty delta.
        let e = t.snapshot().delta_since(&b);
        assert!(e.is_empty());
        assert_eq!(e.to_json(), "{\"counters\":{},\"phases_s\":{}}");
        // Deltas never underflow even against a later snapshot.
        assert_eq!(a.delta_since(&b).counters["mapping_evals"], 0);
    }

    #[test]
    fn counter_names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
    }

    #[test]
    fn counter_from_name_inverts_name() {
        for c in Counter::ALL {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        assert_eq!(Counter::from_name("no_such_counter"), None);
    }

    #[test]
    fn fault_and_checkpoint_sections_render_when_counted() {
        let t = Telemetry::new();
        t.add(Counter::FaultsInjected, 4);
        t.add(Counter::FaultErrors, 2);
        t.add(Counter::FaultRetries, 3);
        t.add(Counter::FaultQuarantines, 1);
        t.add(Counter::CheckpointsWritten, 5);
        let r = t.report("chaos");
        let f = r.faults.expect("fault section populated from counters");
        assert_eq!(
            (f.injected, f.errors, f.retries, f.quarantines),
            (4, 2, 3, 1)
        );
        assert_eq!(r.checkpoint, Some(CheckpointReport { written: 5 }));
        let json = r.deterministic_json();
        assert!(json.contains(
            "\"faults\":{\"injected\":4,\"errors\":2,\"panics\":0,\"stalls\":0,\
             \"retries\":3,\"quarantines\":1}"
        ));
        assert!(json.contains("\"checkpoint\":{\"written\":5}"));
        // A fault-free report stays null in both sections.
        let clean = Telemetry::new().report("clean");
        assert!(clean.faults.is_none() && clean.checkpoint.is_none());
    }
}
