//! The shared co-search evaluation environment.
//!
//! A [`CoSearchEnv`] fixes the platform, the (reduced) workload set and
//! the evaluation policy. For each hardware candidate it opens a
//! [`HwSession`] holding one resumable mapping-search *job* per
//! `(network, layer)` pair — the unit the paper distributes across slave
//! machines. Sessions advance to any budget and can be assessed at any
//! past budget, which is exactly the interface successive halving and the
//! high-fidelity surrogate update need.

use unico_mapping::{MappingCost, MappingSearcher, SearchHistory};
use unico_model::Platform;
use unico_workloads::Network;

/// Evaluation policy of a [`CoSearchEnv`].
#[derive(Debug, Clone, Copy)]
pub struct EnvConfig {
    /// Keep only the `n` highest-MAC layers of each network (bounds
    /// inner-loop cost while keeping the layers that dominate PPA).
    pub max_layers_per_network: usize,
    /// Hardware whose aggregated power exceeds this cap is infeasible
    /// (the paper's edge/cloud power constraints).
    pub power_cap_mw: Option<f64>,
    /// Hardware whose area exceeds this cap is infeasible (the paper's
    /// 200 mm² Ascend constraint).
    pub area_cap_mm2: Option<f64>,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            max_layers_per_network: 4,
            power_cap_mw: None,
            area_cap_mm2: None,
        }
    }
}

/// Aggregated assessment of one hardware candidate at some budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assessment {
    /// Geometric-mean across networks of summed per-layer best latency.
    pub latency_s: f64,
    /// Energy-weighted average power across all jobs.
    pub power_mw: f64,
    /// Silicon area of the configuration.
    pub area_mm2: f64,
}

impl Assessment {
    /// The PPA objective vector `(latency, power, area)` for
    /// minimization.
    pub fn objectives(&self) -> Vec<f64> {
        vec![self.latency_s, self.power_mw, self.area_mm2]
    }
}

/// The fixed context of a co-search run.
#[derive(Debug)]
pub struct CoSearchEnv<'p, P: Platform> {
    platform: &'p P,
    networks: Vec<Network>,
    cfg: EnvConfig,
}

impl<'p, P: Platform> CoSearchEnv<'p, P> {
    /// Creates an environment over `networks`, reduced to their dominant
    /// layers per [`EnvConfig::max_layers_per_network`].
    ///
    /// # Panics
    ///
    /// Panics if `networks` is empty.
    pub fn new(platform: &'p P, networks: &[Network], cfg: EnvConfig) -> Self {
        assert!(!networks.is_empty(), "co-search needs at least one network");
        let networks = networks
            .iter()
            .map(|n| n.dominant_layers(cfg.max_layers_per_network))
            .collect();
        CoSearchEnv {
            platform,
            networks,
            cfg,
        }
    }

    /// The target platform.
    pub fn platform(&self) -> &'p P {
        self.platform
    }

    /// The (reduced) workload set.
    pub fn networks(&self) -> &[Network] {
        &self.networks
    }

    /// The evaluation policy.
    pub fn config(&self) -> &EnvConfig {
        &self.cfg
    }

    /// Number of mapping-search jobs per hardware candidate.
    pub fn num_jobs(&self) -> usize {
        self.networks.iter().map(Network::len).sum()
    }

    /// Opens a session for one hardware candidate; `seed` derives each
    /// job's searcher seed deterministically.
    pub fn session(&self, hw: P::Hw, seed: u64) -> HwSession<'_, P> {
        let mut jobs = Vec::with_capacity(self.num_jobs());
        let area = self.platform.area_mm2(&hw);
        for (net_idx, net) in self.networks.iter().enumerate() {
            for (layer_idx, layer) in net.layers().iter().enumerate() {
                let nest = layer.op().to_loop_nest();
                let job_seed = seed
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((net_idx as u64) << 32 | layer_idx as u64);
                jobs.push(Job {
                    net_idx,
                    repeat: layer.repeat(),
                    cost: self.platform.bind(&hw, &nest),
                    searcher: self.platform.make_searcher(&hw, &nest, job_seed),
                });
            }
        }
        HwSession {
            hw,
            area_mm2: area,
            num_networks: self.networks.len(),
            power_cap_mw: self.cfg.power_cap_mw,
            area_cap_mm2: self.cfg.area_cap_mm2,
            poisoned: false,
            jobs,
        }
    }
}

struct Job<'e> {
    net_idx: usize,
    repeat: u32,
    cost: Box<dyn MappingCost + Send + Sync + 'e>,
    searcher: Box<dyn MappingSearcher + Send>,
}

impl std::fmt::Debug for Job<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("net_idx", &self.net_idx)
            .field("repeat", &self.repeat)
            .field("spent", &self.searcher.history().spent())
            .finish()
    }
}

/// One hardware candidate's live mapping-search state: a resumable
/// searcher per `(network, layer)` job.
#[derive(Debug)]
pub struct HwSession<'e, P: Platform> {
    hw: P::Hw,
    area_mm2: f64,
    num_networks: usize,
    power_cap_mw: Option<f64>,
    area_cap_mm2: Option<f64>,
    poisoned: bool,
    jobs: Vec<Job<'e>>,
}

impl<P: Platform> HwSession<'_, P> {
    /// The hardware candidate.
    pub fn hw(&self) -> &P::Hw {
        &self.hw
    }

    /// Configuration area, mm².
    pub fn area_mm2(&self) -> f64 {
        self.area_mm2
    }

    /// Advances every job's mapping search to `budget` total steps.
    pub fn advance_to(&mut self, budget: u64) {
        for job in &mut self.jobs {
            job.searcher.run_until(job.cost.as_ref(), budget);
        }
    }

    /// Marks the session infeasible because its mapping search died
    /// (e.g. a worker panic contained by the execution engine). A
    /// poisoned session assesses as infeasible at every budget but
    /// keeps its partial histories for debugging.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    /// Whether [`HwSession::poison`] was called.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Per-job budget already consumed (max over jobs).
    pub fn spent(&self) -> u64 {
        self.jobs
            .iter()
            .map(|j| j.searcher.history().spent())
            .max()
            .unwrap_or(0)
    }

    /// Simulated CPU seconds consumed by this session so far.
    pub fn cost_seconds(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| j.searcher.history().spent() as f64 * j.cost.eval_cost_seconds())
            .sum()
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// The per-job search histories (for robustness metrics and
    /// high-fidelity assessment at past budgets).
    pub fn job_histories(&self) -> Vec<&SearchHistory> {
        self.jobs.iter().map(|j| j.searcher.history()).collect()
    }

    /// Assesses the candidate using the best mappings found within the
    /// first `budget` steps of every job. Returns `None` if any job has
    /// no feasible mapping by then, or a power/area cap is violated.
    pub fn assess_at(&self, budget: u64) -> Option<Assessment> {
        if self.poisoned {
            return None;
        }
        if let Some(cap) = self.area_cap_mm2 {
            if self.area_mm2 > cap {
                return None;
            }
        }
        let mut net_latency = vec![0.0f64; self.num_networks];
        let mut total_energy_mj = 0.0f64; // mW * s
        let mut total_latency = 0.0f64;
        for job in &self.jobs {
            let best = job.searcher.history().best_at(budget)?;
            let lat = best.latency_s * f64::from(job.repeat);
            net_latency[job.net_idx] += lat;
            total_energy_mj += best.power_mw * lat;
            total_latency += lat;
        }
        let latency_s = geometric_mean(&net_latency);
        let power_mw = if total_latency > 0.0 {
            total_energy_mj / total_latency
        } else {
            0.0
        };
        if let Some(cap) = self.power_cap_mw {
            if power_mw > cap {
                return None;
            }
        }
        Some(Assessment {
            latency_s,
            power_mw,
            area_mm2: self.area_mm2,
        })
    }

    /// Assessment at the current budget.
    pub fn assess(&self) -> Option<Assessment> {
        self.assess_at(self.spent())
    }

    /// Scalar terminal value for successive halving (aggregated latency;
    /// `INFINITY` when infeasible).
    pub fn terminal_value(&self) -> f64 {
        self.assess().map_or(f64::INFINITY, |a| a.latency_s)
    }

    /// Total budget steps consumed across all jobs (the session's
    /// mapping-evaluation count for telemetry).
    pub fn total_steps(&self) -> u64 {
        self.jobs.iter().map(|j| j.searcher.history().spent()).sum()
    }

    /// Aggregated gradient-search counters across this session's jobs
    /// (all zero unless the platform hands out gradient searchers).
    pub fn gradient_stats(&self) -> unico_mapping::GradientStats {
        let mut acc = unico_mapping::GradientStats::default();
        for j in &self.jobs {
            if let Some(s) = j.searcher.gradient_stats() {
                acc.absorb(&s);
            }
        }
        acc
    }

    /// Mean convergence-rate AUC across jobs within `budget` steps.
    pub fn auc_at(&self, budget: u64) -> f64 {
        if self.jobs.is_empty() || self.poisoned {
            return 0.0;
        }
        self.jobs
            .iter()
            .map(|j| j.searcher.history().auc(budget))
            .sum::<f64>()
            / self.jobs.len() as f64
    }
}

fn geometric_mean(values: &[f64]) -> f64 {
    let positive: Vec<f64> = values.iter().copied().filter(|v| *v > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = positive.iter().map(|v| v.ln()).sum();
    (log_sum / positive.len() as f64).exp()
}

/// Advances the selected sessions to `budget` in parallel (one thread
/// per session — the paper's per-job multiprocessing).
///
/// This is the *transient* path: it spawns one scoped thread per
/// selected session and joins them before returning. Steady-state
/// callers should prefer [`crate::advance_with_engine`] on a persistent
/// [`crate::MappingEngine`] instead.
pub fn advance_parallel<P: Platform>(
    sessions: &mut [HwSession<'_, P>],
    select: &[bool],
    budget: u64,
) where
    P::Hw: Send,
{
    assert_eq!(sessions.len(), select.len(), "selection mask length");
    std::thread::scope(|scope| {
        for (sess, &on) in sessions.iter_mut().zip(select) {
            if on {
                scope.spawn(move || sess.advance_to(budget));
            }
        }
    });
}

/// Evaluates a batch of hardware candidates at a fixed full budget (no
/// early stopping): opens a session per candidate, advances all in
/// parallel, and returns `(hw, assessment)` pairs plus the CPU seconds
/// consumed and the parallel width of the phase.
#[allow(clippy::type_complexity)]
pub fn evaluate_batch<P: Platform>(
    env: &CoSearchEnv<'_, P>,
    hws: Vec<P::Hw>,
    budget: u64,
    seed: u64,
) -> (Vec<(P::Hw, Option<Assessment>)>, f64, u32)
where
    P::Hw: Send,
{
    let mut sessions: Vec<HwSession<'_, P>> = hws
        .into_iter()
        .enumerate()
        .map(|(i, hw)| env.session(hw, seed.wrapping_add(i as u64)))
        .collect();
    let select = vec![true; sessions.len()];
    advance_parallel(&mut sessions, &select, budget);
    let cpu: f64 = sessions.iter().map(HwSession::cost_seconds).sum();
    let global = crate::telemetry::Telemetry::global();
    global.add(
        crate::telemetry::Counter::MappingEvals,
        sessions.iter().map(HwSession::total_steps).sum(),
    );
    global.add(crate::telemetry::Counter::HwEvals, sessions.len() as u64);
    let mut gstats = unico_mapping::GradientStats::default();
    for s in &sessions {
        gstats.absorb(&s.gradient_stats());
    }
    global.add_gradient_stats(gstats);
    let width = (sessions.len() * env.num_jobs()) as u32;
    let out = sessions
        .into_iter()
        .map(|s| {
            let a = s.assess();
            (s.hw, a)
        })
        .collect();
    (out, cpu, width.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use unico_model::SpatialPlatform;
    use unico_workloads::zoo;

    fn env(platform: &SpatialPlatform) -> CoSearchEnv<'_, SpatialPlatform> {
        CoSearchEnv::new(
            platform,
            &[zoo::mobilenet_v1()],
            EnvConfig {
                max_layers_per_network: 2,
                power_cap_mw: None,
                area_cap_mm2: None,
            },
        )
    }

    #[test]
    fn session_assessment_monotone_in_budget() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let mut rng = rand::SeedableRng::seed_from_u64(3);
        // Find a hardware for which all jobs become feasible.
        for attempt in 0..40 {
            let hw = e.platform().sample_hw(&mut rng);
            let mut s = e.session(hw, attempt);
            s.advance_to(120);
            if let Some(a_full) = s.assess() {
                let a_half = s.assess_at(60);
                if let Some(a_half) = a_half {
                    assert!(a_full.latency_s <= a_half.latency_s + 1e-12);
                }
                assert!(a_full.power_mw > 0.0);
                assert!(a_full.area_mm2 > 0.0);
                assert_eq!(s.spent(), 120);
                assert!(s.cost_seconds() > 0.0);
                return;
            }
        }
        panic!("no feasible hardware found in 40 samples");
    }

    #[test]
    fn power_cap_marks_infeasible() {
        let p = SpatialPlatform::edge();
        let cfg = EnvConfig {
            max_layers_per_network: 1,
            power_cap_mw: Some(1e-9), // nothing passes
            ..EnvConfig::default()
        };
        let e = CoSearchEnv::new(&p, &[zoo::mobilenet_v1()], cfg);
        let mut rng = rand::SeedableRng::seed_from_u64(5);
        let hw = e.platform().sample_hw(&mut rng);
        let mut s = e.session(hw, 0);
        s.advance_to(60);
        assert!(s.assess().is_none());
        assert_eq!(s.terminal_value(), f64::INFINITY);
    }

    #[test]
    fn parallel_advance_matches_serial_budgets() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let mut rng = rand::SeedableRng::seed_from_u64(7);
        let mut sessions: Vec<_> = (0..4)
            .map(|i| e.session(e.platform().sample_hw(&mut rng), i))
            .collect();
        let select = vec![true, false, true, true];
        advance_parallel(&mut sessions, &select, 30);
        assert_eq!(sessions[0].spent(), 30);
        assert_eq!(sessions[1].spent(), 0);
        assert_eq!(sessions[2].spent(), 30);
    }

    #[test]
    fn job_count_matches_reduced_networks() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        assert_eq!(e.num_jobs(), 2);
        assert_eq!(e.networks().len(), 1);
        let mut rng = rand::SeedableRng::seed_from_u64(9);
        let s = e.session(e.platform().sample_hw(&mut rng), 0);
        assert_eq!(s.num_jobs(), 2);
        assert_eq!(s.job_histories().len(), 2);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[5.0]) - 5.0).abs() < 1e-12);
    }
}
