//! The shared co-search evaluation environment.
//!
//! A [`CoSearchEnv`] fixes the platform, the (reduced) workload set and
//! the evaluation policy. For each hardware candidate it opens a
//! [`HwSession`] holding one resumable mapping-search *job* per
//! `(network, layer)` pair — the unit the paper distributes across slave
//! machines. Sessions advance to any budget and can be assessed at any
//! past budget, which is exactly the interface successive halving and the
//! high-fidelity surrogate update need.

use std::sync::atomic::{AtomicU64, Ordering};

use unico_mapping::{
    search_fusion, FusionPlan, FusionStats, Mapping, MappingCost, MappingSearcher, SearchHistory,
};
use unico_model::{Platform, Ppa};
use unico_workloads::{FusionEdge, ImportedGraph, LoopNest, Network};

/// Evaluation policy of a [`CoSearchEnv`].
#[derive(Debug, Clone, Copy)]
pub struct EnvConfig {
    /// Keep only the `n` highest-MAC layers of each network (bounds
    /// inner-loop cost while keeping the layers that dominate PPA).
    pub max_layers_per_network: usize,
    /// Hardware whose aggregated power exceeds this cap is infeasible
    /// (the paper's edge/cloud power constraints).
    pub power_cap_mw: Option<f64>,
    /// Hardware whose area exceeds this cap is infeasible (the paper's
    /// 200 mm² Ascend constraint).
    pub area_cap_mm2: Option<f64>,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            max_layers_per_network: 4,
            power_cap_mw: None,
            area_cap_mm2: None,
        }
    }
}

/// Aggregated assessment of one hardware candidate at some budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assessment {
    /// Geometric-mean across networks of summed per-layer best latency.
    pub latency_s: f64,
    /// Energy-weighted average power across all jobs.
    pub power_mw: f64,
    /// Silicon area of the configuration.
    pub area_mm2: f64,
}

impl Assessment {
    /// The PPA objective vector `(latency, power, area)` for
    /// minimization.
    pub fn objectives(&self) -> Vec<f64> {
        vec![self.latency_s, self.power_mw, self.area_mm2]
    }
}

/// The fixed context of a co-search run.
#[derive(Debug)]
pub struct CoSearchEnv<'p, P: Platform> {
    platform: &'p P,
    networks: Vec<Network>,
    /// Per-network fusion edges, remapped to reduced-layer indices.
    /// Empty vectors (the [`CoSearchEnv::new`] path) keep assessment
    /// bitwise identical to the pre-fusion per-layer path.
    edges: Vec<Vec<FusionEdge>>,
    cfg: EnvConfig,
}

impl<'p, P: Platform> CoSearchEnv<'p, P> {
    /// Creates an environment over `networks`, reduced to their dominant
    /// layers per [`EnvConfig::max_layers_per_network`].
    ///
    /// # Panics
    ///
    /// Panics if `networks` is empty.
    pub fn new(platform: &'p P, networks: &[Network], cfg: EnvConfig) -> Self {
        assert!(!networks.is_empty(), "co-search needs at least one network");
        let networks: Vec<Network> = networks
            .iter()
            .map(|n| n.dominant_layers(cfg.max_layers_per_network))
            .collect();
        let edges = vec![Vec::new(); networks.len()];
        CoSearchEnv {
            platform,
            networks,
            edges,
            cfg,
        }
    }

    /// Creates an environment over imported graphs, keeping each
    /// network's dominant layers *and* the fusion edges whose endpoints
    /// both survive the reduction (remapped to reduced indices). The
    /// fusion edges let [`HwSession::assess_at`] replace per-layer PPA
    /// with fused-group accounting wherever the planner accepts a
    /// multi-layer group.
    ///
    /// # Panics
    ///
    /// Panics if `graphs` is empty.
    pub fn with_graphs(platform: &'p P, graphs: &[ImportedGraph], cfg: EnvConfig) -> Self {
        assert!(!graphs.is_empty(), "co-search needs at least one graph");
        let mut networks = Vec::with_capacity(graphs.len());
        let mut edges = Vec::with_capacity(graphs.len());
        for g in graphs {
            let kept = g.network().dominant_indices(cfg.max_layers_per_network);
            let pos_of = |orig: usize| kept.iter().position(|&k| k == orig);
            let remapped: Vec<FusionEdge> = g
                .edges()
                .iter()
                .filter_map(|e| {
                    let producer = pos_of(e.producer)?;
                    let consumer = pos_of(e.consumer)?;
                    Some(FusionEdge {
                        producer,
                        consumer,
                        elems: e.elems,
                    })
                })
                .collect();
            networks.push(g.network().dominant_layers(cfg.max_layers_per_network));
            edges.push(remapped);
        }
        CoSearchEnv {
            platform,
            networks,
            edges,
            cfg,
        }
    }

    /// Per-network fusion edges (reduced-layer indices); empty slices
    /// for environments built with [`CoSearchEnv::new`].
    pub fn fusion_edges(&self) -> &[Vec<FusionEdge>] {
        &self.edges
    }

    /// The target platform.
    pub fn platform(&self) -> &'p P {
        self.platform
    }

    /// The (reduced) workload set.
    pub fn networks(&self) -> &[Network] {
        &self.networks
    }

    /// The evaluation policy.
    pub fn config(&self) -> &EnvConfig {
        &self.cfg
    }

    /// Number of mapping-search jobs per hardware candidate.
    pub fn num_jobs(&self) -> usize {
        self.networks.iter().map(Network::len).sum()
    }

    /// Opens a session for one hardware candidate; `seed` derives each
    /// job's searcher seed deterministically.
    pub fn session(&self, hw: P::Hw, seed: u64) -> HwSession<'_, P> {
        let mut jobs = Vec::with_capacity(self.num_jobs());
        let area = self.platform.area_mm2(&hw);
        for (net_idx, net) in self.networks.iter().enumerate() {
            for (layer_idx, layer) in net.layers().iter().enumerate() {
                let nest = layer.op().to_loop_nest();
                let job_seed = seed
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((net_idx as u64) << 32 | layer_idx as u64);
                jobs.push(Job {
                    net_idx,
                    nest,
                    repeat: layer.repeat(),
                    cost: self.platform.bind(&hw, &nest),
                    searcher: self.platform.make_searcher(&hw, &nest, job_seed),
                });
            }
        }
        HwSession {
            hw,
            platform: self.platform,
            fusion_edges: &self.edges,
            area_mm2: area,
            num_networks: self.networks.len(),
            power_cap_mw: self.cfg.power_cap_mw,
            area_cap_mm2: self.cfg.area_cap_mm2,
            poisoned: false,
            fusion_tried: AtomicU64::new(0),
            fusion_accepted: AtomicU64::new(0),
            jobs,
        }
    }
}

struct Job<'e> {
    net_idx: usize,
    nest: LoopNest,
    repeat: u32,
    cost: Box<dyn MappingCost + Send + Sync + 'e>,
    searcher: Box<dyn MappingSearcher + Send>,
}

impl std::fmt::Debug for Job<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("net_idx", &self.net_idx)
            .field("repeat", &self.repeat)
            .field("spent", &self.searcher.history().spent())
            .finish()
    }
}

/// One hardware candidate's live mapping-search state: a resumable
/// searcher per `(network, layer)` job.
pub struct HwSession<'e, P: Platform> {
    hw: P::Hw,
    platform: &'e P,
    fusion_edges: &'e [Vec<FusionEdge>],
    area_mm2: f64,
    num_networks: usize,
    power_cap_mw: Option<f64>,
    area_cap_mm2: Option<f64>,
    poisoned: bool,
    fusion_tried: AtomicU64,
    fusion_accepted: AtomicU64,
    jobs: Vec<Job<'e>>,
}

impl<P: Platform> std::fmt::Debug for HwSession<'_, P>
where
    P::Hw: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HwSession")
            .field("hw", &self.hw)
            .field("area_mm2", &self.area_mm2)
            .field("num_networks", &self.num_networks)
            .field("poisoned", &self.poisoned)
            .field("jobs", &self.jobs)
            .finish()
    }
}

/// Outcome of one fusion-planning pass over a session's networks at a
/// fixed budget (see [`HwSession::fusion_report_at`]).
#[derive(Debug, Clone)]
pub struct FusionReport {
    /// Accepted fusion plan per network carrying edges, as
    /// `(network index, plan)`.
    pub plans: Vec<(usize, FusionPlan)>,
    /// Planner counters: candidate groups priced and accepted.
    pub stats: FusionStats,
    /// Per-job PPA overrides `(job index, fused PPA)` covering every
    /// member of an accepted multi-layer group.
    pub overrides: Vec<(usize, Ppa)>,
    /// Modeled DRAM bytes of the accepted multi-layer groups had each
    /// member run standalone (repeat-weighted).
    pub dram_bytes_unfused: f64,
    /// The same groups under fused accounting (intermediates held
    /// on-chip). Strictly below `dram_bytes_unfused` whenever any
    /// group was accepted.
    pub dram_bytes_fused: f64,
}

impl<P: Platform> HwSession<'_, P> {
    /// The hardware candidate.
    pub fn hw(&self) -> &P::Hw {
        &self.hw
    }

    /// Configuration area, mm².
    pub fn area_mm2(&self) -> f64 {
        self.area_mm2
    }

    /// Advances every job's mapping search to `budget` total steps.
    pub fn advance_to(&mut self, budget: u64) {
        for job in &mut self.jobs {
            job.searcher.run_until(job.cost.as_ref(), budget);
        }
    }

    /// Marks the session infeasible because its mapping search died
    /// (e.g. a worker panic contained by the execution engine). A
    /// poisoned session assesses as infeasible at every budget but
    /// keeps its partial histories for debugging.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    /// Whether [`HwSession::poison`] was called.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Per-job budget already consumed (max over jobs).
    pub fn spent(&self) -> u64 {
        self.jobs
            .iter()
            .map(|j| j.searcher.history().spent())
            .max()
            .unwrap_or(0)
    }

    /// Simulated CPU seconds consumed by this session so far.
    pub fn cost_seconds(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| j.searcher.history().spent() as f64 * j.cost.eval_cost_seconds())
            .sum()
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// The per-job search histories (for robustness metrics and
    /// high-fidelity assessment at past budgets).
    pub fn job_histories(&self) -> Vec<&SearchHistory> {
        self.jobs.iter().map(|j| j.searcher.history()).collect()
    }

    /// Assesses the candidate using the best mappings found within the
    /// first `budget` steps of every job. Returns `None` if any job has
    /// no feasible mapping by then, or a power/area cap is violated.
    pub fn assess_at(&self, budget: u64) -> Option<Assessment> {
        if self.poisoned {
            return None;
        }
        if let Some(cap) = self.area_cap_mm2 {
            if self.area_mm2 > cap {
                return None;
            }
        }
        let mut per_job = Vec::with_capacity(self.jobs.len());
        for job in &self.jobs {
            let best = job.searcher.history().best_at(budget)?;
            per_job.push((best.latency_s, best.power_mw));
        }
        if let Some(report) = self.run_fusion(budget) {
            self.fusion_tried
                .fetch_add(report.stats.groups_tried, Ordering::Relaxed);
            self.fusion_accepted
                .fetch_add(report.stats.groups_accepted, Ordering::Relaxed);
            for &(ji, ppa) in &report.overrides {
                per_job[ji] = (ppa.latency_s, ppa.power_mw);
            }
        }
        let mut net_latency = vec![0.0f64; self.num_networks];
        let mut total_energy_mj = 0.0f64; // mW * s
        let mut total_latency = 0.0f64;
        for (job, &(lat_s, pow_mw)) in self.jobs.iter().zip(&per_job) {
            let lat = lat_s * f64::from(job.repeat);
            net_latency[job.net_idx] += lat;
            total_energy_mj += pow_mw * lat;
            total_latency += lat;
        }
        let latency_s = geometric_mean(&net_latency);
        let power_mw = if total_latency > 0.0 {
            total_energy_mj / total_latency
        } else {
            0.0
        };
        if let Some(cap) = self.power_cap_mw {
            if power_mw > cap {
                return None;
            }
        }
        Some(Assessment {
            latency_s,
            power_mw,
            area_mm2: self.area_mm2,
        })
    }

    /// Runs the fusion planner over every network that carries fusion
    /// edges, using each job's best mapping within `budget`. `None`
    /// when no network has edges or no platform pricer exists — the
    /// per-layer path then proceeds untouched (bitwise identical to
    /// the pre-fusion behavior).
    fn run_fusion(&self, budget: u64) -> Option<FusionReport> {
        if self.fusion_edges.iter().all(Vec::is_empty) {
            return None;
        }
        let mut report = FusionReport {
            plans: Vec::new(),
            stats: FusionStats::default(),
            overrides: Vec::new(),
            dram_bytes_unfused: 0.0,
            dram_bytes_fused: 0.0,
        };
        for (net_idx, edges) in self.fusion_edges.iter().enumerate() {
            if edges.is_empty() {
                continue;
            }
            // Jobs are pushed in (network, layer) order, so a network's
            // jobs are contiguous and layer-ordered.
            let net_jobs: Vec<usize> = self
                .jobs
                .iter()
                .enumerate()
                .filter(|(_, j)| j.net_idx == net_idx)
                .map(|(i, _)| i)
                .collect();
            let layers: Vec<Option<(LoopNest, Mapping, u32)>> = net_jobs
                .iter()
                .map(|&ji| {
                    let j = &self.jobs[ji];
                    j.searcher
                        .best_mapping_at(budget)
                        .map(|m| (j.nest, m.clone(), j.repeat))
                })
                .collect();
            let Some(pricer) = self.platform.fusion_pricer(&self.hw, layers) else {
                continue;
            };
            let (plan, stats) = search_fusion(net_jobs.len(), edges, pricer.as_ref());
            report.stats.merge(stats);
            for group in plan.multi_layer_groups() {
                if let Some(eval) = pricer.price_group(group, edges) {
                    report.dram_bytes_unfused += eval.dram_bytes_unfused;
                    report.dram_bytes_fused += eval.dram_bytes_fused;
                    for mc in &eval.members {
                        report.overrides.push((net_jobs[mc.layer], mc.ppa));
                    }
                }
            }
            report.plans.push((net_idx, plan));
        }
        if report.plans.is_empty() {
            return None;
        }
        Some(report)
    }

    /// The fusion plan, counters and fused-group DRAM deltas at
    /// `budget` (diagnostic; does not book counters). `None` when the
    /// session has no fusion edges, no pricer, or is poisoned.
    pub fn fusion_report_at(&self, budget: u64) -> Option<FusionReport> {
        if self.poisoned {
            return None;
        }
        self.run_fusion(budget)
    }

    /// Accumulated fusion-planner counters across every assessment of
    /// this session.
    pub fn fusion_stats(&self) -> FusionStats {
        FusionStats {
            groups_tried: self.fusion_tried.load(Ordering::Relaxed),
            groups_accepted: self.fusion_accepted.load(Ordering::Relaxed),
        }
    }

    /// Assessment at the current budget.
    pub fn assess(&self) -> Option<Assessment> {
        self.assess_at(self.spent())
    }

    /// Scalar terminal value for successive halving (aggregated latency;
    /// `INFINITY` when infeasible).
    pub fn terminal_value(&self) -> f64 {
        self.assess().map_or(f64::INFINITY, |a| a.latency_s)
    }

    /// Total budget steps consumed across all jobs (the session's
    /// mapping-evaluation count for telemetry).
    pub fn total_steps(&self) -> u64 {
        self.jobs.iter().map(|j| j.searcher.history().spent()).sum()
    }

    /// Aggregated gradient-search counters across this session's jobs
    /// (all zero unless the platform hands out gradient searchers).
    pub fn gradient_stats(&self) -> unico_mapping::GradientStats {
        let mut acc = unico_mapping::GradientStats::default();
        for j in &self.jobs {
            if let Some(s) = j.searcher.gradient_stats() {
                acc.absorb(&s);
            }
        }
        acc
    }

    /// Mean convergence-rate AUC across jobs within `budget` steps.
    pub fn auc_at(&self, budget: u64) -> f64 {
        if self.jobs.is_empty() || self.poisoned {
            return 0.0;
        }
        self.jobs
            .iter()
            .map(|j| j.searcher.history().auc(budget))
            .sum::<f64>()
            / self.jobs.len() as f64
    }
}

fn geometric_mean(values: &[f64]) -> f64 {
    let positive: Vec<f64> = values.iter().copied().filter(|v| *v > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = positive.iter().map(|v| v.ln()).sum();
    (log_sum / positive.len() as f64).exp()
}

/// Advances the selected sessions to `budget` in parallel (one thread
/// per session — the paper's per-job multiprocessing).
///
/// This is the *transient* path: it spawns one scoped thread per
/// selected session and joins them before returning. Steady-state
/// callers should prefer [`crate::advance_with_engine`] on a persistent
/// [`crate::MappingEngine`] instead.
pub fn advance_parallel<P: Platform>(
    sessions: &mut [HwSession<'_, P>],
    select: &[bool],
    budget: u64,
) where
    P::Hw: Send,
{
    assert_eq!(sessions.len(), select.len(), "selection mask length");
    std::thread::scope(|scope| {
        for (sess, &on) in sessions.iter_mut().zip(select) {
            if on {
                scope.spawn(move || sess.advance_to(budget));
            }
        }
    });
}

/// Evaluates a batch of hardware candidates at a fixed full budget (no
/// early stopping): opens a session per candidate, advances all in
/// parallel, and returns `(hw, assessment)` pairs plus the CPU seconds
/// consumed and the parallel width of the phase.
#[allow(clippy::type_complexity)]
pub fn evaluate_batch<P: Platform>(
    env: &CoSearchEnv<'_, P>,
    hws: Vec<P::Hw>,
    budget: u64,
    seed: u64,
) -> (Vec<(P::Hw, Option<Assessment>)>, f64, u32)
where
    P::Hw: Send,
{
    let mut sessions: Vec<HwSession<'_, P>> = hws
        .into_iter()
        .enumerate()
        .map(|(i, hw)| env.session(hw, seed.wrapping_add(i as u64)))
        .collect();
    let select = vec![true; sessions.len()];
    advance_parallel(&mut sessions, &select, budget);
    let cpu: f64 = sessions.iter().map(HwSession::cost_seconds).sum();
    let global = crate::telemetry::Telemetry::global();
    global.add(
        crate::telemetry::Counter::MappingEvals,
        sessions.iter().map(HwSession::total_steps).sum(),
    );
    global.add(crate::telemetry::Counter::HwEvals, sessions.len() as u64);
    let mut gstats = unico_mapping::GradientStats::default();
    let mut fstats = FusionStats::default();
    for s in &sessions {
        gstats.absorb(&s.gradient_stats());
        fstats.merge(s.fusion_stats());
    }
    global.add_gradient_stats(gstats);
    global.add_fusion_stats(fstats);
    let width = (sessions.len() * env.num_jobs()) as u32;
    let out = sessions
        .into_iter()
        .map(|s| {
            let a = s.assess();
            (s.hw, a)
        })
        .collect();
    (out, cpu, width.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use unico_model::SpatialPlatform;
    use unico_workloads::zoo;

    fn env(platform: &SpatialPlatform) -> CoSearchEnv<'_, SpatialPlatform> {
        CoSearchEnv::new(
            platform,
            &[zoo::mobilenet_v1()],
            EnvConfig {
                max_layers_per_network: 2,
                power_cap_mw: None,
                area_cap_mm2: None,
            },
        )
    }

    #[test]
    fn session_assessment_monotone_in_budget() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let mut rng = rand::SeedableRng::seed_from_u64(3);
        // Find a hardware for which all jobs become feasible.
        for attempt in 0..40 {
            let hw = e.platform().sample_hw(&mut rng);
            let mut s = e.session(hw, attempt);
            s.advance_to(120);
            if let Some(a_full) = s.assess() {
                let a_half = s.assess_at(60);
                if let Some(a_half) = a_half {
                    assert!(a_full.latency_s <= a_half.latency_s + 1e-12);
                }
                assert!(a_full.power_mw > 0.0);
                assert!(a_full.area_mm2 > 0.0);
                assert_eq!(s.spent(), 120);
                assert!(s.cost_seconds() > 0.0);
                return;
            }
        }
        panic!("no feasible hardware found in 40 samples");
    }

    #[test]
    fn power_cap_marks_infeasible() {
        let p = SpatialPlatform::edge();
        let cfg = EnvConfig {
            max_layers_per_network: 1,
            power_cap_mw: Some(1e-9), // nothing passes
            ..EnvConfig::default()
        };
        let e = CoSearchEnv::new(&p, &[zoo::mobilenet_v1()], cfg);
        let mut rng = rand::SeedableRng::seed_from_u64(5);
        let hw = e.platform().sample_hw(&mut rng);
        let mut s = e.session(hw, 0);
        s.advance_to(60);
        assert!(s.assess().is_none());
        assert_eq!(s.terminal_value(), f64::INFINITY);
    }

    #[test]
    fn parallel_advance_matches_serial_budgets() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let mut rng = rand::SeedableRng::seed_from_u64(7);
        let mut sessions: Vec<_> = (0..4)
            .map(|i| e.session(e.platform().sample_hw(&mut rng), i))
            .collect();
        let select = vec![true, false, true, true];
        advance_parallel(&mut sessions, &select, 30);
        assert_eq!(sessions[0].spent(), 30);
        assert_eq!(sessions[1].spent(), 0);
        assert_eq!(sessions[2].spent(), 30);
    }

    #[test]
    fn job_count_matches_reduced_networks() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        assert_eq!(e.num_jobs(), 2);
        assert_eq!(e.networks().len(), 1);
        let mut rng = rand::SeedableRng::seed_from_u64(9);
        let s = e.session(e.platform().sample_hw(&mut rng), 0);
        assert_eq!(s.num_jobs(), 2);
        assert_eq!(s.job_histories().len(), 2);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    /// Two stacked 3x3 convs whose intermediate survives lowering as a
    /// single fusion edge.
    fn conv_pair() -> unico_workloads::ImportedGraph {
        unico_workloads::frontend::import_json(
            r#"{
              "name": "conv-pair",
              "inputs": [{"name": "x", "dims": [1, 16, 16, 16]}],
              "initializers": [
                {"name": "w1", "dims": [16, 16, 3, 3]},
                {"name": "w2", "dims": [16, 16, 3, 3]}
              ],
              "nodes": [
                {"op": "Conv", "name": "c1", "inputs": ["x", "w1"], "outputs": ["t"],
                 "attrs": {"pads": [1, 1, 1, 1]}},
                {"op": "Conv", "name": "c2", "inputs": ["t", "w2"], "outputs": ["y"],
                 "attrs": {"pads": [1, 1, 1, 1]}}
              ],
              "outputs": ["y"]
            }"#,
        )
        .expect("valid graph")
    }

    #[test]
    fn with_graphs_remaps_edges_through_layer_reduction() {
        let p = SpatialPlatform::edge();
        let g = conv_pair();
        let full = CoSearchEnv::with_graphs(&p, std::slice::from_ref(&g), EnvConfig::default());
        assert_eq!(
            full.fusion_edges(),
            &[vec![unico_workloads::FusionEdge {
                producer: 0,
                consumer: 1,
                elems: 16 * 16 * 16,
            }]]
        );
        // Reducing to one layer drops the edge (its endpoints no
        // longer coexist).
        let reduced = CoSearchEnv::with_graphs(
            &p,
            std::slice::from_ref(&g),
            EnvConfig {
                max_layers_per_network: 1,
                ..EnvConfig::default()
            },
        );
        assert_eq!(reduced.fusion_edges(), &[Vec::new()]);
    }

    #[test]
    fn graphs_without_pricer_assess_bitwise_identical_to_per_layer() {
        // The loop-centric engine has no fusion pricer, so even with
        // edges present the fused path must fall through to exactly
        // the per-layer arithmetic.
        let p = SpatialPlatform::edge().with_engine(unico_model::PpaEngine::LoopCentric);
        let g = conv_pair();
        let e_plain = CoSearchEnv::new(&p, &[g.network().clone()], EnvConfig::default());
        let e_fused = CoSearchEnv::with_graphs(&p, std::slice::from_ref(&g), EnvConfig::default());
        let mut rng = rand::SeedableRng::seed_from_u64(11);
        for attempt in 0..40 {
            let hw = e_plain.platform().sample_hw(&mut rng);
            let mut a = e_plain.session(hw, attempt);
            let mut b = e_fused.session(hw, attempt);
            a.advance_to(80);
            b.advance_to(80);
            if let (Some(pa), Some(pb)) = (a.assess(), b.assess()) {
                assert_eq!(pa.latency_s.to_bits(), pb.latency_s.to_bits());
                assert_eq!(pa.power_mw.to_bits(), pb.power_mw.to_bits());
                assert_eq!(pa.area_mm2.to_bits(), pb.area_mm2.to_bits());
                assert!(b.fusion_report_at(80).is_none());
                assert_eq!(b.fusion_stats().groups_tried, 0);
                return;
            }
        }
        panic!("no feasible hardware found in 40 samples");
    }

    #[test]
    fn accepted_fusion_strictly_reduces_dram_and_never_worsens_latency() {
        let p = SpatialPlatform::edge();
        let g = conv_pair();
        let e_plain = CoSearchEnv::new(&p, &[g.network().clone()], EnvConfig::default());
        let e_fused = CoSearchEnv::with_graphs(&p, std::slice::from_ref(&g), EnvConfig::default());
        let mut rng = rand::SeedableRng::seed_from_u64(13);
        for attempt in 0..60 {
            let hw = e_plain.platform().sample_hw(&mut rng);
            let mut a = e_plain.session(hw, attempt);
            let mut b = e_fused.session(hw, attempt);
            a.advance_to(80);
            b.advance_to(80);
            let (Some(pa), Some(pb)) = (a.assess(), b.assess()) else {
                continue;
            };
            let Some(report) = b.fusion_report_at(80) else {
                continue;
            };
            if report.stats.groups_accepted == 0 {
                continue;
            }
            // The accepted group holds its intermediate on-chip:
            // strictly less modeled DRAM traffic, never more latency.
            assert!(report.dram_bytes_fused < report.dram_bytes_unfused);
            assert!(pb.latency_s <= pa.latency_s);
            assert_eq!(
                report.plans,
                vec![(0, FusionPlan::from_groups(vec![vec![0, 1]]))]
            );
            assert_eq!(report.overrides.len(), 2);
            // assess() booked the planner counters.
            assert!(b.fusion_stats().groups_tried >= 1);
            assert!(b.fusion_stats().groups_accepted >= 1);
            return;
        }
        panic!("no hardware with an accepted fused group in 60 samples");
    }
}
