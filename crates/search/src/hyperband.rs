//! Hyperband over hardware sessions.
//!
//! Hyperband (Li et al., 2017) wraps successive halving in a grid of
//! *brackets* that trade the number of candidates against per-candidate
//! budget, answering SH's "n versus B/n" question. It is the scaffolding
//! BOHB builds on and a natural extra baseline for the co-search setting:
//! each bracket samples fresh hardware candidates and runs (M)SH on them.

use rand::rngs::StdRng;
use rand::SeedableRng;

use unico_model::{EvalCache, Platform};
use unico_surrogate::pareto::ParetoFront;

use crate::engine::MappingEngine;
use crate::env::{CoSearchEnv, HwSession};
use crate::sh::{self, ShConfig};
use crate::telemetry::Telemetry;
use crate::trace::{SearchTrace, SimClock};
use crate::CoSearchResult;

/// Hyperband configuration.
#[derive(Debug, Clone, Copy)]
pub struct HyperbandConfig {
    /// Maximum per-job mapping budget (`R` in Hyperband terms).
    pub b_max: u64,
    /// Halving factor `η` (candidate count per bracket scales as
    /// `η^s`).
    pub eta: u32,
    /// Number of full Hyperband rounds (each round runs every bracket).
    pub rounds: usize,
    /// AUC promotion share inside each SH run (`0` = vanilla Hyperband).
    pub auc_fraction: f64,
    /// RNG seed.
    pub seed: u64,
    /// Parallel workers for cost accounting.
    pub workers: u32,
}

impl Default for HyperbandConfig {
    fn default() -> Self {
        HyperbandConfig {
            b_max: 300,
            eta: 3,
            rounds: 2,
            auc_fraction: 0.0,
            seed: 0,
            workers: 16,
        }
    }
}

/// Number of brackets `s_max + 1 = ⌊log_η(b_max)⌋ + 1`, capped for
/// practicality.
fn num_brackets(cfg: &HyperbandConfig) -> usize {
    let mut s = 0usize;
    let mut b = cfg.b_max;
    while b >= u64::from(cfg.eta) && s < 4 {
        b /= u64::from(cfg.eta);
        s += 1;
    }
    s + 1
}

/// Runs Hyperband and returns the PPA front with its convergence trace.
pub fn run_hyperband<P: Platform>(
    env: &CoSearchEnv<'_, P>,
    cfg: &HyperbandConfig,
) -> CoSearchResult<P::Hw>
where
    P::Hw: Send,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut clock = SimClock::new(cfg.workers);
    let mut trace = SearchTrace::new();
    let mut front: ParetoFront<P::Hw> = ParetoFront::new();
    let mut hw_evals = 0usize;
    // One worker pool for every bracket of every round.
    let engine = MappingEngine::new((cfg.workers as usize).max(1));
    let cache_start = env.platform().eval_cache().map(EvalCache::stats);

    let brackets = num_brackets(cfg);
    for round in 0..cfg.rounds {
        for s in (0..brackets).rev() {
            // Bracket s: n = η^s candidates, initial budget b_max / η^s.
            let n = (u64::from(cfg.eta).pow(s as u32)).max(1) as usize;
            let mut sessions: Vec<HwSession<'_, P>> = (0..n)
                .map(|i| {
                    let hw = env.platform().sample_hw(&mut rng);
                    env.session(
                        hw,
                        cfg.seed.wrapping_add((round * 7919 + s * 131 + i) as u64),
                    )
                })
                .collect();
            let sh_cfg = ShConfig {
                b_max: cfg.b_max,
                auc_fraction: cfg.auc_fraction,
                min_budget: (cfg.b_max / u64::from(cfg.eta).pow(s as u32)).max(4),
                workers: cfg.workers as usize,
            };
            sh::run_with_engine(&mut sessions, &sh_cfg, &engine, Telemetry::global());
            let cpu: f64 = sessions.iter().map(HwSession::cost_seconds).sum();
            clock.charge(cpu, (n * env.num_jobs()) as u32);
            hw_evals += sessions.len();
            for sess in &sessions {
                if let Some(a) = sess.assess() {
                    front.offer(a.objectives(), sess.hw().clone());
                }
            }
            trace.record(clock.seconds(), front.objectives());
        }
    }

    if let (Some(cache), Some(start)) = (env.platform().eval_cache(), cache_start) {
        Telemetry::global().add_cache_stats(cache.stats().delta_since(&start));
    }

    CoSearchResult {
        front,
        wall_clock_s: clock.seconds(),
        trace,
        hw_evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvConfig;
    use unico_model::SpatialPlatform;
    use unico_workloads::zoo;

    #[test]
    fn bracket_count_grows_with_budget() {
        let small = HyperbandConfig {
            b_max: 8,
            eta: 3,
            ..HyperbandConfig::default()
        };
        let big = HyperbandConfig {
            b_max: 300,
            eta: 3,
            ..HyperbandConfig::default()
        };
        assert!(num_brackets(&big) > num_brackets(&small));
        assert!(num_brackets(&big) <= 5);
    }

    #[test]
    fn hyperband_produces_front_and_trace() {
        let p = SpatialPlatform::edge();
        let env = CoSearchEnv::new(
            &p,
            &[zoo::mobilenet_v1()],
            EnvConfig {
                max_layers_per_network: 1,
                power_cap_mw: None,
                area_cap_mm2: None,
            },
        );
        let cfg = HyperbandConfig {
            b_max: 27,
            eta: 3,
            rounds: 1,
            ..HyperbandConfig::default()
        };
        let res = run_hyperband(&env, &cfg);
        assert!(!res.front.is_empty());
        // Brackets: s = 0..=3 for b_max 27 -> 1 + 3 + 9 + 27 candidates.
        assert_eq!(res.hw_evals, 1 + 3 + 9 + 27);
        assert_eq!(res.trace.points().len(), 4);
        assert!(res.wall_clock_s > 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let p = SpatialPlatform::edge();
        let env = CoSearchEnv::new(
            &p,
            &[zoo::mobilenet_v1()],
            EnvConfig {
                max_layers_per_network: 1,
                power_cap_mw: None,
                area_cap_mm2: None,
            },
        );
        let cfg = HyperbandConfig {
            b_max: 9,
            eta: 3,
            rounds: 1,
            seed: 5,
            ..HyperbandConfig::default()
        };
        let a = run_hyperband(&env, &cfg);
        let b = run_hyperband(&env, &cfg);
        assert_eq!(a.front.objectives(), b.front.objectives());
    }
}
