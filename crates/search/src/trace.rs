//! Simulated wall-clock accounting and convergence traces.

/// Simulated wall clock for co-search cost accounting.
///
/// Every PPA evaluation charges its model's per-call cost in *CPU
/// seconds*; the clock converts CPU seconds into wall-clock seconds by
/// dividing by how many of the `workers` cores the charging phase
/// actually kept busy. This reproduces the paper's cost axis (wall-clock
/// hours on one server) without a testbed.
#[derive(Debug, Clone, Copy)]
pub struct SimClock {
    workers: u32,
    seconds: f64,
}

impl SimClock {
    /// Creates a clock with `workers` parallel workers.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: u32) -> Self {
        assert!(workers > 0, "workers must be positive");
        SimClock {
            workers,
            seconds: 0.0,
        }
    }

    /// Charges `cpu_seconds` of work that was spread over `width`
    /// concurrent tasks.
    pub fn charge(&mut self, cpu_seconds: f64, width: u32) {
        let eff = width.clamp(1, self.workers) as f64;
        self.seconds += cpu_seconds / eff;
    }

    /// Charges purely sequential overhead (surrogate fitting etc.).
    pub fn charge_sequential(&mut self, seconds: f64) {
        self.seconds += seconds;
    }

    /// Wall-clock seconds elapsed.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// A clock resumed at `seconds` elapsed (checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn resumed(workers: u32, seconds: f64) -> Self {
        let mut c = SimClock::new(workers);
        c.seconds = seconds;
        c
    }

    /// Wall-clock hours elapsed.
    pub fn hours(&self) -> f64 {
        self.seconds / 3600.0
    }

    /// Number of parallel workers.
    pub fn workers(&self) -> u32 {
        self.workers
    }
}

/// One snapshot of a search: elapsed wall-clock and the PPA Pareto front
/// at that instant.
#[derive(Debug, Clone)]
pub struct TracePoint {
    /// Simulated wall-clock seconds.
    pub seconds: f64,
    /// Pareto-front objective vectors `(latency, power, area)`.
    pub front: Vec<Vec<f64>>,
}

/// Pareto-front-over-time trace of one co-search run.
#[derive(Debug, Clone, Default)]
pub struct SearchTrace {
    points: Vec<TracePoint>,
}

impl SearchTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a snapshot.
    pub fn record(&mut self, seconds: f64, front: Vec<Vec<f64>>) {
        self.points.push(TracePoint { seconds, front });
    }

    /// Rebuilds a trace from previously recorded points (checkpoint
    /// restore); order is preserved as given.
    pub fn from_points(points: Vec<TracePoint>) -> Self {
        SearchTrace { points }
    }

    /// All snapshots in time order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// The final front, if any snapshot was recorded.
    pub fn final_front(&self) -> Option<&[Vec<f64>]> {
        self.points.last().map(|p| p.front.as_slice())
    }

    /// Hypervolume-difference series against a reference front: for each
    /// snapshot, `(seconds, HV(reference) − HV(front))`.
    pub fn hv_difference_series(
        &self,
        reference_front: &[Vec<f64>],
        reference_point: &[f64],
    ) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| {
                (
                    p.seconds,
                    unico_surrogate::hypervolume::hypervolume_difference(
                        &p.front,
                        reference_front,
                        reference_point,
                    ),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_divides_by_effective_width() {
        let mut c = SimClock::new(4);
        c.charge(40.0, 8); // only 4 workers -> 10 s
        assert!((c.seconds() - 10.0).abs() < 1e-12);
        c.charge(4.0, 1);
        assert!((c.seconds() - 14.0).abs() < 1e-12);
        c.charge_sequential(1.0);
        assert!((c.seconds() - 15.0).abs() < 1e-12);
        assert!((c.hours() - 15.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_workers_panics() {
        let _ = SimClock::new(0);
    }

    #[test]
    fn resumed_clock_and_trace_continue() {
        let mut c = SimClock::resumed(4, 12.5);
        assert_eq!(c.seconds(), 12.5);
        c.charge_sequential(0.5);
        assert!((c.seconds() - 13.0).abs() < 1e-12);

        let mut t = SearchTrace::new();
        t.record(1.0, vec![vec![0.5, 0.5]]);
        let mut resumed = SearchTrace::from_points(t.points().to_vec());
        resumed.record(2.0, vec![vec![0.25, 0.25]]);
        assert_eq!(resumed.points().len(), 2);
        assert_eq!(resumed.points()[0].seconds, 1.0);
    }

    #[test]
    fn trace_hv_series_decreases_for_improving_fronts() {
        let mut t = SearchTrace::new();
        t.record(1.0, vec![vec![0.8, 0.8]]);
        t.record(2.0, vec![vec![0.5, 0.5]]);
        let reference = vec![vec![0.5, 0.5]];
        let series = t.hv_difference_series(&reference, &[1.0, 1.0]);
        assert_eq!(series.len(), 2);
        assert!(series[0].1 > series[1].1);
        assert!(series[1].1.abs() < 1e-12);
        assert_eq!(t.final_front().unwrap().len(), 1);
    }
}
