//! Bounded worker pool for software-mapping jobs (the paper's §3.5
//! master/slave execution model, Fig. 6).
//!
//! The master (the outer MOBO loop) enqueues *jobs* — "advance this
//! hardware session to budget `b`" — and at most `workers` threads drain
//! the queue concurrently, exactly like the paper's slave machines
//! pulling SW-mapping jobs. [`advance_pooled`] is the bounded-parallelism
//! counterpart of [`crate::advance_parallel`]; with `workers ≥ jobs` the
//! two are equivalent.

use std::sync::atomic::{AtomicUsize, Ordering};

use unico_model::Platform;

use crate::env::HwSession;

/// Advances the selected sessions to `budget` using at most `workers`
/// concurrent threads (work-stealing over an atomic cursor).
///
/// # Panics
///
/// Panics if `workers == 0`, if the mask length mismatches, or if a
/// worker thread panics.
pub fn advance_pooled<P: Platform>(
    sessions: &mut [HwSession<'_, P>],
    select: &[bool],
    budget: u64,
    workers: usize,
) where
    P::Hw: Send,
{
    assert!(workers > 0, "worker pool needs at least one worker");
    assert_eq!(sessions.len(), select.len(), "selection mask length");
    // Collect the selected sessions as independent &mut cells the
    // workers can claim through an atomic cursor.
    let queue: Vec<&mut HwSession<'_, P>> = sessions
        .iter_mut()
        .zip(select)
        .filter_map(|(s, &on)| if on { Some(s) } else { None })
        .collect();
    if queue.is_empty() {
        return;
    }
    let cursor = AtomicUsize::new(0);
    let n_workers = workers.min(queue.len());
    // Hand each worker access to the whole queue through a Mutex-free
    // claim protocol: the atomic cursor yields each index exactly once.
    let slots: Vec<parking_lot::Mutex<&mut HwSession<'_, P>>> =
        queue.into_iter().map(parking_lot::Mutex::new).collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                // Exactly one worker reaches each index, so the lock is
                // always immediately available; it exists to satisfy
                // aliasing rules, not for contention.
                let mut session = slots[i].lock();
                session.advance_to(budget);
            });
        }
    })
    .expect("mapping-search worker panicked");
}

/// A reusable handle describing the compute topology of a deployment:
/// how many mapping-search workers ("slaves") the master may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeTopology {
    /// Concurrent mapping-search jobs.
    pub workers: usize,
}

impl Default for ComputeTopology {
    fn default() -> Self {
        ComputeTopology { workers: 16 }
    }
}

impl ComputeTopology {
    /// A single-machine topology with `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn local(workers: usize) -> Self {
        assert!(workers > 0, "topology needs at least one worker");
        ComputeTopology { workers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{CoSearchEnv, EnvConfig};
    use rand::SeedableRng;
    use unico_model::SpatialPlatform;
    use unico_workloads::zoo;

    fn sessions<'e>(
        env: &'e CoSearchEnv<'e, SpatialPlatform>,
        n: usize,
    ) -> Vec<HwSession<'e, SpatialPlatform>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        (0..n)
            .map(|i| env.session(env.platform().sample_hw(&mut rng), i as u64))
            .collect()
    }

    fn env(p: &SpatialPlatform) -> CoSearchEnv<'_, SpatialPlatform> {
        CoSearchEnv::new(
            p,
            &[zoo::mobilenet_v1()],
            EnvConfig {
                max_layers_per_network: 1,
                power_cap_mw: None,
                area_cap_mm2: None,
            },
        )
    }

    #[test]
    fn pooled_advance_reaches_budget_for_all_selected() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        for workers in [1usize, 2, 7, 32] {
            let mut ss = sessions(&e, 9);
            let select: Vec<bool> = (0..9).map(|i| i % 3 != 1).collect();
            advance_pooled(&mut ss, &select, 25, workers);
            for (s, &on) in ss.iter().zip(&select) {
                assert_eq!(s.spent(), if on { 25 } else { 0 }, "workers={workers}");
            }
        }
    }

    #[test]
    fn pooled_matches_unbounded_results() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        // Same seeds -> identical searcher streams regardless of which
        // worker runs them.
        let mut a = sessions(&e, 6);
        let mut b = sessions(&e, 6);
        let select = vec![true; 6];
        advance_pooled(&mut a, &select, 40, 2);
        crate::env::advance_parallel(&mut b, &select, 40);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spent(), y.spent());
            assert_eq!(
                x.assess().map(|v| v.latency_s),
                y.assess().map(|v| v.latency_s),
                "pooled and unbounded execution must be deterministic-equal"
            );
        }
    }

    #[test]
    fn empty_selection_is_noop() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let mut ss = sessions(&e, 3);
        advance_pooled(&mut ss, &[false, false, false], 10, 4);
        assert!(ss.iter().all(|s| s.spent() == 0));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let mut ss = sessions(&e, 1);
        advance_pooled(&mut ss, &[true], 10, 0);
    }

    #[test]
    fn topology_constructors() {
        assert_eq!(ComputeTopology::default().workers, 16);
        assert_eq!(ComputeTopology::local(4).workers, 4);
    }
}
