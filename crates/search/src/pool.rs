//! Bounded execution of software-mapping jobs (the paper's §3.5
//! master/slave execution model, Fig. 6).
//!
//! Two paths advance a batch of [`HwSession`]s:
//!
//! * [`advance_with_engine`] — the steady-state path: jobs are queued on
//!   a persistent [`MappingEngine`] whose workers were spawned once for
//!   the whole co-search. A job that panics is contained and its
//!   session is poisoned (assessed infeasible) instead of aborting the
//!   run.
//! * [`advance_pooled`] — the transient path kept for one-shot callers
//!   and as the respawn-per-call baseline the pool-setup benchmark
//!   compares against: it spawns at most `workers` scoped threads,
//!   drains the batch through an atomic cursor, and joins them before
//!   returning.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use unico_model::Platform;

use crate::engine::{MappingEngine, ScopedJob};
use crate::env::HwSession;
use crate::fault::{FaultContext, FaultKind};
use crate::telemetry::{Counter, Telemetry};

/// Advances the selected sessions to `budget` on a persistent engine.
///
/// Each selected session becomes one queued job. A panicking job is
/// contained by the worker and additionally marks its session as
/// poisoned (see [`HwSession::poison`]), so the batch and the enclosing
/// run keep going. Returns the number of contained panics.
///
/// # Panics
///
/// Panics if the mask length mismatches.
pub fn advance_with_engine<P: Platform>(
    engine: &MappingEngine,
    sessions: &mut [HwSession<'_, P>],
    select: &[bool],
    budget: u64,
) -> u64
where
    P::Hw: Send,
{
    assert_eq!(sessions.len(), select.len(), "selection mask length");
    let jobs: Vec<ScopedJob<'_>> = sessions
        .iter_mut()
        .zip(select)
        .filter(|&(_, &on)| on)
        .map(|(session, _)| {
            Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| session.advance_to(budget)));
                if outcome.is_err() {
                    session.poison();
                }
            }) as ScopedJob<'_>
        })
        .collect();
    engine.execute(jobs)
}

/// Fault-aware variant of [`advance_with_engine`]: consults `ctx`'s
/// [`FaultPlan`](crate::fault::FaultPlan) per *(batch, session,
/// attempt)* site and applies bounded retry-with-backoff.
///
/// Semantics per injected [`FaultKind`]:
///
/// * `WorkerPanic` — the job poisons its session and then panics inside
///   the engine worker; the engine contains it (counted in the return
///   value and the engine's `panics_contained` metric) and the poisoned
///   session assesses infeasible. No retry: a panic is not transient.
/// * `EvalError` — the advance makes no progress this attempt and the
///   session is retried after backoff, up to
///   [`RetryPolicy::max_retries`](crate::fault::RetryPolicy) times; a
///   session still failing is quarantined (poisoned) and the round goes
///   on without it.
/// * `Stall` — the job sleeps `stall_ms`; when that exceeds
///   `deadline_ms` the attempt counts as failed (retry/quarantine like
///   an error), otherwise the advance completes normally after the nap.
///   Deadline misses are decided from the configured durations, never
///   from wall clock, so fault schedules replay deterministically.
///
/// Counters recorded into `telemetry`: `faults_injected`,
/// `fault_errors` / `fault_panics` / `fault_stalls`, `fault_retries`
/// (one per retried session per attempt) and `fault_quarantines`.
/// Returns the number of worker panics the engine contained.
///
/// # Panics
///
/// Panics if the mask length mismatches.
pub fn advance_with_engine_faulted<P: Platform>(
    engine: &MappingEngine,
    sessions: &mut [HwSession<'_, P>],
    select: &[bool],
    budget: u64,
    ctx: &FaultContext,
    telemetry: &Telemetry,
) -> u64
where
    P::Hw: Send,
{
    assert_eq!(sessions.len(), select.len(), "selection mask length");
    let batch = ctx.next_batch();
    let policy = ctx.policy();
    let stall_fails = policy.stall_misses_deadline();
    // Selected sessions keep their stable index in `sessions` across
    // retry attempts — fault sites are addressed by that index.
    let mut pending: Vec<(usize, &mut HwSession<'_, P>)> = sessions
        .iter_mut()
        .zip(select)
        .enumerate()
        .filter(|(_, (_, &on))| on)
        .map(|(i, (s, _))| (i, s))
        .collect();
    let mut contained = 0u64;
    let mut attempt = 0u32;
    loop {
        let decisions: Vec<Option<FaultKind>> = pending
            .iter()
            .map(|(i, _)| ctx.plan().fault_at(batch, *i, attempt))
            .collect();
        for d in decisions.iter().flatten() {
            telemetry.add(Counter::FaultsInjected, 1);
            telemetry.add(
                match d {
                    FaultKind::EvalError => Counter::FaultErrors,
                    FaultKind::WorkerPanic => Counter::FaultPanics,
                    FaultKind::Stall => Counter::FaultStalls,
                },
                1,
            );
        }
        let jobs: Vec<ScopedJob<'_>> = pending
            .iter_mut()
            .zip(&decisions)
            .map(|(slot, d)| {
                let idx = slot.0;
                let session: &mut HwSession<'_, P> = &mut *slot.1;
                let d = *d;
                Box::new(move || match d {
                    Some(FaultKind::WorkerPanic) => {
                        // Poison before unwinding: the panic escapes this
                        // job, is contained by the engine worker, and the
                        // session still ends up infeasible.
                        session.poison();
                        panic!("unico-fault: injected worker panic (batch {batch}, session {idx})");
                    }
                    Some(FaultKind::EvalError) => {
                        // The platform evaluation errored: no progress.
                    }
                    Some(FaultKind::Stall) => {
                        std::thread::sleep(Duration::from_millis(policy.stall_ms));
                        if !stall_fails {
                            let outcome =
                                catch_unwind(AssertUnwindSafe(|| session.advance_to(budget)));
                            if outcome.is_err() {
                                session.poison();
                            }
                        }
                    }
                    None => {
                        let outcome = catch_unwind(AssertUnwindSafe(|| session.advance_to(budget)));
                        if outcome.is_err() {
                            session.poison();
                        }
                    }
                }) as ScopedJob<'_>
            })
            .collect();
        contained += engine.execute(jobs);

        let failed: Vec<bool> = decisions
            .iter()
            .map(|d| {
                matches!(d, Some(FaultKind::EvalError))
                    || (matches!(d, Some(FaultKind::Stall)) && stall_fails)
            })
            .collect();
        if !failed.iter().any(|&f| f) {
            break;
        }
        if attempt >= policy.max_retries {
            for ((_, session), &f) in pending.iter_mut().zip(&failed) {
                if f {
                    session.poison();
                    telemetry.add(Counter::FaultQuarantines, 1);
                }
            }
            break;
        }
        pending = pending
            .into_iter()
            .zip(&failed)
            .filter_map(|(slot, &f)| f.then_some(slot))
            .collect();
        attempt += 1;
        telemetry.add(Counter::FaultRetries, pending.len() as u64);
        if policy.backoff_ms > 0 {
            // Exponential backoff, capped so chaos tests stay fast.
            let wait = policy.backoff_ms << (attempt - 1).min(6);
            std::thread::sleep(Duration::from_millis(wait));
        }
    }
    contained
}

/// Advances the selected sessions to `budget` using at most `workers`
/// concurrent threads (work-stealing over an atomic cursor).
///
/// Spawns and joins threads on every call; prefer
/// [`advance_with_engine`] in loops.
///
/// # Panics
///
/// Panics if `workers == 0`, if the mask length mismatches, or if a
/// worker thread panics.
pub fn advance_pooled<P: Platform>(
    sessions: &mut [HwSession<'_, P>],
    select: &[bool],
    budget: u64,
    workers: usize,
) where
    P::Hw: Send,
{
    assert!(workers > 0, "worker pool needs at least one worker");
    assert_eq!(sessions.len(), select.len(), "selection mask length");
    // Collect the selected sessions as independent &mut cells the
    // workers can claim through an atomic cursor.
    let queue: Vec<std::sync::Mutex<&mut HwSession<'_, P>>> = sessions
        .iter_mut()
        .zip(select)
        .filter_map(|(s, &on)| {
            if on {
                Some(std::sync::Mutex::new(s))
            } else {
                None
            }
        })
        .collect();
    if queue.is_empty() {
        return;
    }
    let cursor = AtomicUsize::new(0);
    let n_workers = workers.min(queue.len());
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= queue.len() {
                    break;
                }
                // Exactly one worker reaches each index, so the lock is
                // always immediately available; it exists to satisfy
                // aliasing rules, not for contention.
                let mut session = queue[i].lock().expect("unshared session slot");
                session.advance_to(budget);
            });
        }
    });
}

/// A reusable handle describing the compute topology of a deployment:
/// how many mapping-search workers ("slaves") the master may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeTopology {
    /// Concurrent mapping-search jobs.
    pub workers: usize,
}

impl Default for ComputeTopology {
    fn default() -> Self {
        ComputeTopology { workers: 16 }
    }
}

impl ComputeTopology {
    /// A single-machine topology with `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn local(workers: usize) -> Self {
        assert!(workers > 0, "topology needs at least one worker");
        ComputeTopology { workers }
    }

    /// Spawns a persistent [`MappingEngine`] with this topology's
    /// worker count.
    pub fn spawn_engine(&self) -> MappingEngine {
        MappingEngine::new(self.workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{CoSearchEnv, EnvConfig};
    use rand::SeedableRng;
    use unico_model::SpatialPlatform;
    use unico_workloads::zoo;

    fn sessions<'e>(
        env: &'e CoSearchEnv<'e, SpatialPlatform>,
        n: usize,
    ) -> Vec<HwSession<'e, SpatialPlatform>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        (0..n)
            .map(|i| env.session(env.platform().sample_hw(&mut rng), i as u64))
            .collect()
    }

    fn env(p: &SpatialPlatform) -> CoSearchEnv<'_, SpatialPlatform> {
        CoSearchEnv::new(
            p,
            &[zoo::mobilenet_v1()],
            EnvConfig {
                max_layers_per_network: 1,
                power_cap_mw: None,
                area_cap_mm2: None,
            },
        )
    }

    #[test]
    fn pooled_advance_reaches_budget_for_all_selected() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        for workers in [1usize, 2, 7, 32] {
            let mut ss = sessions(&e, 9);
            let select: Vec<bool> = (0..9).map(|i| i % 3 != 1).collect();
            advance_pooled(&mut ss, &select, 25, workers);
            for (s, &on) in ss.iter().zip(&select) {
                assert_eq!(s.spent(), if on { 25 } else { 0 }, "workers={workers}");
            }
        }
    }

    #[test]
    fn engine_advance_reaches_budget_for_all_selected() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let engine = MappingEngine::new(4);
        let mut ss = sessions(&e, 9);
        let select: Vec<bool> = (0..9).map(|i| i % 3 != 1).collect();
        let panics = advance_with_engine(&engine, &mut ss, &select, 25);
        assert_eq!(panics, 0);
        for (s, &on) in ss.iter().zip(&select) {
            assert_eq!(s.spent(), if on { 25 } else { 0 });
            assert!(!s.is_poisoned());
        }
    }

    #[test]
    fn engine_reuse_across_rounds_spawns_once() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let engine = MappingEngine::new(3);
        let mut ss = sessions(&e, 6);
        let select = vec![true; 6];
        // Successive-halving-like doubling rounds on one engine.
        for budget in [8u64, 16, 32, 64] {
            advance_with_engine(&engine, &mut ss, &select, budget);
        }
        assert!(ss.iter().all(|s| s.spent() == 64));
        let m = engine.metrics();
        assert_eq!(m.threads_spawned, 3, "workers spawned once, not per round");
        assert_eq!(m.batches, 4);
        assert_eq!(m.jobs_executed, 24);
    }

    #[test]
    fn engine_matches_pooled_and_unbounded_results() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        // Same seeds -> identical searcher streams regardless of which
        // worker runs them.
        let mut a = sessions(&e, 6);
        let mut b = sessions(&e, 6);
        let mut c = sessions(&e, 6);
        let select = vec![true; 6];
        let engine = MappingEngine::new(2);
        advance_with_engine(&engine, &mut a, &select, 40);
        advance_pooled(&mut b, &select, 40, 2);
        crate::env::advance_parallel(&mut c, &select, 40);
        for ((x, y), z) in a.iter().zip(&b).zip(&c) {
            assert_eq!(x.spent(), y.spent());
            assert_eq!(x.spent(), z.spent());
            assert_eq!(
                x.assess().map(|v| v.latency_s),
                y.assess().map(|v| v.latency_s),
                "engine and pooled execution must be deterministic-equal"
            );
            assert_eq!(
                x.assess().map(|v| v.latency_s),
                z.assess().map(|v| v.latency_s),
                "engine and unbounded execution must be deterministic-equal"
            );
        }
    }

    #[test]
    fn empty_selection_is_noop() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let mut ss = sessions(&e, 3);
        advance_pooled(&mut ss, &[false, false, false], 10, 4);
        let engine = MappingEngine::new(2);
        advance_with_engine(&engine, &mut ss, &[false, false, false], 10);
        assert!(ss.iter().all(|s| s.spent() == 0));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let mut ss = sessions(&e, 1);
        advance_pooled(&mut ss, &[true], 10, 0);
    }

    #[test]
    fn topology_constructors() {
        assert_eq!(ComputeTopology::default().workers, 16);
        assert_eq!(ComputeTopology::local(4).workers, 4);
        assert_eq!(ComputeTopology::local(2).spawn_engine().workers(), 2);
    }
}
