//! Successive halving (SH) and the paper's modified successive halving
//! (MSH) over hardware sessions.
//!
//! Given a batch of `N` hardware candidates, mapping search proceeds in
//! `⌈log₂ N⌉` rounds of doubling per-job budget; after each round only a
//! fraction of candidates survives. Plain SH promotes the best `k = N/2`
//! by terminal value (TV). MSH reserves `p = ⌊0.15·N⌋` of those slots for
//! the steepest convergers by AUC (Fig. 4), giving fast-improving
//! candidates a second chance.

use unico_model::Platform;

use crate::env::HwSession;
use crate::pool::advance_pooled;

/// Configuration of a successive-halving run.
#[derive(Debug, Clone, Copy)]
pub struct ShConfig {
    /// Maximum per-job mapping-search budget (`b_max`).
    pub b_max: u64,
    /// Fraction of each round's survivor slots reserved for AUC-based
    /// promotion (`p/N`). `0.0` recovers plain SH; UNICO uses `0.15`.
    pub auc_fraction: f64,
    /// Lower bound on any round's budget.
    pub min_budget: u64,
    /// Concurrent mapping-search workers draining the round's job queue
    /// (the paper's slave pool, Fig. 6).
    pub workers: usize,
}

impl ShConfig {
    /// Plain successive halving with the given maximum budget.
    pub fn plain(b_max: u64) -> Self {
        ShConfig {
            b_max,
            auc_fraction: 0.0,
            min_budget: 8,
            workers: 16,
        }
    }

    /// The paper's modified successive halving (`p = 0.15 N`).
    pub fn modified(b_max: u64) -> Self {
        ShConfig {
            b_max,
            auc_fraction: 0.15,
            min_budget: 8,
            workers: 16,
        }
    }
}

/// Outcome of one SH/MSH run.
#[derive(Debug, Clone)]
pub struct ShOutcome {
    /// Indices of the sessions that survived to the final budget.
    pub finalists: Vec<usize>,
    /// The budget each round ran to (last = `b_max`).
    pub round_budgets: Vec<u64>,
}

/// Runs SH/MSH over `sessions`, advancing survivors in parallel each
/// round. All sessions retain their (partial) histories so the caller
/// can still assess early-stopped candidates.
///
/// # Panics
///
/// Panics if `sessions` is empty.
pub fn run<P: Platform>(sessions: &mut [HwSession<'_, P>], cfg: &ShConfig) -> ShOutcome
where
    P::Hw: Send,
{
    assert!(!sessions.is_empty(), "successive halving needs candidates");
    let n = sessions.len();
    let rounds = (usize::BITS - (n - 1).leading_zeros()).max(1); // ceil(log2 n)
    let mut alive: Vec<bool> = vec![true; n];
    let mut round_budgets = Vec::new();

    for j in 1..=rounds {
        let budget = (cfg.b_max >> (rounds - j)).max(cfg.min_budget).max(1);
        round_budgets.push(budget);
        advance_pooled(sessions, &alive, budget, cfg.workers);
        if j == rounds {
            break;
        }
        let survivors: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
        let selected = select_survivors(sessions, &survivors, budget, cfg.auc_fraction);
        for flag in alive.iter_mut() {
            *flag = false;
        }
        for &i in &selected {
            alive[i] = true;
        }
    }

    ShOutcome {
        finalists: (0..n).filter(|&i| alive[i]).collect(),
        round_budgets,
    }
}

/// The TV ∪ AUC promotion rule: `k − p` slots by terminal value, `p`
/// slots by AUC (skipping candidates already chosen by TV).
fn select_survivors<P: Platform>(
    sessions: &[HwSession<'_, P>],
    candidates: &[usize],
    budget: u64,
    auc_fraction: f64,
) -> Vec<usize> {
    let n = candidates.len();
    let k = (n / 2).max(1);
    let p = ((auc_fraction * n as f64).floor() as usize).min(k.saturating_sub(1));

    let tv = |i: usize| {
        sessions[i]
            .assess_at(budget)
            .map_or(f64::INFINITY, |a| a.latency_s)
    };
    let mut by_tv: Vec<usize> = candidates.to_vec();
    by_tv.sort_by(|&a, &b| tv(a).partial_cmp(&tv(b)).unwrap_or(std::cmp::Ordering::Equal));
    let mut selected: Vec<usize> = by_tv.iter().copied().take(k - p).collect();

    if p > 0 {
        let mut by_auc: Vec<usize> = candidates.to_vec();
        by_auc.sort_by(|&a, &b| {
            sessions[b]
                .auc_at(budget)
                .partial_cmp(&sessions[a].auc_at(budget))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for i in by_auc {
            if selected.len() >= k {
                break;
            }
            if !selected.contains(&i) {
                selected.push(i);
            }
        }
        // Top up from TV order if AUC produced duplicates only.
        for i in by_tv {
            if selected.len() >= k {
                break;
            }
            if !selected.contains(&i) {
                selected.push(i);
            }
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{CoSearchEnv, EnvConfig};
    use rand::SeedableRng;
    use unico_model::SpatialPlatform;
    use unico_workloads::zoo;

    fn sessions<'e>(
        env: &'e CoSearchEnv<'e, SpatialPlatform>,
        n: usize,
    ) -> Vec<HwSession<'e, SpatialPlatform>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        (0..n)
            .map(|i| env.session(env.platform().sample_hw(&mut rng), i as u64))
            .collect()
    }

    #[test]
    fn sh_halves_down_to_final_budget() {
        let p = SpatialPlatform::edge();
        let env = CoSearchEnv::new(
            &p,
            &[zoo::mobilenet_v1()],
            EnvConfig {
                max_layers_per_network: 1,
                power_cap_mw: None,
                area_cap_mm2: None,
            },
        );
        let mut ss = sessions(&env, 8);
        let out = run(&mut ss, &ShConfig::plain(64));
        assert_eq!(out.round_budgets.len(), 3);
        assert_eq!(*out.round_budgets.last().unwrap(), 64);
        // 8 -> 4 -> 2 survivors reach the final round.
        assert_eq!(out.finalists.len(), 2);
        for &i in &out.finalists {
            assert_eq!(ss[i].spent(), 64);
        }
        // Early-stopped sessions keep partial histories.
        let stopped: Vec<usize> = (0..8).filter(|i| !out.finalists.contains(i)).collect();
        assert!(stopped.iter().any(|&i| ss[i].spent() < 64));
        assert!(stopped.iter().all(|&i| ss[i].spent() > 0));
    }

    #[test]
    fn msh_promotes_by_auc_too() {
        let p = SpatialPlatform::edge();
        let env = CoSearchEnv::new(
            &p,
            &[zoo::mobilenet_v1()],
            EnvConfig {
                max_layers_per_network: 1,
                power_cap_mw: None,
                area_cap_mm2: None,
            },
        );
        let mut ss = sessions(&env, 8);
        let out = run(&mut ss, &ShConfig::modified(64));
        assert_eq!(out.finalists.len(), 2);
    }

    #[test]
    fn single_candidate_goes_straight_to_bmax() {
        let p = SpatialPlatform::edge();
        let env = CoSearchEnv::new(
            &p,
            &[zoo::mobilenet_v1()],
            EnvConfig {
                max_layers_per_network: 1,
                power_cap_mw: None,
                area_cap_mm2: None,
            },
        );
        let mut ss = sessions(&env, 1);
        let out = run(&mut ss, &ShConfig::plain(32));
        assert_eq!(out.finalists, vec![0]);
        assert_eq!(ss[0].spent(), 32);
    }

    #[test]
    fn plain_vs_modified_config() {
        assert_eq!(ShConfig::plain(100).auc_fraction, 0.0);
        assert!((ShConfig::modified(100).auc_fraction - 0.15).abs() < 1e-12);
    }
}
