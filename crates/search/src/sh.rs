//! Successive halving (SH) and the paper's modified successive halving
//! (MSH) over hardware sessions.
//!
//! Given a batch of `N` hardware candidates, mapping search proceeds in
//! `⌈log₂ N⌉` rounds of doubling per-job budget; after each round only a
//! fraction of candidates survives. Plain SH promotes the best `k = N/2`
//! by terminal value (TV). MSH reserves `p = ⌊0.15·N⌋` of those slots for
//! the steepest convergers by AUC (Fig. 4), giving fast-improving
//! candidates a second chance.
//!
//! Promotion keys (TV and AUC at the round budget) are computed **once
//! per candidate** before sorting: both are O(budget) history scans, so
//! evaluating them inside sort comparators — as the seed did — turns
//! promotion into `O(n log n · b_max)` history walks per round.

use unico_model::Platform;

use crate::engine::MappingEngine;
use crate::env::HwSession;
use crate::fault::FaultContext;
use crate::pool::{advance_with_engine, advance_with_engine_faulted};
use crate::telemetry::{Counter, Telemetry};

/// Configuration of a successive-halving run.
#[derive(Debug, Clone, Copy)]
pub struct ShConfig {
    /// Maximum per-job mapping-search budget (`b_max`).
    pub b_max: u64,
    /// Fraction of each round's survivor slots reserved for AUC-based
    /// promotion (`p/N`). `0.0` recovers plain SH; UNICO uses `0.15`.
    pub auc_fraction: f64,
    /// Lower bound on any round's budget.
    pub min_budget: u64,
    /// Concurrent mapping-search workers draining the round's job queue
    /// (the paper's slave pool, Fig. 6).
    pub workers: usize,
}

impl ShConfig {
    /// Plain successive halving with the given maximum budget.
    pub fn plain(b_max: u64) -> Self {
        ShConfig {
            b_max,
            auc_fraction: 0.0,
            min_budget: 8,
            workers: 16,
        }
    }

    /// The paper's modified successive halving (`p = 0.15 N`).
    pub fn modified(b_max: u64) -> Self {
        ShConfig {
            b_max,
            auc_fraction: 0.15,
            min_budget: 8,
            workers: 16,
        }
    }
}

/// Outcome of one SH/MSH run.
#[derive(Debug, Clone)]
pub struct ShOutcome {
    /// Indices of the sessions that survived to the final budget.
    pub finalists: Vec<usize>,
    /// The budget each round ran to (last = `b_max`).
    pub round_budgets: Vec<u64>,
    /// Worker panics contained during the run (those sessions are
    /// poisoned and assess as infeasible).
    pub contained_panics: u64,
}

/// Runs SH/MSH over `sessions` on a transient engine.
///
/// Spawns (and on return tears down) a worker pool of its own; loops
/// should create one [`MappingEngine`] and call [`run_with_engine`].
///
/// # Panics
///
/// Panics if `sessions` is empty.
pub fn run<P: Platform>(sessions: &mut [HwSession<'_, P>], cfg: &ShConfig) -> ShOutcome
where
    P::Hw: Send,
{
    let engine = MappingEngine::new(cfg.workers);
    let telemetry = Telemetry::new();
    run_with_engine(sessions, cfg, &engine, &telemetry)
}

/// Runs SH/MSH over `sessions`, advancing survivors on the given
/// persistent engine and recording counters into `telemetry`. All
/// sessions retain their (partial) histories so the caller can still
/// assess early-stopped candidates.
///
/// # Panics
///
/// Panics if `sessions` is empty.
pub fn run_with_engine<P: Platform>(
    sessions: &mut [HwSession<'_, P>],
    cfg: &ShConfig,
    engine: &MappingEngine,
    telemetry: &Telemetry,
) -> ShOutcome
where
    P::Hw: Send,
{
    run_with_engine_faulted(sessions, cfg, engine, telemetry, None)
}

/// [`run_with_engine`] with an optional deterministic fault-injection
/// context: every round's advance goes through
/// [`advance_with_engine_faulted`], which retries transient failures and
/// quarantines sessions that exhaust their retries. Poisoned sessions
/// stay in the candidate set but assess as infeasible, so promotion
/// naturally drops them.
///
/// # Panics
///
/// Panics if `sessions` is empty.
pub fn run_with_engine_faulted<P: Platform>(
    sessions: &mut [HwSession<'_, P>],
    cfg: &ShConfig,
    engine: &MappingEngine,
    telemetry: &Telemetry,
    faults: Option<&FaultContext>,
) -> ShOutcome
where
    P::Hw: Send,
{
    assert!(!sessions.is_empty(), "successive halving needs candidates");
    let n = sessions.len();
    let rounds = (usize::BITS - (n - 1).leading_zeros()).max(1); // ceil(log2 n)
    let mut alive: Vec<bool> = vec![true; n];
    let mut round_budgets = Vec::new();
    let mut contained_panics = 0u64;
    // Gradient-search counters are cumulative per searcher; snapshot so
    // only this run's progress is booked even on resumed sessions.
    let mut gradient_before = unico_mapping::GradientStats::default();
    for s in sessions.iter() {
        gradient_before.absorb(&s.gradient_stats());
    }

    for j in 1..=rounds {
        let budget = (cfg.b_max >> (rounds - j)).max(cfg.min_budget).max(1);
        round_budgets.push(budget);
        contained_panics += match faults {
            Some(ctx) => {
                advance_with_engine_faulted(engine, sessions, &alive, budget, ctx, telemetry)
            }
            None => advance_with_engine(engine, sessions, &alive, budget),
        };
        telemetry.add(Counter::ShRounds, 1);
        if j == rounds {
            break;
        }
        let survivors: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
        let selected = select_survivors(sessions, &survivors, budget, cfg.auc_fraction, telemetry);
        for flag in alive.iter_mut() {
            *flag = false;
        }
        for &i in &selected {
            alive[i] = true;
        }
    }

    let mut gradient_after = unico_mapping::GradientStats::default();
    for s in sessions.iter() {
        gradient_after.absorb(&s.gradient_stats());
    }
    telemetry.add_gradient_stats(gradient_after.delta_since(&gradient_before));

    ShOutcome {
        finalists: (0..n).filter(|&i| alive[i]).collect(),
        round_budgets,
        contained_panics,
    }
}

/// Survivor-slot split of one halving round over `n` candidates: `k`
/// total survivors, of which at most `p` come through the AUC-reserved
/// slots.
pub fn promotion_quota(n: usize, auc_fraction: f64) -> (usize, usize) {
    let k = (n / 2).max(1);
    let p = ((auc_fraction * n as f64).floor() as usize).min(k.saturating_sub(1));
    (k, p)
}

/// Result of [`select_by_keys`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Chosen positions (into the key slices), in selection order.
    pub selected: Vec<usize>,
    /// How many of [`Selection::selected`] entered through the
    /// AUC-reserved slots (never exceeds `p`).
    pub promoted_by_auc: usize,
}

/// The TV ∪ AUC promotion rule over precomputed per-candidate keys:
/// `k − p` slots by ascending terminal value, then up to `p` slots by
/// descending AUC (skipping candidates already chosen), topping up from
/// TV order if the AUC pass only produced duplicates.
///
/// Pure and deterministic — property tests exercise it directly.
///
/// # Panics
///
/// Panics if the key slices differ in length, are empty, or `k == 0`.
pub fn select_by_keys(tv: &[f64], auc: &[f64], k: usize, p: usize) -> Selection {
    assert_eq!(tv.len(), auc.len(), "key slices must align");
    assert!(!tv.is_empty(), "selection needs candidates");
    assert!(k > 0, "selection needs at least one survivor slot");
    let k = k.min(tv.len());
    let p = p.min(k.saturating_sub(1));

    let mut by_tv: Vec<usize> = (0..tv.len()).collect();
    by_tv.sort_by(|&a, &b| {
        tv[a]
            .partial_cmp(&tv[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut selected: Vec<usize> = by_tv.iter().copied().take(k - p).collect();
    let mut promoted_by_auc = 0usize;

    if p > 0 {
        let mut by_auc: Vec<usize> = (0..auc.len()).collect();
        by_auc.sort_by(|&a, &b| {
            auc[b]
                .partial_cmp(&auc[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for i in by_auc {
            if selected.len() >= k {
                break;
            }
            if !selected.contains(&i) {
                selected.push(i);
                promoted_by_auc += 1;
            }
        }
        // Top up from TV order if AUC produced duplicates only.
        for i in by_tv {
            if selected.len() >= k {
                break;
            }
            if !selected.contains(&i) {
                selected.push(i);
            }
        }
    }
    Selection {
        selected,
        promoted_by_auc,
    }
}

/// Applies [`select_by_keys`] to live sessions: computes each
/// candidate's TV and AUC at `budget` exactly once, then maps the
/// selection back to session indices.
fn select_survivors<P: Platform>(
    sessions: &[HwSession<'_, P>],
    candidates: &[usize],
    budget: u64,
    auc_fraction: f64,
    telemetry: &Telemetry,
) -> Vec<usize> {
    let (k, p) = promotion_quota(candidates.len(), auc_fraction);
    // Precompute both keys once per candidate: assess_at and auc_at
    // each walk O(budget) history, which must not run inside sort
    // comparators.
    let tv: Vec<f64> = candidates
        .iter()
        .map(|&i| {
            sessions[i]
                .assess_at(budget)
                .map_or(f64::INFINITY, |a| a.latency_s)
        })
        .collect();
    let auc: Vec<f64> = if p > 0 {
        candidates
            .iter()
            .map(|&i| sessions[i].auc_at(budget))
            .collect()
    } else {
        vec![0.0; candidates.len()]
    };
    let selection = select_by_keys(&tv, &auc, k, p);
    telemetry.add(
        Counter::ShPromotionsTv,
        (selection.selected.len() - selection.promoted_by_auc) as u64,
    );
    telemetry.add(Counter::ShPromotionsAuc, selection.promoted_by_auc as u64);
    selection
        .selected
        .iter()
        .map(|&pos| candidates[pos])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{CoSearchEnv, EnvConfig};
    use rand::SeedableRng;
    use unico_model::SpatialPlatform;
    use unico_workloads::zoo;

    fn sessions<'e>(
        env: &'e CoSearchEnv<'e, SpatialPlatform>,
        n: usize,
    ) -> Vec<HwSession<'e, SpatialPlatform>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        (0..n)
            .map(|i| env.session(env.platform().sample_hw(&mut rng), i as u64))
            .collect()
    }

    fn test_env(p: &SpatialPlatform) -> CoSearchEnv<'_, SpatialPlatform> {
        CoSearchEnv::new(
            p,
            &[zoo::mobilenet_v1()],
            EnvConfig {
                max_layers_per_network: 1,
                power_cap_mw: None,
                area_cap_mm2: None,
            },
        )
    }

    #[test]
    fn sh_halves_down_to_final_budget() {
        let p = SpatialPlatform::edge();
        let env = test_env(&p);
        let mut ss = sessions(&env, 8);
        let out = run(&mut ss, &ShConfig::plain(64));
        assert_eq!(out.round_budgets.len(), 3);
        assert_eq!(*out.round_budgets.last().unwrap(), 64);
        assert_eq!(out.contained_panics, 0);
        // 8 -> 4 -> 2 survivors reach the final round.
        assert_eq!(out.finalists.len(), 2);
        for &i in &out.finalists {
            assert_eq!(ss[i].spent(), 64);
        }
        // Early-stopped sessions keep partial histories.
        let stopped: Vec<usize> = (0..8).filter(|i| !out.finalists.contains(i)).collect();
        assert!(stopped.iter().any(|&i| ss[i].spent() < 64));
        assert!(stopped.iter().all(|&i| ss[i].spent() > 0));
    }

    #[test]
    fn msh_promotes_by_auc_too() {
        let p = SpatialPlatform::edge();
        let env = test_env(&p);
        let mut ss = sessions(&env, 8);
        let out = run(&mut ss, &ShConfig::modified(64));
        assert_eq!(out.finalists.len(), 2);
    }

    #[test]
    fn engine_reused_across_all_rounds() {
        let p = SpatialPlatform::edge();
        let env = test_env(&p);
        let engine = MappingEngine::new(4);
        let telemetry = Telemetry::new();
        let mut ss = sessions(&env, 8);
        let out = run_with_engine(&mut ss, &ShConfig::modified(64), &engine, &telemetry);
        assert_eq!(out.finalists.len(), 2);
        let m = engine.metrics();
        assert_eq!(m.threads_spawned, 4, "one spawn for all rounds");
        assert_eq!(m.batches as usize, out.round_budgets.len());
        assert_eq!(telemetry.get(Counter::ShRounds), 3);
        // Every intermediate round promotes k survivors in total.
        assert_eq!(
            telemetry.get(Counter::ShPromotionsTv) + telemetry.get(Counter::ShPromotionsAuc),
            4 + 2
        );
    }

    #[test]
    fn single_candidate_goes_straight_to_bmax() {
        let p = SpatialPlatform::edge();
        let env = test_env(&p);
        let mut ss = sessions(&env, 1);
        let out = run(&mut ss, &ShConfig::plain(32));
        assert_eq!(out.finalists, vec![0]);
        assert_eq!(ss[0].spent(), 32);
    }

    #[test]
    fn plain_vs_modified_config() {
        assert_eq!(ShConfig::plain(100).auc_fraction, 0.0);
        assert!((ShConfig::modified(100).auc_fraction - 0.15).abs() < 1e-12);
    }

    #[test]
    fn quota_matches_paper_defaults() {
        // N = 30: k = 15, p = ⌊0.15·30⌋ = 4.
        assert_eq!(promotion_quota(30, 0.15), (15, 4));
        // Plain SH reserves nothing.
        assert_eq!(promotion_quota(30, 0.0), (15, 0));
        // p is capped below k.
        assert_eq!(promotion_quota(2, 0.9), (1, 0));
    }

    #[test]
    fn select_by_keys_prefers_tv_then_auc() {
        // TV order: 2, 0, 1, 3; AUC order: 3, 1, 0, 2.
        let tv = [2.0, 3.0, 1.0, 9.0];
        let auc = [0.2, 0.5, 0.1, 0.9];
        let s = select_by_keys(&tv, &auc, 2, 1);
        // One slot by TV (index 2), one by AUC (index 3).
        assert_eq!(s.selected, vec![2, 3]);
        assert_eq!(s.promoted_by_auc, 1);
        // Plain SH: both slots by TV.
        let s = select_by_keys(&tv, &auc, 2, 0);
        assert_eq!(s.selected, vec![2, 0]);
        assert_eq!(s.promoted_by_auc, 0);
    }
}
