//! Co-search drivers and baselines for UNICO.
//!
//! This crate hosts everything that *drives* hardware–software co-search
//! other than the UNICO algorithm itself (which lives in `unico-core`):
//!
//! * [`CoSearchEnv`] / [`HwSession`] — the shared evaluation environment:
//!   one session per hardware candidate holds a resumable mapping
//!   searcher per (network, layer) job, advances them in parallel, and
//!   aggregates per-layer best mappings into network-level PPA with
//!   simulated wall-clock cost accounting;
//! * [`sh`] — successive halving and the paper's *modified* successive
//!   halving (MSH) that promotes by terminal value **and** convergence
//!   rate (AUC);
//! * [`run_nsga2`] — a full NSGA-II multi-objective baseline over the
//!   hardware space;
//! * [`run_hasco`] — a HASCO-like baseline: single-candidate Bayesian
//!   optimization with full-budget inner mapping search and
//!   champion-only surrogate updates;
//! * [`run_mobohb`] — a multi-objective BOHB baseline: batched BO with
//!   vanilla successive halving and all-sample surrogate updates;
//! * [`SimClock`] / [`SearchTrace`] — simulated wall-clock accounting and
//!   Pareto-front-over-time traces used to regenerate the paper's
//!   hypervolume plots.

#![warn(missing_docs)]
// `unsafe` is denied crate-wide; the single allowed exception is the
// documented lifetime erasure inside `engine` (scoped-threadpool
// pattern: `execute` blocks until every borrowed job has completed).
#![deny(unsafe_code)]

mod bohb;
pub mod engine;
mod env;
pub mod fault;
mod hasco;
mod hyperband;
mod nsga2;
pub mod pool;
pub mod sh;
pub mod telemetry;
mod trace;

pub use bohb::{run_mobohb, MobohbConfig};
pub use engine::{EngineMetrics, MappingEngine};
pub use env::{
    advance_parallel, evaluate_batch, Assessment, CoSearchEnv, EnvConfig, FusionReport, HwSession,
};
pub use fault::{FaultContext, FaultKind, FaultPlan, RetryPolicy};
pub use hasco::{run_hasco, HascoConfig};
pub use hyperband::{run_hyperband, HyperbandConfig};
pub use nsga2::{run_nsga2, Nsga2Config};
pub use pool::{advance_pooled, advance_with_engine, advance_with_engine_faulted, ComputeTopology};
pub use telemetry::{
    CacheReport, CheckpointReport, Counter, FaultReport, RunReport, Telemetry, TelemetrySnapshot,
};
pub use trace::{SearchTrace, SimClock, TracePoint};
// The evaluation cache itself lives in `unico-model` (the crate every
// PPA engine sees); re-exported here because the search drivers are
// what record and replay it.
pub use unico_model::{
    spatial_eval_key, CacheStats, EngineTag, EvalCache, EvalKey, EvalKeyBuilder, TraceError,
};

/// Result common to all outer-loop searches: the PPA Pareto front of
/// hardware configurations, the convergence trace, and eval statistics.
#[derive(Debug, Clone)]
pub struct CoSearchResult<H> {
    /// Pareto front over `(latency, power, area)`.
    pub front: unico_surrogate::pareto::ParetoFront<H>,
    /// Front snapshots over simulated wall-clock time.
    pub trace: SearchTrace,
    /// Number of hardware configurations fully evaluated.
    pub hw_evals: usize,
    /// Total simulated wall-clock seconds consumed.
    pub wall_clock_s: f64,
}
