//! NSGA-II baseline over the hardware design space.
//!
//! A faithful NSGA-II: fast non-dominated sorting, crowding distance,
//! binary crowded-tournament selection, platform-level crossover and
//! mutation. Every individual's inner mapping search runs to the full
//! budget (no early stopping), which is what makes the evolutionary
//! baseline expensive relative to UNICO.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use unico_model::Platform;
use unico_surrogate::pareto::{crowding_distance, non_dominated_sort, ParetoFront};

use crate::env::{evaluate_batch, Assessment, CoSearchEnv};
use crate::trace::{SearchTrace, SimClock};
use crate::CoSearchResult;

/// NSGA-II configuration.
#[derive(Debug, Clone, Copy)]
pub struct Nsga2Config {
    /// Population size.
    pub population: usize,
    /// Number of generations (beyond the initial population).
    pub generations: usize,
    /// Full per-job mapping-search budget for each individual.
    pub inner_budget: u64,
    /// Mutation probability per offspring (crossover otherwise).
    pub mutation_rate: f64,
    /// RNG seed.
    pub seed: u64,
    /// Parallel workers for cost accounting.
    pub workers: u32,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            population: 20,
            generations: 10,
            inner_budget: 300,
            mutation_rate: 0.3,
            seed: 0,
            workers: 16,
        }
    }
}

type Individual<H> = (H, Option<Assessment>);

/// Runs NSGA-II and returns the PPA front with its convergence trace.
///
/// # Panics
///
/// Panics if `population < 2`.
pub fn run_nsga2<P: Platform>(env: &CoSearchEnv<'_, P>, cfg: &Nsga2Config) -> CoSearchResult<P::Hw>
where
    P::Hw: Send,
{
    assert!(cfg.population >= 2, "population must be at least 2");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut clock = SimClock::new(cfg.workers);
    let mut trace = SearchTrace::new();
    let mut front: ParetoFront<P::Hw> = ParetoFront::new();
    let mut hw_evals = 0usize;

    let evaluate = |hws: Vec<P::Hw>,
                    gen: u64,
                    clock: &mut SimClock,
                    front: &mut ParetoFront<P::Hw>,
                    hw_evals: &mut usize|
     -> Vec<Individual<P::Hw>> {
        let n = hws.len();
        let (evald, cpu, width) = evaluate_batch(
            env,
            hws,
            cfg.inner_budget,
            cfg.seed.wrapping_add(gen * 7919),
        );
        clock.charge(cpu, width);
        *hw_evals += n;
        for (hw, a) in &evald {
            if let Some(a) = a {
                front.offer(a.objectives(), hw.clone());
            }
        }
        evald
    };

    // Initial population.
    let init: Vec<P::Hw> = (0..cfg.population)
        .map(|_| env.platform().sample_hw(&mut rng))
        .collect();
    let mut pop = evaluate(init, 0, &mut clock, &mut front, &mut hw_evals);
    trace.record(clock.seconds(), front.objectives());

    for gen in 1..=cfg.generations {
        let ranks = rank_population(&pop);
        let crowd = crowding_by_rank(&pop, &ranks);
        // Offspring via crowded binary tournament + variation.
        let mut offspring_hw = Vec::with_capacity(cfg.population);
        for _ in 0..cfg.population {
            let a = tournament(&mut rng, &ranks, &crowd);
            let child = if rng.gen_bool(cfg.mutation_rate) {
                env.platform().perturb_hw(&mut rng, &pop[a].0)
            } else {
                let b = tournament(&mut rng, &ranks, &crowd);
                env.platform().crossover_hw(&mut rng, &pop[a].0, &pop[b].0)
            };
            offspring_hw.push(child);
        }
        let offspring = evaluate(
            offspring_hw,
            gen as u64,
            &mut clock,
            &mut front,
            &mut hw_evals,
        );
        clock.charge_sequential(1.0); // selection overhead

        // Environmental selection over parents + offspring.
        let mut combined = pop;
        combined.extend(offspring);
        pop = environmental_selection(combined, cfg.population);
        trace.record(clock.seconds(), front.objectives());
    }

    CoSearchResult {
        front,
        wall_clock_s: clock.seconds(),
        trace,
        hw_evals,
    }
}

/// Rank of each individual: non-domination front index; infeasible
/// individuals rank after every feasible front.
fn rank_population<H>(pop: &[Individual<H>]) -> Vec<usize> {
    let feasible: Vec<usize> = (0..pop.len()).filter(|&i| pop[i].1.is_some()).collect();
    let points: Vec<Vec<f64>> = feasible
        .iter()
        .map(|&i| pop[i].1.as_ref().expect("filtered feasible").objectives())
        .collect();
    let fronts = non_dominated_sort(&points);
    let mut rank = vec![fronts.len(); pop.len()]; // infeasible: worst rank
    for (r, f) in fronts.iter().enumerate() {
        for &local in f {
            rank[feasible[local]] = r;
        }
    }
    rank
}

/// Crowding distance computed within each rank.
fn crowding_by_rank<H>(pop: &[Individual<H>], ranks: &[usize]) -> Vec<f64> {
    let mut crowd = vec![0.0f64; pop.len()];
    let max_rank = ranks.iter().copied().max().unwrap_or(0);
    for r in 0..=max_rank {
        let members: Vec<usize> = (0..pop.len()).filter(|&i| ranks[i] == r).collect();
        let pts: Vec<Vec<f64>> = members
            .iter()
            .map(|&i| {
                pop[i]
                    .1
                    .as_ref()
                    .map_or(vec![f64::MAX; 3], |a| a.objectives())
            })
            .collect();
        for (local, d) in crowding_distance(&pts).into_iter().enumerate() {
            crowd[members[local]] = d;
        }
    }
    crowd
}

fn tournament(rng: &mut StdRng, ranks: &[usize], crowd: &[f64]) -> usize {
    let a = rng.gen_range(0..ranks.len());
    let b = rng.gen_range(0..ranks.len());
    match ranks[a].cmp(&ranks[b]) {
        std::cmp::Ordering::Less => a,
        std::cmp::Ordering::Greater => b,
        std::cmp::Ordering::Equal => {
            if crowd[a] >= crowd[b] {
                a
            } else {
                b
            }
        }
    }
}

fn environmental_selection<H: Clone>(
    combined: Vec<Individual<H>>,
    target: usize,
) -> Vec<Individual<H>> {
    let ranks = rank_population(&combined);
    let crowd = crowding_by_rank(&combined, &ranks);
    let mut order: Vec<usize> = (0..combined.len()).collect();
    order.sort_by(|&a, &b| {
        ranks[a].cmp(&ranks[b]).then(
            crowd[b]
                .partial_cmp(&crowd[a])
                .unwrap_or(std::cmp::Ordering::Equal),
        )
    });
    order
        .into_iter()
        .take(target)
        .map(|i| combined[i].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvConfig;
    use unico_model::SpatialPlatform;
    use unico_workloads::zoo;

    #[test]
    fn nsga2_produces_nonempty_front_and_trace() {
        let p = SpatialPlatform::edge();
        let env = CoSearchEnv::new(
            &p,
            &[zoo::mobilenet_v1()],
            EnvConfig {
                max_layers_per_network: 1,
                power_cap_mw: None,
                area_cap_mm2: None,
            },
        );
        let cfg = Nsga2Config {
            population: 6,
            generations: 2,
            inner_budget: 24,
            ..Nsga2Config::default()
        };
        let res = run_nsga2(&env, &cfg);
        assert!(!res.front.is_empty(), "front must be populated");
        assert_eq!(res.hw_evals, 6 * 3);
        assert_eq!(res.trace.points().len(), 3);
        assert!(res.wall_clock_s > 0.0);
        // Trace fronts never shrink in quality: last snapshot equals the
        // final front.
        assert_eq!(
            res.trace.final_front().unwrap().len(),
            res.front.objectives().len()
        );
    }

    #[test]
    fn rank_puts_infeasible_last() {
        let pop: Vec<Individual<u8>> = vec![
            (
                0,
                Some(Assessment {
                    latency_s: 1.0,
                    power_mw: 1.0,
                    area_mm2: 1.0,
                }),
            ),
            (1, None),
        ];
        let ranks = rank_population(&pop);
        assert!(ranks[1] > ranks[0]);
    }

    #[test]
    fn environmental_selection_prefers_low_rank() {
        let mk = |l: f64| Assessment {
            latency_s: l,
            power_mw: 1.0,
            area_mm2: 1.0,
        };
        let combined: Vec<Individual<u8>> = vec![
            (0, Some(mk(5.0))),
            (1, Some(mk(1.0))),
            (2, None),
            (3, Some(mk(3.0))),
        ];
        let next = environmental_selection(combined, 2);
        let ids: Vec<u8> = next.iter().map(|(h, _)| *h).collect();
        assert!(ids.contains(&1));
        assert!(!ids.contains(&2));
    }
}
