//! HASCO-like baseline: sequential multi-objective Bayesian optimization
//! with full-budget inner mapping search.
//!
//! One hardware candidate per iteration, chosen by expected improvement
//! on a ParEGO-scalarized GP surrogate (fresh random weights each
//! iteration); its software mapping search always runs to the full
//! budget. This is the "ChampionUpdate without SH" configuration the
//! paper ablates against.

use rand::rngs::StdRng;
use rand::SeedableRng;

use unico_model::Platform;
use unico_surrogate::pareto::ParetoFront;
use unico_surrogate::scalarize::{normalize_columns, parego, sample_simplex, DEFAULT_RHO};
use unico_surrogate::{expected_improvement, GaussianProcess, KernelKind};

use crate::env::{evaluate_batch, CoSearchEnv};
use crate::trace::{SearchTrace, SimClock};
use crate::CoSearchResult;

/// HASCO-like baseline configuration.
#[derive(Debug, Clone, Copy)]
pub struct HascoConfig {
    /// Outer iterations (one hardware evaluation each).
    pub iterations: usize,
    /// Full per-job mapping-search budget.
    pub inner_budget: u64,
    /// Random candidate pool size scored by the acquisition.
    pub candidate_pool: usize,
    /// Random exploration iterations before the surrogate kicks in.
    pub warmup: usize,
    /// RNG seed.
    pub seed: u64,
    /// Parallel workers for cost accounting (inner jobs only — the outer
    /// loop is sequential, which is HASCO's handicap).
    pub workers: u32,
}

impl Default for HascoConfig {
    fn default() -> Self {
        HascoConfig {
            iterations: 40,
            inner_budget: 300,
            candidate_pool: 128,
            warmup: 6,
            seed: 0,
            workers: 16,
        }
    }
}

/// Runs the HASCO-like baseline.
pub fn run_hasco<P: Platform>(env: &CoSearchEnv<'_, P>, cfg: &HascoConfig) -> CoSearchResult<P::Hw>
where
    P::Hw: Send,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut clock = SimClock::new(cfg.workers);
    let mut trace = SearchTrace::new();
    let mut front: ParetoFront<P::Hw> = ParetoFront::new();
    // All evaluated samples: (features, objective vector).
    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<Vec<f64>> = Vec::new();
    let mut hw_evals = 0usize;

    for iter in 0..cfg.iterations {
        let candidate = if iter < cfg.warmup || xs.is_empty() {
            env.platform().sample_hw(&mut rng)
        } else {
            // ParEGO scalarization with fresh weights, GP fit, EI argmax
            // over a random pool.
            let weights = sample_simplex(&mut rng, 3);
            let normalized = normalize_columns(&ys);
            let targets: Vec<f64> = normalized
                .iter()
                .map(|y| parego(y, &weights, DEFAULT_RHO))
                .collect();
            let mut gp = GaussianProcess::new(KernelKind::Matern52, env.platform().feature_dim());
            let best = targets.iter().copied().fold(f64::INFINITY, f64::min);
            let pool: Vec<P::Hw> = (0..cfg.candidate_pool)
                .map(|_| env.platform().sample_hw(&mut rng))
                .collect();
            match gp.fit(&xs, &targets, &mut rng) {
                Ok(()) => {
                    clock.charge_sequential(2.0); // surrogate overhead
                    let mut best_idx = 0usize;
                    let mut best_ei = f64::NEG_INFINITY;
                    for (i, hw) in pool.iter().enumerate() {
                        let (m, v) = gp.predict(&env.platform().encode(hw));
                        let ei = expected_improvement(m, v, best);
                        if ei > best_ei {
                            best_ei = ei;
                            best_idx = i;
                        }
                    }
                    pool.into_iter().nth(best_idx).expect("pool non-empty")
                }
                Err(_) => env.platform().sample_hw(&mut rng),
            }
        };

        let (evald, cpu, width) = evaluate_batch(
            env,
            vec![candidate],
            cfg.inner_budget,
            cfg.seed.wrapping_add(iter as u64 * 104729),
        );
        clock.charge(cpu, width);
        hw_evals += 1;
        let (hw, assessment) = evald.into_iter().next().expect("one candidate");
        if let Some(a) = assessment {
            let obj = a.objectives();
            xs.push(env.platform().encode(&hw));
            ys.push(obj.clone());
            front.offer(obj, hw);
        }
        // Bound the GP training set to the newest points.
        const GP_CAP: usize = 400;
        if xs.len() > GP_CAP {
            let drop = xs.len() - GP_CAP;
            xs.drain(..drop);
            ys.drain(..drop);
        }
        trace.record(clock.seconds(), front.objectives());
    }

    CoSearchResult {
        front,
        wall_clock_s: clock.seconds(),
        trace,
        hw_evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvConfig;
    use unico_model::SpatialPlatform;
    use unico_workloads::zoo;

    #[test]
    fn hasco_runs_and_improves_front() {
        let p = SpatialPlatform::edge();
        let env = CoSearchEnv::new(
            &p,
            &[zoo::mobilenet_v1()],
            EnvConfig {
                max_layers_per_network: 1,
                power_cap_mw: None,
                area_cap_mm2: None,
            },
        );
        let cfg = HascoConfig {
            iterations: 8,
            inner_budget: 24,
            candidate_pool: 32,
            warmup: 3,
            ..HascoConfig::default()
        };
        let res = run_hasco(&env, &cfg);
        assert_eq!(res.hw_evals, 8);
        assert_eq!(res.trace.points().len(), 8);
        assert!(!res.front.is_empty());
        // Wall clock strictly increases across iterations.
        let secs: Vec<f64> = res.trace.points().iter().map(|p| p.seconds).collect();
        assert!(secs.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn deterministic_under_seed() {
        let p = SpatialPlatform::edge();
        let env = CoSearchEnv::new(
            &p,
            &[zoo::mobilenet_v1()],
            EnvConfig {
                max_layers_per_network: 1,
                power_cap_mw: None,
                area_cap_mm2: None,
            },
        );
        let cfg = HascoConfig {
            iterations: 5,
            inner_budget: 16,
            candidate_pool: 16,
            warmup: 2,
            seed: 42,
            ..HascoConfig::default()
        };
        let a = run_hasco(&env, &cfg);
        let b = run_hasco(&env, &cfg);
        assert_eq!(a.front.objectives(), b.front.objectives());
        assert_eq!(a.wall_clock_s, b.wall_clock_s);
    }
}
