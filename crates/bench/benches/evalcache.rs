//! Evaluation-cache throughput: repeated-evaluation workload priced
//! straight through the PPA engines vs. through `EvalCache`.
//!
//! The workload replays a small set of mappings many times — the shape
//! successive halving produces, where survivors are re-assessed round
//! after round. The acceptance bar is ≥ 5× cached-vs-uncached on this
//! workload; the cycle-level Ascend model clears it by orders of
//! magnitude (microseconds per sim vs. tens of nanoseconds per hit).

use unico_bench::microbench::MicroBench;
use unico_camodel::{ascend_eval_key, AscendConfig, AscendModel, DepthFirstFusionSearch};
use unico_mapping::{Mapping, MappingSpace};
use unico_model::{
    spatial_eval_key, AnalyticalModel, Dataflow, EngineTag, EvalCache, HwConfig, MappingObjective,
    TechParams,
};
use unico_workloads::TensorOp;

use rand::rngs::StdRng;
use rand::SeedableRng;

fn conv_nest() -> unico_workloads::LoopNest {
    TensorOp::Conv2d {
        n: 1,
        k: 64,
        c: 64,
        y: 28,
        x: 28,
        r: 3,
        s: 3,
        stride: 1,
    }
    .to_loop_nest()
}

fn main() {
    let mut b = MicroBench::new();
    let nest = conv_nest();

    // A fixed pool of candidate mappings, cycled through repeatedly —
    // every candidate after the first pass is a cache hit.
    let space = MappingSpace::new(&nest);
    let mut rng = StdRng::seed_from_u64(7);
    let pool: Vec<Mapping> = (0..16).map(|_| space.sample(&mut rng)).collect();

    let model = AnalyticalModel::new(TechParams::default());
    let hw = HwConfig::new(8, 8, 4096, 512 * 1024, 128, Dataflow::WeightStationary);
    let mut i = 0usize;
    let uncached_analytical = b
        .run("analytical_uncached", || {
            i = (i + 1) % 16;
            model.evaluate(&hw, &pool[i], &nest)
        })
        .median_ns;

    let cache = EvalCache::new();
    let mut j = 0usize;
    let cached_analytical = b
        .run("analytical_cached", || {
            j = (j + 1) % 16;
            let m = &pool[j];
            cache.get_or_compute(
                spatial_eval_key(
                    EngineTag::DataCentric,
                    &hw,
                    m,
                    &nest,
                    MappingObjective::Latency,
                ),
                || model.evaluate(&hw, m, &nest),
            )
        })
        .median_ns;

    let ca_model = AscendModel::default();
    let ca_hw = AscendConfig::expert_default();
    let ca_mapping = DepthFirstFusionSearch::seed_mapping(&ca_hw, &nest);
    let uncached_ascend = b
        .run("ascend_uncached", || {
            ca_model
                .evaluate(&ca_hw, &ca_mapping, &nest)
                .expect("feasible")
        })
        .median_ns;

    let ca_cache = EvalCache::new();
    let cached_ascend = b
        .run("ascend_cached", || {
            ca_cache.get_or_compute(ascend_eval_key(&ca_hw, &ca_mapping, &nest), || {
                ca_model.evaluate(&ca_hw, &ca_mapping, &nest)
            })
        })
        .median_ns;

    println!("\n{}", b.to_markdown());
    println!(
        "analytical speedup (cached vs uncached): {:.1}x",
        uncached_analytical / cached_analytical.max(1.0)
    );
    println!(
        "ascend speedup (cached vs uncached): {:.1}x",
        uncached_ascend / cached_ascend.max(1.0)
    );
    let s = ca_cache.stats();
    println!(
        "ascend cache: {} hits, {} misses, hit rate {:.3}",
        s.hits,
        s.misses,
        s.hit_rate()
    );
}
