//! Mapping-space and mapping-search micro-benchmarks: per-step cost of
//! the inner loop that dominates total co-search CPU time.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use unico_mapping::{AnnealingSearch, MappingSearcher, MappingSpace};
use unico_model::{AnalyticalModel, BoundSpatialCost, Dataflow, HwConfig, TechParams};
use unico_workloads::TensorOp;

fn nest() -> unico_workloads::LoopNest {
    TensorOp::Conv2d {
        n: 1,
        k: 64,
        c: 32,
        y: 28,
        x: 28,
        r: 3,
        s: 3,
        stride: 1,
    }
    .to_loop_nest()
}

fn bench_space_ops(c: &mut Criterion) {
    let n = nest();
    let space = MappingSpace::new(&n);
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("space_sample", |b| b.iter(|| space.sample(&mut rng)));
    let m = space.sample(&mut rng);
    c.bench_function("space_mutate", |b| b.iter(|| space.mutate(&mut rng, &m)));
    c.bench_function("space_shrink", |b| b.iter(|| space.shrink(&mut rng, &m)));
    let m2 = space.sample(&mut rng);
    c.bench_function("space_crossover", |b| {
        b.iter(|| space.crossover(&mut rng, &m, &m2))
    });
}

fn bench_annealing_steps(c: &mut Criterion) {
    let n = nest();
    let model = AnalyticalModel::new(TechParams::default());
    let hw = HwConfig::new(8, 8, 4096, 512 * 1024, 128, Dataflow::WeightStationary);
    let cost = BoundSpatialCost::new(&model, hw, n, 1.0);
    c.bench_function("annealing_100_steps", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut s = AnnealingSearch::new(MappingSpace::new(&n), StdRng::seed_from_u64(seed));
            s.run_until(&cost, 100);
            s.history().terminal_value()
        })
    });
}

criterion_group!(benches, bench_space_ops, bench_annealing_steps);
criterion_main!(benches);
