//! Mapping-space and mapping-search micro-benchmarks: per-step cost of
//! the inner loop that dominates total co-search CPU time.

use rand::rngs::StdRng;
use rand::SeedableRng;

use unico_bench::microbench::MicroBench;
use unico_mapping::{AnnealingSearch, MappingSearcher, MappingSpace};
use unico_model::{AnalyticalModel, BoundSpatialCost, Dataflow, HwConfig, TechParams};
use unico_workloads::TensorOp;

fn nest() -> unico_workloads::LoopNest {
    TensorOp::Conv2d {
        n: 1,
        k: 64,
        c: 32,
        y: 28,
        x: 28,
        r: 3,
        s: 3,
        stride: 1,
    }
    .to_loop_nest()
}

fn bench_space_ops(b: &mut MicroBench) {
    let n = nest();
    let space = MappingSpace::new(&n);
    let mut rng = StdRng::seed_from_u64(1);
    b.run("space_sample", || space.sample(&mut rng));
    let m = space.sample(&mut rng);
    b.run("space_mutate", || space.mutate(&mut rng, &m));
    b.run("space_shrink", || space.shrink(&mut rng, &m));
    let m2 = space.sample(&mut rng);
    b.run("space_crossover", || space.crossover(&mut rng, &m, &m2));
}

fn bench_annealing_steps(b: &mut MicroBench) {
    let n = nest();
    let model = AnalyticalModel::new(TechParams::default());
    let hw = HwConfig::new(8, 8, 4096, 512 * 1024, 128, Dataflow::WeightStationary);
    let cost = BoundSpatialCost::new(&model, hw, n, 1.0);
    let mut seed = 0u64;
    b.run("annealing_100_steps", || {
        seed += 1;
        let mut s = AnnealingSearch::new(MappingSpace::new(&n), StdRng::seed_from_u64(seed));
        s.run_until(&cost, 100);
        s.history().terminal_value()
    });
}

fn main() {
    let mut b = MicroBench::new();
    bench_space_ops(&mut b);
    bench_annealing_steps(&mut b);
    println!("\n{}", b.to_markdown());
}
