//! Micro-benchmarks of the surrogate stack: GP fitting/prediction
//! scaling and hypervolume computation — the sequential overheads the
//! outer MOBO loop pays every iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use unico_surrogate::hypervolume::hypervolume;
use unico_surrogate::scalarize::{parego, sample_simplex};
use unico_surrogate::{GaussianProcess, KernelKind};

fn training_set(n: usize, dim: usize, rng: &mut StdRng) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().map(|v| (v - 0.5).powi(2)).sum::<f64>())
        .collect();
    (xs, ys)
}

fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp");
    for &n in &[50usize, 150, 300] {
        let mut rng = StdRng::seed_from_u64(1);
        let (xs, ys) = training_set(n, 6, &mut rng);
        group.bench_with_input(BenchmarkId::new("fit", n), &n, |b, _| {
            b.iter(|| {
                let mut gp = GaussianProcess::new(KernelKind::Matern52, 6);
                gp.fit(&xs, &ys, &mut rng).expect("fit");
                gp
            })
        });
        let mut gp = GaussianProcess::new(KernelKind::Matern52, 6);
        gp.fit(&xs, &ys, &mut rng).expect("fit");
        group.bench_with_input(BenchmarkId::new("predict", n), &n, |b, _| {
            let x = vec![0.3; 6];
            b.iter(|| gp.predict(&x))
        });
    }
    group.finish();
}

fn bench_hypervolume(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypervolume");
    let mut rng = StdRng::seed_from_u64(2);
    for &(d, n) in &[(2usize, 50usize), (3, 50), (4, 30)] {
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let reference = vec![1.1; d];
        group.bench_with_input(
            BenchmarkId::new(format!("{d}d"), n),
            &n,
            |b, _| b.iter(|| hypervolume(&pts, &reference)),
        );
    }
    group.finish();
}

fn bench_scalarization(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let w = sample_simplex(&mut rng, 4);
    let y = vec![0.2, 0.5, 0.7, 0.1];
    c.bench_function("parego_scalar", |b| b.iter(|| parego(&y, &w, 0.2)));
}

criterion_group!(benches, bench_gp, bench_hypervolume, bench_scalarization);
criterion_main!(benches);
