//! Micro-benchmarks of the surrogate stack: GP fitting/prediction
//! scaling and hypervolume computation — the sequential overheads the
//! outer MOBO loop pays every iteration.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use unico_bench::microbench::MicroBench;
use unico_surrogate::hypervolume::hypervolume;
use unico_surrogate::scalarize::{parego, sample_simplex};
use unico_surrogate::{GaussianProcess, KernelKind};

fn training_set(n: usize, dim: usize, rng: &mut StdRng) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().map(|v| (v - 0.5).powi(2)).sum::<f64>())
        .collect();
    (xs, ys)
}

fn bench_gp(b: &mut MicroBench) {
    for &n in &[50usize, 150, 300] {
        let mut rng = StdRng::seed_from_u64(1);
        let (xs, ys) = training_set(n, 6, &mut rng);
        b.run(&format!("gp_fit/{n}"), || {
            let mut gp = GaussianProcess::new(KernelKind::Matern52, 6);
            gp.fit(&xs, &ys, &mut rng).expect("fit");
            gp
        });
        let mut gp = GaussianProcess::new(KernelKind::Matern52, 6);
        gp.fit(&xs, &ys, &mut rng).expect("fit");
        let x = vec![0.3; 6];
        b.run(&format!("gp_predict/{n}"), || gp.predict(&x));
    }
}

fn bench_hypervolume(b: &mut MicroBench) {
    let mut rng = StdRng::seed_from_u64(2);
    for &(d, n) in &[(2usize, 50usize), (3, 50), (4, 30)] {
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let reference = vec![1.1; d];
        b.run(&format!("hypervolume/{d}d/{n}"), || {
            hypervolume(&pts, &reference)
        });
    }
}

fn bench_scalarization(b: &mut MicroBench) {
    let mut rng = StdRng::seed_from_u64(3);
    let w = sample_simplex(&mut rng, 4);
    let y = vec![0.2, 0.5, 0.7, 0.1];
    b.run("parego_scalar", || parego(&y, &w, 0.2));
}

fn main() {
    let mut b = MicroBench::new();
    bench_gp(&mut b);
    bench_hypervolume(&mut b);
    bench_scalarization(&mut b);
    println!("\n{}", b.to_markdown());
}
