//! Outer-loop benchmarks: one UNICO MOBO iteration, one NSGA-II
//! generation, a full successive-halving round over a batch of hardware
//! sessions, and the pool-setup comparison between the persistent
//! mapping engine and respawn-per-round execution.

use rand::rngs::StdRng;
use rand::SeedableRng;

use unico_bench::microbench::MicroBench;
use unico_core::{Unico, UnicoConfig};
use unico_model::{Platform, SpatialPlatform};
use unico_search::sh::{self, ShConfig};
use unico_search::{
    advance_pooled, advance_with_engine, run_nsga2, CoSearchEnv, EnvConfig, HwSession,
    MappingEngine, Nsga2Config,
};
use unico_workloads::zoo;

fn env(platform: &SpatialPlatform) -> CoSearchEnv<'_, SpatialPlatform> {
    CoSearchEnv::new(
        platform,
        &[zoo::mobilenet_v1()],
        EnvConfig {
            max_layers_per_network: 1,
            power_cap_mw: Some(2000.0),
            area_cap_mm2: None,
        },
    )
}

fn sessions<'e>(
    e: &'e CoSearchEnv<'e, SpatialPlatform>,
    n: usize,
    seed: u64,
) -> Vec<HwSession<'e, SpatialPlatform>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| e.session(e.platform().sample_hw(&mut rng), i as u64))
        .collect()
}

fn bench_sh_round(b: &mut MicroBench, e: &CoSearchEnv<'_, SpatialPlatform>) {
    let mut seed = 0u64;
    b.run("msh_batch8_b64", || {
        seed += 1;
        let mut ss = sessions(e, 8, seed);
        sh::run(&mut ss, &ShConfig::modified(64))
    });
}

/// The acceptance comparison for the persistent engine: identical
/// mapping work (N=8 sessions through doubling rounds to b_max=64),
/// once on a pool spawned a single time and once respawning `workers`
/// threads every round — the seed's per-round behavior.
fn bench_pool_setup(b: &mut MicroBench, e: &CoSearchEnv<'_, SpatialPlatform>) {
    const WORKERS: usize = 8;
    const ROUNDS: [u64; 4] = [8, 16, 32, 64];

    let engine = MappingEngine::new(WORKERS);
    let mut seed = 0u64;
    b.run("rounds_engine_n8_b64", || {
        seed += 1;
        let mut ss = sessions(e, 8, seed);
        let select = vec![true; 8];
        for budget in ROUNDS {
            advance_with_engine(&engine, &mut ss, &select, budget);
        }
    });

    let mut seed = 0u64;
    b.run("rounds_respawn_n8_b64", || {
        seed += 1;
        let mut ss = sessions(e, 8, seed);
        let select = vec![true; 8];
        for budget in ROUNDS {
            advance_pooled(&mut ss, &select, budget, WORKERS);
        }
    });
}

fn bench_unico_iteration(b: &mut MicroBench, e: &CoSearchEnv<'_, SpatialPlatform>) {
    let mut seed = 0u64;
    b.run("unico_1iter_batch8", || {
        seed += 1;
        Unico::new(UnicoConfig {
            max_iter: 1,
            batch: 8,
            b_max: 64,
            seed,
            candidate_pool: 64,
            ..UnicoConfig::default()
        })
        .run(e)
    });
}

fn bench_nsga_generation(b: &mut MicroBench, e: &CoSearchEnv<'_, SpatialPlatform>) {
    let mut seed = 0u64;
    b.run("nsga2_1gen_pop8", || {
        seed += 1;
        run_nsga2(
            e,
            &Nsga2Config {
                population: 8,
                generations: 1,
                inner_budget: 64,
                seed,
                ..Nsga2Config::default()
            },
        )
    });
}

fn main() {
    let platform = SpatialPlatform::edge();
    let e = env(&platform);
    let mut b = MicroBench::new();
    bench_sh_round(&mut b, &e);
    bench_pool_setup(&mut b, &e);
    bench_unico_iteration(&mut b, &e);
    bench_nsga_generation(&mut b, &e);
    println!("\n{}", b.to_markdown());

    let engine = b
        .rows()
        .iter()
        .find(|r| r.name == "rounds_engine_n8_b64")
        .map(|r| r.median_ns);
    let respawn = b
        .rows()
        .iter()
        .find(|r| r.name == "rounds_respawn_n8_b64")
        .map(|r| r.median_ns);
    if let (Some(engine), Some(respawn)) = (engine, respawn) {
        println!(
            "pool setup: persistent engine {:.3} ms vs respawn {:.3} ms per 4-round advance \
             ({:+.1}% delta)",
            engine / 1e6,
            respawn / 1e6,
            100.0 * (respawn - engine) / engine
        );
    }
}
