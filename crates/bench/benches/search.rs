//! Outer-loop benchmarks: one UNICO MOBO iteration, one NSGA-II
//! generation, and a full successive-halving round over a batch of
//! hardware sessions.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

use unico_core::{Unico, UnicoConfig};
use unico_model::{Platform, SpatialPlatform};
use unico_search::sh::{self, ShConfig};
use unico_search::{run_nsga2, CoSearchEnv, EnvConfig, Nsga2Config};
use unico_workloads::zoo;

fn env(platform: &SpatialPlatform) -> CoSearchEnv<'_, SpatialPlatform> {
    CoSearchEnv::new(
        platform,
        &[zoo::mobilenet_v1()],
        EnvConfig {
            max_layers_per_network: 1,
            power_cap_mw: Some(2000.0),
            area_cap_mm2: None,
        },
    )
}

fn bench_sh_round(c: &mut Criterion) {
    let platform = SpatialPlatform::edge();
    let e = env(&platform);
    c.bench_function("msh_batch8_b64", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut sessions: Vec<_> = (0..8)
                .map(|i| e.session(e.platform().sample_hw(&mut rng), i))
                .collect();
            sh::run(&mut sessions, &ShConfig::modified(64))
        })
    });
}

fn bench_unico_iteration(c: &mut Criterion) {
    let platform = SpatialPlatform::edge();
    let e = env(&platform);
    c.bench_function("unico_1iter_batch8", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Unico::new(UnicoConfig {
                max_iter: 1,
                batch: 8,
                b_max: 64,
                seed,
                candidate_pool: 64,
                ..UnicoConfig::default()
            })
            .run(&e)
        })
    });
}

fn bench_nsga_generation(c: &mut Criterion) {
    let platform = SpatialPlatform::edge();
    let e = env(&platform);
    c.bench_function("nsga2_1gen_pop8", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_nsga2(
                &e,
                &Nsga2Config {
                    population: 8,
                    generations: 1,
                    inner_budget: 64,
                    seed,
                    ..Nsga2Config::default()
                },
            )
        })
    });
}

criterion_group!(benches, bench_sh_round, bench_unico_iteration, bench_nsga_generation);
criterion_main!(benches);
