//! PPA-engine throughput: the analytical model (MAESTRO-class, must be
//! microseconds) vs the cycle-level Ascend-like simulator (the expensive
//! oracle). The gap between the two is the regime the paper's cost
//! analysis is built on.

use unico_bench::microbench::MicroBench;
use unico_camodel::{AscendConfig, AscendModel, DepthFirstFusionSearch};
use unico_mapping::Mapping;
use unico_model::{AnalyticalModel, Dataflow, HwConfig, LoopCentricModel, TechParams};
use unico_workloads::{Dim, TensorOp};

fn conv_nest() -> unico_workloads::LoopNest {
    TensorOp::Conv2d {
        n: 1,
        k: 64,
        c: 64,
        y: 28,
        x: 28,
        r: 3,
        s: 3,
        stride: 1,
    }
    .to_loop_nest()
}

fn spatial_mapping(nest: &unico_workloads::LoopNest) -> Mapping {
    let mut l2 = nest.extents();
    l2[Dim::C.index()] = 16;
    let mut l1 = [1u64; 7];
    l1[Dim::K.index()] = 8;
    l1[Dim::Y.index()] = 8;
    l1[Dim::X.index()] = 4;
    l1[Dim::C.index()] = 4;
    Mapping::new(nest, l2, l1, Dim::ALL, (Dim::K, Dim::Y))
}

fn main() {
    let mut b = MicroBench::new();

    let model = AnalyticalModel::new(TechParams::default());
    let hw = HwConfig::new(8, 8, 4096, 512 * 1024, 128, Dataflow::WeightStationary);
    let nest = conv_nest();
    let mapping = spatial_mapping(&nest);
    b.run("analytical_eval", || {
        model.evaluate(&hw, &mapping, &nest).expect("feasible")
    });

    let loop_model = LoopCentricModel::new(TechParams::default());
    b.run("loop_centric_eval", || {
        loop_model.evaluate(&hw, &mapping, &nest).expect("feasible")
    });

    let ca_model = AscendModel::default();
    let ca_hw = AscendConfig::expert_default();
    let ca_mapping = DepthFirstFusionSearch::seed_mapping(&ca_hw, &nest);
    b.run("camodel_eval", || {
        ca_model
            .evaluate(&ca_hw, &ca_mapping, &nest)
            .expect("feasible")
    });

    println!("\n{}", b.to_markdown());
}
