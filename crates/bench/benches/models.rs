//! PPA-engine throughput: the analytical model (MAESTRO-class, must be
//! microseconds) vs the cycle-level Ascend-like simulator (the expensive
//! oracle). The gap between the two is the regime the paper's cost
//! analysis is built on.

use criterion::{criterion_group, criterion_main, Criterion};

use unico_camodel::{AscendConfig, AscendModel, DepthFirstFusionSearch};
use unico_mapping::Mapping;
use unico_model::{AnalyticalModel, Dataflow, HwConfig, LoopCentricModel, TechParams};
use unico_workloads::{Dim, TensorOp};

fn conv_nest() -> unico_workloads::LoopNest {
    TensorOp::Conv2d {
        n: 1,
        k: 64,
        c: 64,
        y: 28,
        x: 28,
        r: 3,
        s: 3,
        stride: 1,
    }
    .to_loop_nest()
}

fn spatial_mapping(nest: &unico_workloads::LoopNest) -> Mapping {
    let mut l2 = nest.extents();
    l2[Dim::C.index()] = 16;
    let mut l1 = [1u64; 7];
    l1[Dim::K.index()] = 8;
    l1[Dim::Y.index()] = 8;
    l1[Dim::X.index()] = 4;
    l1[Dim::C.index()] = 4;
    Mapping::new(nest, l2, l1, Dim::ALL, (Dim::K, Dim::Y))
}

fn bench_analytical(c: &mut Criterion) {
    let model = AnalyticalModel::new(TechParams::default());
    let hw = HwConfig::new(8, 8, 4096, 512 * 1024, 128, Dataflow::WeightStationary);
    let nest = conv_nest();
    let mapping = spatial_mapping(&nest);
    c.bench_function("analytical_eval", |b| {
        b.iter(|| model.evaluate(&hw, &mapping, &nest).expect("feasible"))
    });
}

fn bench_loop_centric(c: &mut Criterion) {
    let model = LoopCentricModel::new(TechParams::default());
    let hw = HwConfig::new(8, 8, 4096, 512 * 1024, 128, Dataflow::WeightStationary);
    let nest = conv_nest();
    let mapping = spatial_mapping(&nest);
    c.bench_function("loop_centric_eval", |b| {
        b.iter(|| model.evaluate(&hw, &mapping, &nest).expect("feasible"))
    });
}

fn bench_camodel(c: &mut Criterion) {
    let model = AscendModel::default();
    let hw = AscendConfig::expert_default();
    let nest = conv_nest();
    let mapping = DepthFirstFusionSearch::seed_mapping(&hw, &nest);
    c.bench_function("camodel_eval", |b| {
        b.iter(|| model.evaluate(&hw, &mapping, &nest).expect("feasible"))
    });
}

criterion_group!(benches, bench_analytical, bench_loop_centric, bench_camodel);
criterion_main!(benches);
