//! A dependency-free wall-clock micro-benchmark harness.
//!
//! The offline build cannot resolve `criterion`, so the `benches/`
//! targets measure with this harness instead: warm up, calibrate an
//! iteration count so one sample takes a few milliseconds, then take a
//! fixed number of samples and report min/median/mean nanoseconds per
//! iteration. Results render as a markdown table (stdout) and CSV.
//!
//! Use [`std::hint::black_box`] around inputs/outputs the optimizer
//! must not fold away.

use std::time::{Duration, Instant};

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Benchmark name.
    pub name: String,
    /// Iterations per sample after calibration.
    pub iters: u64,
    /// Samples taken.
    pub samples: usize,
    /// Fastest observed nanoseconds per iteration.
    pub min_ns: f64,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration across samples.
    pub mean_ns: f64,
}

/// Harness collecting [`BenchRow`]s.
#[derive(Debug, Default)]
pub struct MicroBench {
    rows: Vec<BenchRow>,
    target_sample: Duration,
    samples: usize,
}

impl MicroBench {
    /// A harness with the default budget (~5 ms per sample, 12 samples).
    pub fn new() -> Self {
        MicroBench {
            rows: Vec::new(),
            target_sample: Duration::from_millis(5),
            samples: 12,
        }
    }

    /// Overrides the per-sample time budget and sample count (for slow
    /// benchmarks where the default would take too long).
    pub fn with_budget(target_sample: Duration, samples: usize) -> Self {
        MicroBench {
            rows: Vec::new(),
            target_sample,
            samples: samples.max(3),
        }
    }

    /// Measures `f`, records a row, prints it, and returns it.
    pub fn run<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &BenchRow {
        // Warmup + calibration: grow the iteration count until one
        // sample reaches the target duration.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target_sample || iters >= 1 << 30 {
                break;
            }
            let grow = if elapsed.is_zero() {
                16
            } else {
                // Aim straight for the target, with headroom.
                (self.target_sample.as_secs_f64() / elapsed.as_secs_f64()).ceil() as u64 + 1
            };
            iters = iters.saturating_mul(grow.clamp(2, 16));
        }

        let mut per_iter_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let row = BenchRow {
            name: name.to_string(),
            iters,
            samples: self.samples,
            min_ns: per_iter_ns[0],
            median_ns: per_iter_ns[per_iter_ns.len() / 2],
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
        };
        println!(
            "{:<40} {:>12} /iter (median; min {}, mean {})",
            row.name,
            fmt_ns(row.median_ns),
            fmt_ns(row.min_ns),
            fmt_ns(row.mean_ns),
        );
        self.rows.push(row);
        self.rows.last().expect("row just pushed")
    }

    /// All rows measured so far.
    pub fn rows(&self) -> &[BenchRow] {
        &self.rows
    }

    /// Renders the rows as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("| benchmark | median/iter | min/iter | mean/iter |\n");
        out.push_str("|---|---|---|---|\n");
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                r.name,
                fmt_ns(r.median_ns),
                fmt_ns(r.min_ns),
                fmt_ns(r.mean_ns)
            ));
        }
        out
    }

    /// Renders the rows as CSV (nanoseconds, machine-readable).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("benchmark,iters,samples,min_ns,median_ns,mean_ns\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                r.name, r.iters, r.samples, r.min_ns, r.median_ns, r.mean_ns
            ));
        }
        out
    }
}

/// Human-friendly duration from nanoseconds.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_renders() {
        let mut b = MicroBench::with_budget(Duration::from_micros(200), 3);
        let row = b.run("spin", || std::hint::black_box(17u64).wrapping_mul(31));
        assert!(row.iters >= 1);
        assert!(row.min_ns > 0.0);
        assert!(row.min_ns <= row.median_ns);
        let md = b.to_markdown();
        assert!(md.contains("| spin |"));
        let csv = b.to_csv();
        assert!(csv.starts_with("benchmark,iters"));
        assert!(csv.lines().count() == 2);
    }

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert!(fmt_ns(12_300.0).ends_with("µs"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
        assert!(fmt_ns(2_000_000_000.0).ends_with('s'));
    }
}
