//! Batch-evaluation + incremental-GP benchmark, the committed
//! trajectory behind `BENCH_batch_eval.json`.
//!
//! Measures, on the analytical spatial engine:
//!
//! * scalar vs batched candidate scoring with a **warm** evaluation
//!   cache (the steady state of an SH round: every key hits; batching
//!   amortizes key-prefix hashing and takes one lock per shard instead
//!   of one per candidate);
//! * scalar vs batched scoring with **no** cache (pure compute: the
//!   structure-of-arrays path shares per-batch invariants across rows);
//! * scalar vs batched scoring against one **shared** warm cache from
//!   several threads (the service-mode steady state the sharded batch
//!   pass was designed for: one lock acquisition and one counter flush
//!   per shard per cohort instead of one per candidate);
//!
//! and, on the surrogate:
//!
//! * full hyper-search GP refits vs incremental Cholesky row-append
//!   fits at several training-set sizes.
//!
//! Output is a single JSON artifact (default `BENCH_batch_eval.json`,
//! override with `--out <file>`), schema
//! `unico.bench.batch_eval.v1`: `{"schema", "entries": [{"name",
//! "metric", "value"}, ...]}` with throughputs in candidates/s, fit
//! times in seconds, and derived speedup ratios. The scalar columns
//! measure the shipped `UNICO_BATCH_EVAL=0` path, which keeps the
//! pre-batch per-candidate shape (materialized canonical key, one lock
//! per lookup), so the ratios are an honest before/after. CI runs the
//! binary in release and asserts the JSON parses with non-empty
//! entries; the acceptance floors (batched >= 2x scalar warm-cache and
//! contended throughput, incremental >= 5x faster than full fits at
//! n >= 64) are asserted at commit time, not per CI run, so a noisy
//! runner cannot flake the build — the binary only warns on stderr if
//! a floor is missed.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use unico_bench::microbench::MicroBench;
use unico_mapping::{Mapping, MappingSpace};
use unico_model::{EvalCache, Platform, SpatialPlatform};
use unico_surrogate::{GaussianProcess, KernelKind};
use unico_workloads::TensorOp;

/// Candidates per measured batch — the scale of one SH cohort.
const BATCH: usize = 256;

/// One benchmark result destined for the JSON artifact.
struct Entry {
    name: String,
    metric: &'static str,
    value: f64,
}

fn entry(name: impl Into<String>, metric: &'static str, value: f64) -> Entry {
    Entry {
        name: name.into(),
        metric,
        value,
    }
}

/// Candidates/s from a median per-call time covering `BATCH` candidates.
fn throughput(median_ns: f64) -> f64 {
    BATCH as f64 / (median_ns * 1e-9)
}

/// The shared workload: one conv nest, one sampled hardware point, and
/// a cohort of `BATCH` mapping candidates.
fn workload() -> (
    unico_workloads::LoopNest,
    unico_model::HwConfig,
    Vec<Mapping>,
) {
    let nest = TensorOp::Conv2d {
        n: 1,
        k: 32,
        c: 16,
        y: 14,
        x: 14,
        r: 3,
        s: 3,
        stride: 1,
    }
    .to_loop_nest();
    let mut rng = StdRng::seed_from_u64(7);
    let probe = SpatialPlatform::edge();
    let hw = probe.sample_hw(&mut rng);
    let space = MappingSpace::new(&nest);
    let mappings: Vec<Mapping> = (0..BATCH).map(|_| space.sample(&mut rng)).collect();
    (nest, hw, mappings)
}

fn bench_eval(b: &mut MicroBench, entries: &mut Vec<Entry>) {
    let (nest, hw, mappings) = workload();

    // Warm cache: pre-populate once, then every measured pass hits.
    for cached in [true, false] {
        let setup = |batch_eval: bool| {
            let p = SpatialPlatform::edge().with_batch_eval(batch_eval);
            if cached {
                let cache = std::sync::Arc::new(EvalCache::new());
                let warm = p.with_eval_cache(std::sync::Arc::clone(&cache));
                let _ = warm.evaluate_batch(&hw, &nest, &mappings);
                warm
            } else {
                p
            }
        };
        let regime = if cached { "warm_cache" } else { "uncached" };

        let scalar_p = setup(false);
        let scalar_cost = scalar_p.bind(&hw, &nest);
        let row = b.run(&format!("eval/{regime}/scalar"), || {
            mappings
                .iter()
                .map(|m| scalar_cost.assess(m).is_some() as u64)
                .sum::<u64>()
        });
        let scalar_tp = throughput(row.median_ns);
        entries.push(entry(
            format!("eval_throughput/{regime}/scalar"),
            "candidates_per_s",
            scalar_tp,
        ));

        let batch_p = setup(true);
        let batch_cost = batch_p.bind(&hw, &nest);
        let row = b.run(&format!("eval/{regime}/batched"), || {
            batch_cost
                .assess_batch(&mappings)
                .iter()
                .map(|o| o.is_some() as u64)
                .sum::<u64>()
        });
        let batch_tp = throughput(row.median_ns);
        entries.push(entry(
            format!("eval_throughput/{regime}/batched"),
            "candidates_per_s",
            batch_tp,
        ));

        let speedup = batch_tp / scalar_tp;
        entries.push(entry(
            format!("speedup/{regime}/batched_over_scalar"),
            "ratio",
            speedup,
        ));
        if cached && speedup < 2.0 {
            eprintln!(
                "WARNING: warm-cache batched speedup {speedup:.2}x below the 2x acceptance floor"
            );
        }
    }
}

/// The regime the sharded batch pass was designed for: several threads
/// scoring cohorts against one shared warm cache (service mode shares a
/// single `EvalCache` across concurrent jobs). The scalar path takes a
/// shard lock and bumps a shard counter **per candidate**, so the lock
/// and counter cachelines ping-pong between cores; the batch pass takes
/// each shard lock once per cohort and flushes counters once per shard.
/// The 2x acceptance floor is asserted here.
fn bench_eval_contended(b: &mut MicroBench, entries: &mut Vec<Entry>) {
    const THREADS: usize = 4;
    const PASSES: usize = 32;
    let (nest, hw, mappings) = workload();

    let mut tp = [0.0f64; 2];
    for batched in [false, true] {
        let cache = std::sync::Arc::new(EvalCache::new());
        let p = SpatialPlatform::edge()
            .with_batch_eval(batched)
            .with_eval_cache(std::sync::Arc::clone(&cache));
        let _ = p.evaluate_batch(&hw, &nest, &mappings);
        let cost = p.bind(&hw, &nest);
        let mode = if batched { "batched" } else { "scalar" };
        let row = b.run(&format!("eval/contended/{mode}"), || {
            std::thread::scope(|s| {
                for _ in 0..THREADS {
                    s.spawn(|| {
                        let mut feasible = 0u64;
                        for _ in 0..PASSES {
                            if batched {
                                feasible += cost
                                    .assess_batch(&mappings)
                                    .iter()
                                    .map(|o| o.is_some() as u64)
                                    .sum::<u64>();
                            } else {
                                feasible += mappings
                                    .iter()
                                    .map(|m| cost.assess(m).is_some() as u64)
                                    .sum::<u64>();
                            }
                        }
                        std::hint::black_box(feasible)
                    });
                }
            });
        });
        // The scope covers THREADS * PASSES passes over the cohort.
        let per_pass_ns = row.median_ns / (THREADS * PASSES) as f64;
        tp[usize::from(batched)] = throughput(per_pass_ns);
        entries.push(entry(
            format!("eval_throughput/contended/{mode}"),
            "candidates_per_s",
            tp[usize::from(batched)],
        ));
    }

    let speedup = tp[1] / tp[0];
    entries.push(entry(
        "speedup/contended/batched_over_scalar",
        "ratio",
        speedup,
    ));
    if speedup < 2.0 {
        eprintln!("WARNING: contended batched speedup {speedup:.2}x below the 2x acceptance floor");
    }
}

fn bench_gp(b: &mut MicroBench, entries: &mut Vec<Entry>) {
    for &n in &[64usize, 128] {
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..6).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| x.iter().map(|v| (v - 0.5).powi(2)).sum::<f64>())
            .collect();

        let row = b.run(&format!("gp_fit/full/{n}"), || {
            let mut gp = GaussianProcess::new(KernelKind::Matern52, 6);
            gp.fit(&xs, &ys, &mut rng).expect("full fit");
            gp.len()
        });
        let full_s = row.median_ns * 1e-9;
        entries.push(entry(format!("gp_fit/full/n{n}"), "seconds", full_s));

        // Incremental: extend a factor carrying n-8 rows by the 8 new
        // ones — the shape of one MOBO round feeding a UUL-accepted
        // cohort into the surrogate. The clone is part of the measured
        // cost (the outer loop clones the carried GP for acquisition).
        let base_n = n - 8;
        let mut base = GaussianProcess::new(KernelKind::Matern52, 6);
        base.fit(&xs[..base_n], &ys[..base_n], &mut rng)
            .expect("base fit");
        let row = b.run(&format!("gp_fit/incremental/{n}"), || {
            let mut gp = base.clone();
            gp.fit_incremental(&xs, &ys).expect("incremental fit");
            gp.len()
        });
        let inc_s = row.median_ns * 1e-9;
        entries.push(entry(format!("gp_fit/incremental/n{n}"), "seconds", inc_s));

        let speedup = full_s / inc_s;
        entries.push(entry(
            format!("speedup/gp_incremental_over_full/n{n}"),
            "ratio",
            speedup,
        ));
        if speedup < 5.0 {
            eprintln!(
                "WARNING: incremental GP speedup {speedup:.2}x at n={n} below the 5x \
                 acceptance floor"
            );
        }
    }
}

fn render_json(entries: &[Entry]) -> String {
    let mut o = String::from("{\"schema\":\"unico.bench.batch_eval.v1\",\"entries\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!(
            "{{\"name\":\"{}\",\"metric\":\"{}\",\"value\":{}}}",
            e.name, e.metric, e.value
        ));
    }
    o.push_str("]}\n");
    o
}

fn main() {
    let mut out = String::from("BENCH_batch_eval.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().expect("--out needs a file path"),
            "--help" | "-h" => {
                eprintln!("usage: unico_bench [--out FILE]");
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}; try --help"),
        }
    }

    let mut entries = Vec::new();
    let mut b = MicroBench::with_budget(Duration::from_millis(10), 8);
    bench_eval(&mut b, &mut entries);
    bench_eval_contended(&mut b, &mut entries);
    bench_gp(&mut b, &mut entries);

    println!("\n{}", b.to_markdown());
    unico_bench::write_file(std::path::Path::new(&out), &render_json(&entries));
    eprintln!("wrote {out}");
}
