//! Regenerates Fig. 7: hypervolume difference vs wall-clock time for
//! HASCO, NSGA-II, MOBOHB and UNICO on the edge and cloud scenarios.

use std::collections::BTreeMap;

use unico_bench::Cli;
use unico_core::experiments::hv_trace::{final_hv_differences, run_hv_trace};
use unico_core::experiments::stats::{across_seeds, Stats};
use unico_core::experiments::table::Scenario;
use unico_core::report::{series_to_csv, Table};
use unico_workloads::zoo;

fn main() {
    let cli = Cli::parse();
    for scenario in [Scenario::Edge, Scenario::Cloud] {
        let tag = match scenario {
            Scenario::Edge => "edge",
            Scenario::Cloud => "cloud",
        };
        eprintln!("fig7 ({tag}): scale={}, seed={}", cli.scale_name, cli.seed);
        let res = run_hv_trace(scenario, &zoo::edge_suite(), &cli.scale, cli.seed);
        let mut t = Table::new(vec!["Method", "Final HV difference", "Final time (h)"]);
        for (m, d) in final_hv_differences(&res) {
            let hours = res
                .methods
                .iter()
                .find(|mt| mt.method == m)
                .and_then(|mt| mt.series.last())
                .map(|&(h, _)| h)
                .unwrap_or(0.0);
            t.row(vec![m, format!("{d:.4}"), format!("{hours:.2}")]);
        }
        println!("Fig. 7 ({})\n{}", res.scenario, t.to_markdown());
        for m in &res.methods {
            let path = cli.write_artifact(
                &format!("fig7_{tag}_{}.csv", m.method.to_lowercase()),
                &series_to_csv("hours", "hv_difference", &m.series),
            );
            eprintln!("wrote {}", path.display());
        }
        if cli.repeats > 1 {
            let mut per_method: BTreeMap<String, Vec<f64>> = BTreeMap::new();
            let runs = across_seeds(cli.seed, cli.repeats, |s| {
                run_hv_trace(scenario, &zoo::edge_suite(), &cli.scale, s)
            });
            for run in &runs {
                for (m, d) in final_hv_differences(run) {
                    per_method.entry(m).or_default().push(d);
                }
            }
            println!("final HV difference over {} seeds:", cli.repeats);
            for (m, v) in per_method {
                println!("  {m:8} {}", Stats::of(&v));
            }
        }
    }
    let report = cli.write_run_report("fig7");
    eprintln!("wrote {}", report.display());
}
