//! Regenerates Fig. 8: the robustness metric `R` as an indicator of
//! hardware generalization — similar-PPA Pareto pairs validated on
//! unseen networks.

use unico_bench::Cli;
use unico_core::experiments::robust_pairs::run_robust_pairs;
use unico_core::report::Table;

fn main() {
    let cli = Cli::parse();
    eprintln!("fig8: scale={}, seed={}", cli.scale_name, cli.seed);
    let res = run_robust_pairs(&cli.scale, cli.seed, 3, 0.35);
    println!(
        "Fig. 8: {} Pareto designs, {} comparable pairs\n",
        res.front_size,
        res.pairs.len()
    );
    let mut t = Table::new(vec![
        "Pair",
        "R (A)",
        "R (B)",
        "Train lat A (s)",
        "Train lat B (s)",
        "Val lat A (s)",
        "Val lat B (s)",
        "Robust wins?",
    ]);
    let mut csv = String::from("pair,ra,rb,train_a,train_b,val_a,val_b,robust_wins\n");
    for p in &res.pairs {
        t.row(vec![
            format!("({}, {})", p.ids.0, p.ids.1),
            format!("{:.4}", p.robustness.0),
            format!("{:.4}", p.robustness.1),
            format!("{:.4e}", p.train_latency_s.0),
            format!("{:.4e}", p.train_latency_s.1),
            format!("{:.4e}", p.validation_latency_s.0),
            format!("{:.4e}", p.validation_latency_s.1),
            format!("{}", p.robust_wins()),
        ]);
        csv.push_str(&format!(
            "{}-{},{:.6},{:.6},{:.6e},{:.6e},{:.6e},{:.6e},{}\n",
            p.ids.0,
            p.ids.1,
            p.robustness.0,
            p.robustness.1,
            p.train_latency_s.0,
            p.train_latency_s.1,
            p.validation_latency_s.0,
            p.validation_latency_s.1,
            p.robust_wins()
        ));
    }
    println!("{}", t.to_markdown());
    let wins = res.pairs.iter().filter(|p| p.robust_wins()).count();
    println!(
        "more-robust design wins on validation in {wins}/{} pairs",
        res.pairs.len()
    );
    let path = cli.write_artifact("fig8_pairs.csv", &csv);
    eprintln!("wrote {}", path.display());
    let report = cli.write_run_report("fig8");
    eprintln!("wrote {}", report.display());
}
