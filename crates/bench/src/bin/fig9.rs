//! Regenerates Fig. 9: UNICO vs HASCO generalization to eight unseen
//! DNNs after co-optimization on {MobileNetV2, ResNet, SRGAN, VGG}.

use unico_bench::Cli;
use unico_core::experiments::generalization::{run_generalization, run_r_ablation};
use unico_core::experiments::stats::{across_seeds, Stats};
use unico_core::report::Table;

fn main() {
    let cli = Cli::parse();
    eprintln!("fig9: scale={}, seed={}", cli.scale_name, cli.seed);
    let res = run_generalization(&cli.scale, cli.seed);
    println!("UNICO design: {:?}", res.unico_hw);
    println!("HASCO design: {:?}\n", res.hasco_hw);
    let mut t = Table::new(vec![
        "Network",
        "UNICO val-HV",
        "HASCO val-HV",
        "UNICO gain",
    ]);
    let mut csv = String::from("network,unico_hv,hasco_hv,gain\n");
    for row in &res.rows {
        t.row(vec![
            row.network.clone(),
            format!("{:.4}", row.unico_hv),
            format!("{:.4}", row.hasco_hv),
            format!("{:+.1}%", row.gain() * 100.0),
        ]);
        csv.push_str(&format!(
            "{},{:.6},{:.6},{:.6}\n",
            row.network,
            row.unico_hv,
            row.hasco_hv,
            row.gain()
        ));
    }
    println!("{}", t.to_markdown());
    if let Some(mean) = res.mean_gain() {
        println!("mean per-network validation-HV gain: {:+.1}%", mean * 100.0);
    }
    println!(
        "suite-aggregate validation-HV gain:  {:+.1}%",
        res.aggregate_gain() * 100.0
    );
    if cli.repeats > 1 {
        let gains = across_seeds(cli.seed, cli.repeats, |s| {
            run_generalization(&cli.scale, s).aggregate_gain()
        });
        println!(
            "suite-aggregate gain over {} seeds: {}",
            cli.repeats,
            Stats::of(&gains)
        );
    }
    let path = cli.write_artifact("fig9_gains.csv", &csv);
    eprintln!("wrote {}", path.display());

    // Mechanism check: the robustness objective on vs off.
    eprintln!("fig9: running R on/off ablation ...");
    let ab = run_r_ablation(&cli.scale, cli.seed);
    let mut t2 = Table::new(vec!["Network", "with-R val-HV", "no-R val-HV", "gain"]);
    let mut csv2 = String::from("network,with_r_hv,no_r_hv,gain\n");
    for row in &ab.rows {
        t2.row(vec![
            row.network.clone(),
            format!("{:.4}", row.unico_hv),
            format!("{:.4}", row.hasco_hv),
            format!("{:+.1}%", row.gain() * 100.0),
        ]);
        csv2.push_str(&format!(
            "{},{:.6},{:.6},{:.6}\n",
            row.network,
            row.unico_hv,
            row.hasco_hv,
            row.gain()
        ));
    }
    println!(
        "\nRobustness-objective ablation (same UNICO config, R on vs off)\n{}",
        t2.to_markdown()
    );
    if let Some(m) = ab.mean_gain() {
        println!(
            "mean per-network validation-HV gain from R: {:+.1}%",
            m * 100.0
        );
    }
    println!(
        "suite-aggregate validation-HV gain from R:  {:+.1}%",
        ab.aggregate_gain() * 100.0
    );
    if cli.repeats > 1 {
        let gains = across_seeds(cli.seed, cli.repeats, |s| {
            run_r_ablation(&cli.scale, s).aggregate_gain()
        });
        println!("R-gain over {} seeds: {}", cli.repeats, Stats::of(&gains));
    }
    let path2 = cli.write_artifact("fig9_r_ablation.csv", &csv2);
    eprintln!("wrote {}", path2.display());
    let report = cli.write_run_report("fig9");
    eprintln!("wrote {}", report.display());
}
