//! Quality ablations of UNICO's design parameters (DESIGN.md §5):
//!
//! * `ρ` — the ParEGO augmentation coefficient (paper default 0.2);
//! * `p/N` — MSH's AUC promotion share (paper default 0.15);
//! * the UUL percentile of the high-fidelity update rule (default 0.95).
//!
//! For each setting the final normalized hypervolume on a fixed workload
//! is reported, holding everything else at the paper's configuration.

use unico_bench::Cli;
use unico_core::experiments::ablation::hypervolumes;
use unico_core::experiments::{scenario_env, table::Scenario};
use unico_core::report::Table;
use unico_core::{Unico, UnicoConfig};
use unico_search::SearchTrace;
use unico_workloads::zoo;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "ablation_params: scale={}, seed={}",
        cli.scale_name, cli.seed
    );
    let platform = Scenario::Edge.platform();
    let networks = vec![zoo::unet(), zoo::bert_base()];
    let env = scenario_env(
        &platform,
        &networks,
        &cli.scale,
        Some(Scenario::Edge.power_cap_mw()),
    );
    let base = UnicoConfig {
        max_iter: cli.scale.max_iter,
        batch: cli.scale.batch,
        b_max: cli.scale.b_max,
        seed: cli.seed,
        workers: cli.scale.workers,
        ..UnicoConfig::default()
    };

    let mut variants: Vec<(String, UnicoConfig)> = vec![("default".into(), base)];
    for rho in [0.0, 0.05, 0.5] {
        variants.push((format!("rho={rho}"), UnicoConfig { rho, ..base }));
    }
    for p in [0.0, 0.3, 0.5] {
        variants.push((
            format!("auc_share={p}"),
            UnicoConfig {
                auc_fraction: p,
                ..base
            },
        ));
    }
    for uul in [0.5, 0.75, 1.0] {
        variants.push((
            format!("uul_pct={uul}"),
            UnicoConfig {
                uul_percentile: uul,
                ..base
            },
        ));
    }

    let runs: Vec<(String, SearchTrace)> = variants
        .into_iter()
        .map(|(name, cfg)| {
            eprintln!("  running {name} ...");
            let res = Unico::new(cfg).run(&env);
            (name, res.trace)
        })
        .collect();
    let refs: Vec<(String, &SearchTrace)> = runs.iter().map(|(n, t)| (n.clone(), t)).collect();
    let rows = hypervolumes(&refs);

    let mut t = Table::new(vec!["Variant", "Hypervolume", "vs default"]);
    let mut csv = String::from("variant,hypervolume,vs_default_pct\n");
    for r in &rows {
        t.row(vec![
            r.variant.clone(),
            format!("{:.4}", r.hypervolume),
            format!("{:+.1}%", r.vs_hasco_pct),
        ]);
        csv.push_str(&format!(
            "{},{:.6},{:.3}\n",
            r.variant, r.hypervolume, r.vs_hasco_pct
        ));
    }
    println!(
        "Parameter ablations (baseline = paper defaults)\n{}",
        t.to_markdown()
    );
    let path = cli.write_artifact("ablation_params.csv", &csv);
    eprintln!("wrote {}", path.display());
    let report = cli.write_run_report("ablation_params");
    eprintln!("wrote {}", report.display());
}
