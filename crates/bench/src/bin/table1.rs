//! Regenerates Table 1: HASCO vs NSGA-II vs UNICO on the edge device
//! (power < 2 W) across the seven evaluation networks.

use unico_bench::Cli;
use unico_core::experiments::table::{render, run_table, Scenario};
use unico_core::report::series_to_csv;

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "table1: edge scenario, scale={}, seed={}",
        cli.scale_name, cli.seed
    );
    let comparisons = run_table(Scenario::Edge, &cli.scale, cli.seed);
    println!("{}", render(Scenario::Edge, &comparisons));

    // Per-method cost series for plotting.
    for method_idx in 0..3 {
        let name = &comparisons[0].rows[method_idx].method;
        let series: Vec<(f64, f64)> = comparisons
            .iter()
            .enumerate()
            .map(|(i, c)| (i as f64, c.rows[method_idx].cost_h))
            .collect();
        let path = cli.write_artifact(
            &format!("table1_cost_{}.csv", name.to_lowercase()),
            &series_to_csv("network_idx", "cost_h", &series),
        );
        eprintln!("wrote {}", path.display());
    }
    let report = cli.write_run_report("table1");
    eprintln!("wrote {}", report.display());
}
