//! Regenerates Table 2: HASCO vs NSGA-II vs UNICO on the cloud device
//! (power < 20 W) across the seven evaluation networks.

use unico_bench::Cli;
use unico_core::experiments::table::{render, run_table, Scenario};

fn main() {
    let cli = Cli::parse();
    eprintln!(
        "table2: cloud scenario, scale={}, seed={}",
        cli.scale_name, cli.seed
    );
    let comparisons = run_table(Scenario::Cloud, &cli.scale, cli.seed);
    println!("{}", render(Scenario::Cloud, &comparisons));

    let mut csv = String::from("network,method,latency_s,power_mw,area_mm2,cost_h\n");
    for c in &comparisons {
        for r in &c.rows {
            let (l, p, a) = r.ppa.unwrap_or((f64::NAN, f64::NAN, f64::NAN));
            csv.push_str(&format!(
                "{},{},{:.6e},{:.3},{:.3},{:.3}\n",
                c.network, r.method, l, p, a, r.cost_h
            ));
        }
    }
    let path = cli.write_artifact("table2.csv", &csv);
    eprintln!("wrote {}", path.display());
    let report = cli.write_run_report("table2");
    eprintln!("wrote {}", report.display());
}
