//! Regenerates Fig. 10: feature-contribution ablation — HASCO vs
//! SH+ChampionUpdate vs MSH+ChampionUpdate vs full UNICO, compared by
//! final hypervolume on {UNet, SRGAN, BERT, ViT}.

use unico_bench::Cli;
use unico_core::experiments::ablation::run_ablation;
use unico_core::report::Table;

fn main() {
    let cli = Cli::parse();
    eprintln!("fig10: scale={}, seed={}", cli.scale_name, cli.seed);
    let res = run_ablation(&cli.scale, cli.seed);
    let mut t = Table::new(vec![
        "Variant",
        "HV @ 1/4 time",
        "HV @ own finish",
        "vs HASCO @ 1/4 time",
        "Hours to HASCO quality",
    ]);
    let mut csv =
        String::from("variant,hv_quarter_time,hv_final,vs_hasco_pct,hours_to_hasco_quality\n");
    for r in &res.rows {
        let tt = r
            .hours_to_hasco_quality
            .map(|h| format!("{h:.2}"))
            .unwrap_or_else(|| "never".into());
        t.row(vec![
            r.variant.clone(),
            format!("{:.4}", r.hypervolume),
            format!("{:.4}", r.hypervolume_final),
            format!("{:+.1}%", r.vs_hasco_pct),
            tt.clone(),
        ]);
        csv.push_str(&format!(
            "{},{:.6},{:.6},{:.3},{}\n",
            r.variant, r.hypervolume, r.hypervolume_final, r.vs_hasco_pct, tt
        ));
    }
    println!("Fig. 10 (ablation)\n{}", t.to_markdown());
    let path = cli.write_artifact("fig10_ablation.csv", &csv);
    eprintln!("wrote {}", path.display());
    let report = cli.write_run_report("fig10");
    eprintln!("wrote {}", report.display());
}
