//! Regenerates Fig. 11: latency and power savings of the UNICO-found
//! Ascend-like architecture over the expert default, per workload.

use unico_bench::Cli;
use unico_core::experiments::ascend::run_ascend;
use unico_core::report::Table;

fn main() {
    let cli = Cli::parse();
    eprintln!("fig11: scale={}, seed={}", cli.scale_name, cli.seed);
    let res = run_ascend(&cli.scale, cli.seed, None);
    println!("expert default: {}", res.default_hw);
    println!("UNICO found:    {}", res.unico_hw);
    let (da, db, dc) = res.l0_deltas_kb();
    println!("L0 deltas vs default: L0A {da:+} KiB, L0B {db:+} KiB, L0C {dc:+} KiB");
    println!("search cost: {:.2} h (simulated)\n", res.search_cost_h);

    let mut t = Table::new(vec!["Network", "Latency saving", "Power saving"]);
    let mut csv = String::from("network,latency_saving_pct,power_saving_pct\n");
    for r in &res.rows {
        let cell = |v: Option<f64>| {
            v.map(|x| format!("{x:+.1}%"))
                .unwrap_or_else(|| "n/a".into())
        };
        t.row(vec![
            r.network.clone(),
            cell(r.latency_saving_pct),
            cell(r.power_saving_pct),
        ]);
        csv.push_str(&format!(
            "{},{},{}\n",
            r.network,
            r.latency_saving_pct
                .map(|v| format!("{v:.3}"))
                .unwrap_or_default(),
            r.power_saving_pct
                .map(|v| format!("{v:.3}"))
                .unwrap_or_default()
        ));
    }
    println!("Fig. 11 (Ascend-like deployment)\n{}", t.to_markdown());
    if let Some(mp) = res.mean_power_saving_pct() {
        println!("mean power saving: {mp:+.1}%");
    }
    let path = cli.write_artifact("fig11_savings.csv", &csv);
    eprintln!("wrote {}", path.display());
    let report = cli.write_run_report("fig11");
    eprintln!("wrote {}", report.display());
}
