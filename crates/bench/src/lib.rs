//! Shared plumbing for the experiment binaries: CLI parsing, output
//! management, run-report emission, and a dependency-free wall-clock
//! micro-benchmark harness.
//!
//! Every binary regenerates one table or figure of the paper and accepts
//! `--scale smoke|quick|paper` (default `quick`), `--seed <u64>` and
//! `--out <dir>` (default `results/`). Outputs are written both to
//! stdout (markdown) and as CSV files for plotting; every binary also
//! writes a structured JSON run-report (`<name>.report.json`, schema
//! `unico.run_report.v3`) next to its CSVs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod microbench;

use std::fs;
use std::path::{Path, PathBuf};

use unico_core::experiments::Scale;
use unico_search::Telemetry;

/// Parsed command-line options common to all experiment binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Experiment scale.
    pub scale: Scale,
    /// Human-readable scale name.
    pub scale_name: String,
    /// RNG seed.
    pub seed: u64,
    /// Independent repeats (seed, seed+1, …) for experiments that report
    /// mean ± std.
    pub repeats: usize,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
}

impl Cli {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Cli {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument iterator (testable).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Cli {
        let mut scale_name = "quick".to_string();
        let mut seed = 0u64;
        let mut repeats = 1usize;
        let mut out_dir = PathBuf::from("results");
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    scale_name = it.next().expect("--scale needs a value");
                }
                "--seed" => {
                    seed = it
                        .next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed must be an integer");
                }
                "--out" => {
                    out_dir = PathBuf::from(it.next().expect("--out needs a value"));
                }
                "--repeats" => {
                    repeats = it
                        .next()
                        .expect("--repeats needs a value")
                        .parse()
                        .expect("--repeats must be an integer");
                }
                "--help" | "-h" => {
                    eprintln!("usage: <bin> [--scale smoke|quick|paper] [--seed N] [--repeats N] [--out DIR]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other}; try --help"),
            }
        }
        let scale = match scale_name.as_str() {
            "smoke" => Scale::smoke(),
            "quick" => Scale::quick(),
            "paper" => Scale::paper(),
            other => panic!("unknown scale {other}; use smoke|quick|paper"),
        };
        Cli {
            scale,
            scale_name,
            seed,
            repeats: repeats.max(1),
            out_dir,
        }
    }

    /// Writes an artifact under the output directory, creating it if
    /// needed; returns the written path.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors (experiment binaries want loud failures).
    pub fn write_artifact(&self, name: &str, contents: &str) -> PathBuf {
        fs::create_dir_all(&self.out_dir).expect("create output directory");
        let path = self.out_dir.join(name);
        fs::write(&path, contents).expect("write artifact");
        path
    }

    /// Snapshots the process-wide [`Telemetry`] into a JSON run-report
    /// and writes it as `<name>.report.json` next to the CSV artifacts;
    /// returns the written path.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors.
    pub fn write_run_report(&self, name: &str) -> PathBuf {
        let report = Telemetry::global().report(name);
        self.write_artifact(&format!("{name}.report.json"), &report.to_json())
    }
}

/// Writes `contents` to `path`, creating parent directories.
///
/// # Panics
///
/// Panics on I/O errors.
pub fn write_file(path: &Path, contents: &str) {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).expect("create parent directory");
    }
    fs::write(path, contents).expect("write file");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let c = Cli::parse_from(args(&[]));
        assert_eq!(c.scale_name, "quick");
        assert_eq!(c.seed, 0);
        assert_eq!(c.repeats, 1);
        assert_eq!(c.out_dir, PathBuf::from("results"));
    }

    #[test]
    fn parses_all_flags() {
        let c = Cli::parse_from(args(&[
            "--scale",
            "smoke",
            "--seed",
            "42",
            "--out",
            "/tmp/x",
            "--repeats",
            "3",
        ]));
        assert_eq!(c.scale_name, "smoke");
        assert_eq!(c.seed, 42);
        assert_eq!(c.repeats, 3);
        assert_eq!(c.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(c.scale.batch, Scale::smoke().batch);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_unknown() {
        let _ = Cli::parse_from(args(&["--bogus"]));
    }

    #[test]
    #[should_panic(expected = "unknown scale")]
    fn rejects_bad_scale() {
        let _ = Cli::parse_from(args(&["--scale", "galactic"]));
    }

    #[test]
    fn artifact_roundtrip() {
        let dir = std::env::temp_dir().join("unico-bench-test");
        let c = Cli {
            scale: Scale::smoke(),
            scale_name: "smoke".into(),
            seed: 0,
            repeats: 1,
            out_dir: dir.clone(),
        };
        let p = c.write_artifact("t.csv", "a,b\n1,2\n");
        assert!(p.exists());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn run_report_written_as_json() {
        let dir = std::env::temp_dir().join("unico-bench-report-test");
        let c = Cli {
            scale: Scale::smoke(),
            scale_name: "smoke".into(),
            seed: 0,
            repeats: 1,
            out_dir: dir.clone(),
        };
        let p = c.write_run_report("unit");
        assert_eq!(p.file_name().unwrap(), "unit.report.json");
        let body = std::fs::read_to_string(&p).unwrap();
        assert!(body.contains("\"schema\":\"unico.run_report.v3\""));
        assert!(body.contains("\"phases_s\""));
        assert!(body.contains("\"counters\""));
        assert!(body.contains("\"cache_hits\""));
        std::fs::remove_dir_all(dir).ok();
    }
}
