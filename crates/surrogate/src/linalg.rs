//! Minimal dense linear algebra: just enough for Gaussian-process
//! regression (symmetric positive-definite systems via Cholesky).

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a nested row representation.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|row| row.len() == c),
            "ragged rows in matrix construction"
        );
        Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *o = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// In-place Cholesky factorization of a symmetric positive-definite
    /// matrix; returns the lower-triangular factor `L` with `L Lᵀ = A`.
    ///
    /// # Errors
    ///
    /// Returns `Err(LinalgError::NotPositiveDefinite)` if a non-positive
    /// pivot is encountered.
    pub fn cholesky(&self) -> Result<Matrix, LinalgError> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, i)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `L x = b` for lower-triangular `L` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.len(), self.rows, "solve_lower dimension mismatch");
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self[(i, k)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Solves `Lᵀ x = b` for lower-triangular `L` (backward substitution
    /// on the transpose).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn solve_lower_transpose(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.len(), self.rows, "solve_lower_transpose mismatch");
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for k in i + 1..n {
                sum -= self[(k, i)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Log-determinant of `A = L Lᵀ` given this Cholesky factor `L`
    /// (`2 Σ log L_ii`).
    pub fn cholesky_log_det(&self) -> f64 {
        (0..self.rows).map(|i| self[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Extends this Cholesky factor `L` (of an `n×n` SPD matrix `A`) to
    /// the factor of the `(n+1)×(n+1)` matrix `[[A, k], [kᵀ, d]]` in
    /// O(n²), appending one row in place.
    ///
    /// The new row is computed with exactly the operation order of
    /// [`Matrix::cholesky`]'s row loop, so an append-grown factor is
    /// bitwise identical to a from-scratch factorization of the
    /// extended matrix.
    ///
    /// # Errors
    ///
    /// Returns `Err(LinalgError::NotPositiveDefinite)` with
    /// `pivot == n` if the extended matrix is not positive definite.
    ///
    /// # Panics
    ///
    /// Panics if the factor is not square or `k.len() != n`.
    pub fn cholesky_append_row(&mut self, k: &[f64], d: f64) -> Result<(), LinalgError> {
        assert_eq!(self.rows, self.cols, "cholesky_append_row needs square L");
        let n = self.rows;
        assert_eq!(k.len(), n, "cholesky_append_row column length mismatch");
        // Grow to (n+1)×(n+1), shifting existing rows into the wider
        // layout back to front so nothing is overwritten.
        let mut grown = vec![0.0; (n + 1) * (n + 1)];
        for i in 0..n {
            grown[i * (n + 1)..i * (n + 1) + n].copy_from_slice(&self.data[i * n..(i + 1) * n]);
        }
        // New row, exactly as cholesky() computes row i = n.
        let mut row = vec![0.0; n + 1];
        for j in 0..n {
            let mut sum = k[j];
            for t in 0..j {
                sum -= row[t] * grown[j * (n + 1) + t];
            }
            row[j] = sum / grown[j * (n + 1) + j];
        }
        let mut sum = d;
        for r in row.iter().take(n) {
            sum -= r * r;
        }
        if sum <= 0.0 || !sum.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: n });
        }
        row[n] = sum.sqrt();
        grown[n * (n + 1)..].copy_from_slice(&row);
        self.rows = n + 1;
        self.cols = n + 1;
        self.data = grown;
        Ok(())
    }

    /// Rank-1 **update** of a Cholesky factor: given `L` with
    /// `L Lᵀ = A`, rewrites it in place to the factor of `A + v vᵀ` in
    /// O(n²) (hyperbolic-rotation sweep).
    ///
    /// # Panics
    ///
    /// Panics if the factor is not square or `v.len() != n`.
    pub fn cholesky_rank1_update(&mut self, v: &[f64]) {
        assert_eq!(self.rows, self.cols, "rank1 update needs square L");
        let n = self.rows;
        assert_eq!(v.len(), n, "rank1 update vector length mismatch");
        let mut x = v.to_vec();
        for k in 0..n {
            let lkk = self[(k, k)];
            let r = (lkk * lkk + x[k] * x[k]).sqrt();
            let c = r / lkk;
            let s = x[k] / lkk;
            self[(k, k)] = r;
            for i in k + 1..n {
                let lik = (self[(i, k)] + s * x[i]) / c;
                x[i] = c * x[i] - s * lik;
                self[(i, k)] = lik;
            }
        }
    }

    /// Rank-1 **downdate** of a Cholesky factor: given `L` with
    /// `L Lᵀ = A`, rewrites it in place to the factor of `A − v vᵀ` in
    /// O(n²).
    ///
    /// # Errors
    ///
    /// Returns `Err(LinalgError::NotPositiveDefinite)` (and leaves the
    /// factor partially modified) if `A − v vᵀ` is not positive
    /// definite.
    ///
    /// # Panics
    ///
    /// Panics if the factor is not square or `v.len() != n`.
    pub fn cholesky_rank1_downdate(&mut self, v: &[f64]) -> Result<(), LinalgError> {
        assert_eq!(self.rows, self.cols, "rank1 downdate needs square L");
        let n = self.rows;
        assert_eq!(v.len(), n, "rank1 downdate vector length mismatch");
        let mut x = v.to_vec();
        for k in 0..n {
            let lkk = self[(k, k)];
            let r2 = lkk * lkk - x[k] * x[k];
            if r2 <= 0.0 || !r2.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: k });
            }
            let r = r2.sqrt();
            let c = r / lkk;
            let s = x[k] / lkk;
            self[(k, k)] = r;
            for i in k + 1..n {
                let lik = (self[(i, k)] - s * x[i]) / c;
                x[i] = c * x[i] - s * lik;
                self[(i, k)] = lik;
            }
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Errors from linear-algebra routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix was not positive definite at the given pivot.
    NotPositiveDefinite {
        /// Pivot index at which factorization failed.
        pivot: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite at pivot {pivot}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Euclidean dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for a fixed B is SPD.
        Matrix::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.0],
            vec![0.6, 1.0, 3.0],
        ])
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = a.cholesky().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let mut v = 0.0;
                for k in 0..3 {
                    v += l[(i, k)] * l[(j, k)];
                }
                assert!((v - a[(i, j)]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn solves_invert_cholesky() {
        let a = spd3();
        let l = a.cholesky().unwrap();
        let b = vec![1.0, -2.0, 0.5];
        // Solve A x = b via L then Lᵀ.
        let y = l.solve_lower(&b);
        let x = l.solve_lower_transpose(&y);
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn non_spd_rejected() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalue -1
        assert!(matches!(
            m.cholesky(),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn log_det_matches_identity() {
        let l = Matrix::identity(4).cholesky().unwrap();
        assert!(l.cholesky_log_det().abs() < 1e-12);
    }

    #[test]
    fn matvec_identity() {
        let i = Matrix::identity(3);
        let v = vec![3.0, -1.0, 2.0];
        assert_eq!(i.matvec(&v), v);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn append_row_is_bitwise_identical_to_scratch() {
        let a4 = Matrix::from_rows(&[
            vec![4.0, 2.0, 0.6, 0.3],
            vec![2.0, 5.0, 1.0, 0.2],
            vec![0.6, 1.0, 3.0, 0.9],
            vec![0.3, 0.2, 0.9, 2.5],
        ]);
        let mut grown = spd3().cholesky().unwrap();
        grown
            .cholesky_append_row(&[0.3, 0.2, 0.9], 2.5)
            .expect("extended matrix is SPD");
        let scratch = a4.cholesky().unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    grown[(i, j)].to_bits(),
                    scratch[(i, j)].to_bits(),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn append_row_rejects_indefinite_extension() {
        let mut l = spd3().cholesky().unwrap();
        // Diagonal too small for the new column: Schur complement < 0.
        let err = l.cholesky_append_row(&[2.0, 2.0, 1.0], 0.1).unwrap_err();
        assert_eq!(err, LinalgError::NotPositiveDefinite { pivot: 3 });
    }

    #[test]
    fn rank1_update_matches_explicit_sum() {
        let a = spd3();
        let v = [0.7, -0.4, 0.2];
        let mut l = a.cholesky().unwrap();
        l.cholesky_rank1_update(&v);
        for i in 0..3 {
            for j in 0..3 {
                let mut got = 0.0;
                for k in 0..3 {
                    got += l[(i, k)] * l[(j, k)];
                }
                let want = a[(i, j)] + v[i] * v[j];
                assert!((got - want).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn rank1_downdate_inverts_update() {
        let a = spd3();
        let v = [0.7, -0.4, 0.2];
        let reference = a.cholesky().unwrap();
        let mut l = reference.clone();
        l.cholesky_rank1_update(&v);
        l.cholesky_rank1_downdate(&v).unwrap();
        for i in 0..3 {
            for j in 0..=i {
                assert!((l[(i, j)] - reference[(i, j)]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn rank1_downdate_rejects_indefinite_result() {
        let mut l = Matrix::identity(2).cholesky().unwrap();
        assert!(matches!(
            l.cholesky_rank1_downdate(&[2.0, 0.0]),
            Err(LinalgError::NotPositiveDefinite { pivot: 0 })
        ));
    }
}
