//! Minimal dense linear algebra: just enough for Gaussian-process
//! regression (symmetric positive-definite systems via Cholesky).

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a nested row representation.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|row| row.len() == c),
            "ragged rows in matrix construction"
        );
        Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *o = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// In-place Cholesky factorization of a symmetric positive-definite
    /// matrix; returns the lower-triangular factor `L` with `L Lᵀ = A`.
    ///
    /// # Errors
    ///
    /// Returns `Err(LinalgError::NotPositiveDefinite)` if a non-positive
    /// pivot is encountered.
    pub fn cholesky(&self) -> Result<Matrix, LinalgError> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, i)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `L x = b` for lower-triangular `L` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.len(), self.rows, "solve_lower dimension mismatch");
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self[(i, k)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Solves `Lᵀ x = b` for lower-triangular `L` (backward substitution
    /// on the transpose).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn solve_lower_transpose(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.len(), self.rows, "solve_lower_transpose mismatch");
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for k in i + 1..n {
                sum -= self[(k, i)] * x[k];
            }
            x[i] = sum / self[(i, i)];
        }
        x
    }

    /// Log-determinant of `A = L Lᵀ` given this Cholesky factor `L`
    /// (`2 Σ log L_ii`).
    pub fn cholesky_log_det(&self) -> f64 {
        (0..self.rows).map(|i| self[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Errors from linear-algebra routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix was not positive definite at the given pivot.
    NotPositiveDefinite {
        /// Pivot index at which factorization failed.
        pivot: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite at pivot {pivot}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Euclidean dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for a fixed B is SPD.
        Matrix::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.0],
            vec![0.6, 1.0, 3.0],
        ])
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = a.cholesky().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let mut v = 0.0;
                for k in 0..3 {
                    v += l[(i, k)] * l[(j, k)];
                }
                assert!((v - a[(i, j)]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn solves_invert_cholesky() {
        let a = spd3();
        let l = a.cholesky().unwrap();
        let b = vec![1.0, -2.0, 0.5];
        // Solve A x = b via L then Lᵀ.
        let y = l.solve_lower(&b);
        let x = l.solve_lower_transpose(&y);
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn non_spd_rejected() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalue -1
        assert!(matches!(
            m.cholesky(),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn log_det_matches_identity() {
        let l = Matrix::identity(4).cholesky().unwrap();
        assert!(l.cholesky_log_det().abs() < 1e-12);
    }

    #[test]
    fn matvec_identity() {
        let i = Matrix::identity(3);
        let v = vec![3.0, -1.0, 2.0];
        assert_eq!(i.matvec(&v), v);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
