//! Pareto dominance, non-dominated sorting and front maintenance
//! (minimization everywhere).

/// Returns `true` if `a` Pareto-dominates `b` (no worse in every
/// objective, strictly better in at least one; minimization).
///
/// # Panics
///
/// Panics (debug) if lengths differ.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the non-dominated points among `points`.
pub fn non_dominated_indices(points: &[Vec<f64>]) -> Vec<usize> {
    let mut keep = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i != j && (dominates(q, p) || (q == p && j < i)) {
                continue 'outer;
            }
        }
        keep.push(i);
    }
    keep
}

/// Fast non-dominated sort (NSGA-II): partitions point indices into
/// fronts; front 0 is the Pareto set.
pub fn non_dominated_sort(points: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = points.len();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut domination_count = vec![0usize; n];
    for i in 0..n {
        for (j, q) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            if dominates(&points[i], q) {
                dominated_by[i].push(j);
            } else if dominates(q, &points[i]) {
                domination_count[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| domination_count[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated_by[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
    }
    fronts
}

/// NSGA-II crowding distance for the points of one front; boundary
/// points get `f64::INFINITY`.
pub fn crowding_distance(points: &[Vec<f64>]) -> Vec<f64> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let d = points[0].len();
    let mut dist = vec![0.0f64; n];
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    #[allow(clippy::needless_range_loop)]
    for j in 0..d {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            points[a][j]
                .partial_cmp(&points[b][j])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let lo = points[order[0]][j];
        let hi = points[order[n - 1]][j];
        dist[order[0]] = f64::INFINITY;
        dist[order[n - 1]] = f64::INFINITY;
        let range = hi - lo;
        if range <= 0.0 {
            continue;
        }
        for w in 1..n - 1 {
            let prev = points[order[w - 1]][j];
            let next = points[order[w + 1]][j];
            dist[order[w]] += (next - prev) / range;
        }
    }
    dist
}

/// An incrementally maintained Pareto front of objective vectors, each
/// carrying a payload (e.g. a hardware configuration).
#[derive(Debug, Clone)]
pub struct ParetoFront<T> {
    entries: Vec<(Vec<f64>, T)>,
}

impl<T> Default for ParetoFront<T> {
    fn default() -> Self {
        ParetoFront {
            entries: Vec::new(),
        }
    }
}

impl<T> ParetoFront<T> {
    /// An empty front.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a front from `(objectives, payload)` entries captured by
    /// iterating an earlier front (checkpoint restore). Entry order is
    /// preserved exactly — [`ParetoFront::objectives`] on the restored
    /// front is byte-identical to the original's.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the entries are not mutually
    /// non-dominated — a front serialized by this crate always is.
    pub fn from_entries(entries: Vec<(Vec<f64>, T)>) -> Self {
        #[cfg(debug_assertions)]
        for (i, (a, _)) in entries.iter().enumerate() {
            for (j, (b, _)) in entries.iter().enumerate() {
                if i != j {
                    debug_assert!(
                        !dominates(a, b),
                        "restored front entries must be mutually non-dominated"
                    );
                }
            }
        }
        ParetoFront { entries }
    }

    /// Number of points currently on the front.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(objectives, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], &T)> {
        self.entries.iter().map(|(y, t)| (y.as_slice(), t))
    }

    /// The raw objective vectors on the front.
    pub fn objectives(&self) -> Vec<Vec<f64>> {
        self.entries.iter().map(|(y, _)| y.clone()).collect()
    }

    /// Offers a point; inserts it if non-dominated (evicting any points
    /// it dominates) and returns whether it was inserted. Duplicate
    /// objective vectors are rejected.
    pub fn offer(&mut self, objectives: Vec<f64>, payload: T) -> bool {
        if self
            .entries
            .iter()
            .any(|(y, _)| dominates(y, &objectives) || *y == objectives)
        {
            return false;
        }
        self.entries.retain(|(y, _)| !dominates(&objectives, y));
        self.entries.push((objectives, payload));
        true
    }

    /// The entry minimizing raw Euclidean distance to the origin after
    /// per-column unit scaling (e.g. seconds→ms); with the paper's table
    /// units the distance is dominated by the largest-magnitude
    /// objective, which is how the paper's reported knee points behave.
    ///
    /// # Panics
    ///
    /// Panics if `scales.len()` differs from the objective dimension.
    pub fn min_euclidean_scaled(&self, scales: &[f64]) -> Option<(&[f64], &T)> {
        if self.entries.is_empty() {
            return None;
        }
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, (y, _)) in self.entries.iter().enumerate() {
            assert_eq!(y.len(), scales.len(), "scale/objective length mismatch");
            let d: f64 = y.iter().zip(scales).map(|(v, s)| (v * s).powi(2)).sum();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        let (y, t) = &self.entries[best];
        Some((y.as_slice(), t))
    }

    /// The entry minimizing Euclidean distance to the origin in
    /// column-normalized objective space — the paper's rule for picking
    /// a single design off the front.
    pub fn min_euclidean(&self) -> Option<(&[f64], &T)> {
        if self.entries.is_empty() {
            return None;
        }
        let rows: Vec<Vec<f64>> = self.entries.iter().map(|(y, _)| y.clone()).collect();
        let normalized = crate::scalarize::normalize_columns(&rows);
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, y) in normalized.iter().enumerate() {
            let d: f64 = y.iter().map(|v| v * v).sum();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        let (y, t) = &self.entries[best];
        Some((y.as_slice(), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
    }

    #[test]
    fn non_dominated_set() {
        let pts = vec![
            vec![1.0, 4.0],
            vec![2.0, 2.0],
            vec![4.0, 1.0],
            vec![3.0, 3.0], // dominated by (2,2)
        ];
        assert_eq!(non_dominated_indices(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_counted_once() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert_eq!(non_dominated_indices(&pts), vec![0]);
    }

    #[test]
    fn sort_produces_layered_fronts() {
        let pts = vec![
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![3.0, 3.0],
            vec![0.5, 4.0],
        ];
        let fronts = non_dominated_sort(&pts);
        assert_eq!(fronts[0], vec![0, 3]);
        assert_eq!(fronts[1], vec![1]);
        assert_eq!(fronts[2], vec![2]);
        let total: usize = fronts.iter().map(Vec::len).sum();
        assert_eq!(total, pts.len());
    }

    #[test]
    fn crowding_boundaries_infinite() {
        let pts = vec![
            vec![0.0, 3.0],
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![3.0, 0.0],
        ];
        let d = crowding_distance(&pts);
        assert_eq!(d[0], f64::INFINITY);
        assert_eq!(d[3], f64::INFINITY);
        assert!(d[1].is_finite() && d[1] > 0.0);
    }

    #[test]
    fn crowding_small_fronts_infinite() {
        assert_eq!(crowding_distance(&[vec![1.0, 2.0]]), vec![f64::INFINITY]);
        assert!(crowding_distance(&[]).is_empty());
    }

    #[test]
    fn front_evicts_dominated() {
        let mut f = ParetoFront::new();
        assert!(f.offer(vec![2.0, 2.0], "a"));
        assert!(f.offer(vec![1.0, 3.0], "b"));
        assert!(f.offer(vec![1.0, 1.0], "c")); // dominates both
        assert_eq!(f.len(), 1);
        assert!(!f.offer(vec![1.5, 1.5], "d"));
        assert!(!f.offer(vec![1.0, 1.0], "dup"));
    }

    #[test]
    fn min_euclidean_picks_knee() {
        let mut f = ParetoFront::new();
        f.offer(vec![0.0, 10.0], "low-lat");
        f.offer(vec![10.0, 0.0], "low-pow");
        f.offer(vec![2.0, 2.0], "knee");
        let (_, who) = f.min_euclidean().unwrap();
        assert_eq!(*who, "knee");
    }

    #[test]
    fn from_entries_preserves_order() {
        let mut f = ParetoFront::new();
        f.offer(vec![1.0, 4.0], 0usize);
        f.offer(vec![4.0, 1.0], 1usize);
        f.offer(vec![2.0, 2.0], 2usize);
        let entries: Vec<(Vec<f64>, usize)> = f.iter().map(|(y, &t)| (y.to_vec(), t)).collect();
        let restored = ParetoFront::from_entries(entries);
        assert_eq!(restored.objectives(), f.objectives());
        let payloads: Vec<usize> = restored.iter().map(|(_, &t)| t).collect();
        assert_eq!(payloads, vec![0, 1, 2]);
    }

    #[test]
    fn empty_front_behaviour() {
        let f: ParetoFront<u8> = ParetoFront::new();
        assert!(f.is_empty());
        assert!(f.min_euclidean().is_none());
        assert!(f.objectives().is_empty());
    }

    #[test]
    fn invariant_front_is_mutually_nondominated() {
        let mut f = ParetoFront::new();
        // Deterministic pseudo-random stream.
        let mut state = 123456789u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for i in 0..200 {
            f.offer(vec![next(), next(), next()], i);
        }
        let objs = f.objectives();
        for i in 0..objs.len() {
            for j in 0..objs.len() {
                if i != j {
                    assert!(!dominates(&objs[i], &objs[j]));
                }
            }
        }
    }
}
