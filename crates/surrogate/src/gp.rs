//! Gaussian-process regression with marginal-likelihood hyperparameter
//! fitting.

use std::fmt;

use rand::rngs::StdRng;
use rand::Rng;

use crate::kernel::{Kernel, KernelKind};
use crate::linalg::{LinalgError, Matrix};

/// Errors from Gaussian-process fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpError {
    /// No training data was supplied.
    EmptyTrainingSet,
    /// Input feature vectors had inconsistent dimension.
    DimensionMismatch {
        /// Expected feature dimension.
        expected: usize,
        /// Offending dimension.
        got: usize,
    },
    /// The kernel matrix could not be factorized even at maximum jitter.
    Factorization(LinalgError),
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::EmptyTrainingSet => write!(f, "empty training set"),
            GpError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "feature dimension mismatch: expected {expected}, got {got}"
                )
            }
            GpError::Factorization(e) => write!(f, "kernel factorization failed: {e}"),
        }
    }
}

impl std::error::Error for GpError {}

/// A Gaussian-process regressor over `[0, 1]^d` features.
///
/// Targets are standardized internally (zero mean, unit variance), and
/// kernel hyperparameters (length scale, signal variance, noise) are
/// selected by random multi-start search maximizing the log marginal
/// likelihood — cheap, dependency-free, and entirely adequate for the
/// few-hundred-point training sets a co-optimization run produces.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kind: KernelKind,
    dim: usize,
    kernel: Kernel,
    noise: f64,
    x: Vec<Vec<f64>>,
    /// Standardized targets (including hallucinated ones).
    y_norm: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    chol: Option<Matrix>,
    alpha: Vec<f64>,
}

impl GaussianProcess {
    /// Creates an unfitted GP for `dim`-dimensional features.
    pub fn new(kind: KernelKind, dim: usize) -> Self {
        GaussianProcess {
            kind,
            dim,
            kernel: Kernel::new(kind, 0.3, 1.0),
            noise: 1e-4,
            x: Vec::new(),
            y_norm: Vec::new(),
            y_mean: 0.0,
            y_std: 1.0,
            chol: None,
            alpha: Vec::new(),
        }
    }

    /// Number of training points currently absorbed.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the GP has no training data.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Kernel currently in use (hyperparameters readable through its
    /// accessors) — what a checkpoint needs to reproduce this fit.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Observation-noise/jitter level of the current factorization.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    fn standardize(&mut self, ys: &[f64]) {
        let n = ys.len() as f64;
        self.y_mean = ys.iter().sum::<f64>() / n;
        let var = ys.iter().map(|y| (y - self.y_mean).powi(2)).sum::<f64>() / n;
        self.y_std = var.sqrt().max(1e-12);
        self.y_norm = ys.iter().map(|y| (y - self.y_mean) / self.y_std).collect();
    }

    /// Full factorization of the current `(x, kernel, noise)` state with
    /// jitter escalation, recomputing `alpha` against `y_norm`.
    fn refactor(&mut self) -> Result<(), GpError> {
        let mut jitter = self.noise;
        for _ in 0..8 {
            let k = self.kernel_matrix(&self.kernel, jitter);
            match k.cholesky() {
                Ok(l) => {
                    let mut alpha = l.solve_lower(&self.y_norm);
                    alpha = l.solve_lower_transpose(&alpha);
                    self.chol = Some(l);
                    self.alpha = alpha;
                    self.noise = jitter;
                    return Ok(());
                }
                Err(_) => jitter = (jitter * 10.0).max(1e-8),
            }
        }
        Err(GpError::Factorization(LinalgError::NotPositiveDefinite {
            pivot: 0,
        }))
    }

    fn validate(&self, xs: &[Vec<f64>], ys: &[f64]) -> Result<(), GpError> {
        if xs.is_empty() {
            return Err(GpError::EmptyTrainingSet);
        }
        if let Some(bad) = xs.iter().find(|x| x.len() != self.dim) {
            return Err(GpError::DimensionMismatch {
                expected: self.dim,
                got: bad.len(),
            });
        }
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        Ok(())
    }

    fn kernel_matrix(&self, kernel: &Kernel, noise: f64) -> Matrix {
        let n = self.x.len();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = kernel.eval(&self.x[i], &self.x[j]);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
            k[(i, i)] += noise;
        }
        k
    }

    fn log_marginal(&self, kernel: &Kernel, noise: f64, y: &[f64]) -> Option<f64> {
        let k = self.kernel_matrix(kernel, noise);
        let l = k.cholesky().ok()?;
        let mut alpha = l.solve_lower(y);
        alpha = l.solve_lower_transpose(&alpha);
        let fit: f64 = y.iter().zip(&alpha).map(|(a, b)| a * b).sum();
        let n = y.len() as f64;
        Some(-0.5 * fit - 0.5 * l.cholesky_log_det() - 0.5 * n * (2.0 * std::f64::consts::PI).ln())
    }

    /// Fits the GP to `(xs, ys)`, selecting hyperparameters by random
    /// multi-start maximum marginal likelihood.
    ///
    /// # Errors
    ///
    /// Returns an error when `xs` is empty, dimensions mismatch, or no
    /// hyperparameter setting yields a factorizable kernel matrix.
    pub fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64], rng: &mut StdRng) -> Result<(), GpError> {
        self.validate(xs, ys)?;
        self.x = xs.to_vec();
        self.standardize(ys);
        let y_norm = self.y_norm.clone();

        // Multi-start hyperparameter search.
        let mut best: Option<(f64, Kernel, f64)> = None;
        let consider = |ls: f64, var: f64, noise: f64, gp: &GaussianProcess| {
            let kernel = Kernel::new(gp.kind, ls, var);
            gp.log_marginal(&kernel, noise, &y_norm)
                .map(|lml| (lml, kernel, noise))
        };
        // Deterministic coarse grid plus random refinement.
        let mut candidates: Vec<(f64, f64, f64)> = Vec::new();
        for &ls in &[0.05, 0.1, 0.2, 0.4, 0.8, 1.6] {
            for &noise in &[1e-6, 1e-4, 1e-2] {
                candidates.push((ls, 1.0, noise));
            }
        }
        for _ in 0..24 {
            let ls = 10f64.powf(rng.gen_range(-1.6..0.4));
            let var = 10f64.powf(rng.gen_range(-0.5..0.7));
            let noise = 10f64.powf(rng.gen_range(-6.0..-1.0));
            candidates.push((ls, var, noise));
        }
        for (ls, var, noise) in candidates {
            if let Some(cand) = consider(ls, var, noise, self) {
                if best.as_ref().is_none_or(|(b, _, _)| cand.0 > *b) {
                    best = Some(cand);
                }
            }
        }
        let (_, kernel, noise) =
            best.ok_or(GpError::Factorization(LinalgError::NotPositiveDefinite {
                pivot: 0,
            }))?;
        self.kernel = kernel;
        self.noise = noise;

        // Final factorization with jitter escalation for numerical safety.
        self.refactor()
    }

    /// Fits the GP to `(xs, ys)` with **fixed** hyperparameters,
    /// consuming no randomness: no marginal-likelihood search runs, only
    /// target standardization and one factorization through the same
    /// jitter-escalation ladder as [`GaussianProcess::fit`].
    ///
    /// Together with [`GaussianProcess::fit_incremental`] this makes
    /// surrogate updates reproducible across checkpoint/resume: a
    /// resumed run rebuilds the factor from the stored hyperparameters
    /// and lands bit-identical to the incrementally grown one (row
    /// appends use exactly the scratch factorization's operation order).
    ///
    /// # Errors
    ///
    /// Returns an error when `xs` is empty, dimensions mismatch, or the
    /// kernel matrix cannot be factorized even at maximum jitter.
    pub fn fit_with_hypers(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        length_scale: f64,
        variance: f64,
        noise: f64,
    ) -> Result<(), GpError> {
        self.validate(xs, ys)?;
        self.x = xs.to_vec();
        self.standardize(ys);
        self.kernel = Kernel::new(self.kind, length_scale, variance);
        self.noise = noise;
        self.refactor()
    }

    /// Extends an already-fitted GP with additional trailing samples
    /// without re-selecting hyperparameters and without consuming
    /// randomness. The Cholesky factor grows by one appended row per new
    /// point (O(n²) instead of O(n³) per sample); targets are
    /// re-standardized and `alpha` recomputed against the full vector
    /// (they are cheap and depend on the scalarization weights, which
    /// change every call).
    ///
    /// `xs[..self.len()]` must be the points already absorbed, in order.
    /// If a row append hits a non-positive pivot, the factor is rebuilt
    /// from scratch through the jitter ladder — exactly what a
    /// from-scratch [`GaussianProcess::fit_with_hypers`] at the same
    /// hyperparameters would do, so both paths stay bit-identical.
    ///
    /// # Errors
    ///
    /// Returns an error when `xs` is empty, dimensions mismatch, or the
    /// extended kernel matrix cannot be factorized even at maximum
    /// jitter.
    pub fn fit_incremental(&mut self, xs: &[Vec<f64>], ys: &[f64]) -> Result<(), GpError> {
        self.validate(xs, ys)?;
        let n0 = self.x.len();
        assert!(
            xs.len() >= n0,
            "fit_incremental cannot shrink the training set"
        );
        let (ls, var) = (self.kernel.length_scale(), self.kernel.variance());

        let mut factor = self.chol.take();
        let mut appended = factor.as_ref().is_some_and(|l| l.rows() == n0);
        if appended {
            let l = factor.as_mut().expect("factor present on append path");
            for x in &xs[n0..] {
                let kx: Vec<f64> = self.x.iter().map(|xi| self.kernel.eval(x, xi)).collect();
                let d = self.kernel.eval(x, x) + self.noise;
                if l.cholesky_append_row(&kx, d).is_err() {
                    appended = false;
                    break;
                }
                self.x.push(x.clone());
            }
        }
        if appended {
            self.standardize(ys);
            let l = factor.as_ref().expect("factor present on append path");
            let mut alpha = l.solve_lower(&self.y_norm);
            alpha = l.solve_lower_transpose(&alpha);
            self.chol = factor;
            self.alpha = alpha;
            Ok(())
        } else {
            // Non-positive pivot (or no factor yet): a from-scratch
            // ladder at the stored hyperparameters, as a resumed run
            // would perform.
            self.fit_with_hypers(xs, ys, ls, var, self.noise)
        }
    }

    /// Posterior mean and variance at `x` (in original target units).
    ///
    /// For an unfitted GP returns the prior `(0, kernel variance)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let kx: Vec<f64> = self.x.iter().map(|xi| self.kernel.eval(xi, x)).collect();
        self.predict_prepared(x, &kx)
    }

    /// Extends a memoized kernel row in place, appending
    /// `k(self.x[i], x)` for the training points `row.len()..self.len()`
    /// absorbed since the row was last extended. Starting from an empty
    /// row this builds exactly the vector [`GaussianProcess::predict`]
    /// computes internally; across kriging-believer rounds only the one
    /// newly hallucinated point per round is evaluated.
    pub fn extend_kernel_row(&self, x: &[f64], row: &mut Vec<f64>) {
        for xi in &self.x[row.len()..] {
            row.push(self.kernel.eval(xi, x));
        }
    }

    /// [`GaussianProcess::predict`] with a precomputed kernel row (as
    /// grown by [`GaussianProcess::extend_kernel_row`]): skips the O(n)
    /// kernel evaluations, bit-identical result.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()` or the row is stale (shorter
    /// than the training set of a fitted GP).
    pub fn predict_prepared(&self, x: &[f64], row: &[f64]) -> (f64, f64) {
        assert_eq!(x.len(), self.dim, "prediction dimension mismatch");
        let Some(l) = &self.chol else {
            return (
                self.y_mean,
                self.kernel.variance() * self.y_std * self.y_std,
            );
        };
        assert_eq!(row.len(), self.x.len(), "stale kernel row");
        let mean_norm: f64 = row.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        let v = l.solve_lower(row);
        let var_norm =
            (self.kernel.eval(x, x) + self.noise - v.iter().map(|u| u * u).sum::<f64>()).max(0.0);
        (
            mean_norm * self.y_std + self.y_mean,
            var_norm * self.y_std * self.y_std,
        )
    }

    /// Adds a hallucinated observation (kriging believer) without
    /// refitting hyperparameters. Used for batch acquisition.
    ///
    /// Grows the existing Cholesky factor by one appended row (O(n²));
    /// the append uses the scratch factorization's exact operation
    /// order, so the grown factor is bit-identical to the full
    /// refactorization this method used to perform. Falls back to the
    /// full jitter ladder when there is no factor yet or the extension
    /// is not positive definite.
    ///
    /// # Errors
    ///
    /// Returns an error if the augmented kernel matrix cannot be
    /// factorized.
    pub fn hallucinate(&mut self, x: Vec<f64>, y: f64) -> Result<(), GpError> {
        if x.len() != self.dim {
            return Err(GpError::DimensionMismatch {
                expected: self.dim,
                got: x.len(),
            });
        }
        let appended = match self.chol.as_mut() {
            Some(l) if l.rows() == self.x.len() => {
                let kx: Vec<f64> = self.x.iter().map(|xi| self.kernel.eval(&x, xi)).collect();
                let d = self.kernel.eval(&x, &x) + self.noise;
                l.cholesky_append_row(&kx, d).is_ok()
            }
            _ => false,
        };
        self.x.push(x);
        self.y_norm.push((y - self.y_mean) / self.y_std);
        if appended {
            let l = self.chol.as_ref().expect("factor present on append path");
            let mut alpha = l.solve_lower(&self.y_norm);
            alpha = l.solve_lower_transpose(&alpha);
            self.alpha = alpha;
            return Ok(());
        }
        self.refactor().map_err(|_| {
            GpError::Factorization(LinalgError::NotPositiveDefinite {
                pivot: self.x.len() - 1,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn interpolates_training_points() {
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (6.0 * x[0]).sin()).collect();
        let mut gp = GaussianProcess::new(KernelKind::Matern52, 1);
        gp.fit(&xs, &ys, &mut rng()).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let (m, v) = gp.predict(x);
            assert!((m - y).abs() < 0.15, "mean {m} vs {y}");
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let xs = vec![vec![0.4], vec![0.5], vec![0.6]];
        let ys = vec![1.0, 1.1, 0.9];
        let mut gp = GaussianProcess::new(KernelKind::SquaredExponential, 1);
        gp.fit(&xs, &ys, &mut rng()).unwrap();
        let (_, v_near) = gp.predict(&[0.5]);
        let (_, v_far) = gp.predict(&[0.0]);
        assert!(v_far > v_near);
    }

    #[test]
    fn empty_fit_errors() {
        let mut gp = GaussianProcess::new(KernelKind::Matern52, 2);
        assert_eq!(gp.fit(&[], &[], &mut rng()), Err(GpError::EmptyTrainingSet));
    }

    #[test]
    fn dimension_mismatch_errors() {
        let mut gp = GaussianProcess::new(KernelKind::Matern52, 2);
        let err = gp.fit(&[vec![0.1]], &[1.0], &mut rng()).unwrap_err();
        assert!(matches!(
            err,
            GpError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn prior_prediction_before_fit() {
        let gp = GaussianProcess::new(KernelKind::Matern52, 3);
        let (m, v) = gp.predict(&[0.1, 0.2, 0.3]);
        assert_eq!(m, 0.0);
        assert!(v > 0.0);
        assert!(gp.is_empty());
    }

    #[test]
    fn constant_targets_do_not_blow_up() {
        let xs = vec![vec![0.1], vec![0.5], vec![0.9]];
        let ys = vec![2.0, 2.0, 2.0];
        let mut gp = GaussianProcess::new(KernelKind::Matern52, 1);
        gp.fit(&xs, &ys, &mut rng()).unwrap();
        let (m, v) = gp.predict(&[0.3]);
        assert!((m - 2.0).abs() < 1e-6);
        assert!(v.is_finite());
    }

    #[test]
    fn duplicate_points_survive_via_jitter() {
        let xs = vec![vec![0.5], vec![0.5], vec![0.5], vec![0.2]];
        let ys = vec![1.0, 1.0, 1.0, 0.0];
        let mut gp = GaussianProcess::new(KernelKind::SquaredExponential, 1);
        gp.fit(&xs, &ys, &mut rng()).unwrap();
        let (m, _) = gp.predict(&[0.5]);
        assert!((m - 1.0).abs() < 0.3);
    }

    #[test]
    fn hallucination_shifts_posterior() {
        let xs = vec![vec![0.2], vec![0.8]];
        let ys = vec![1.0, 1.0];
        let mut gp = GaussianProcess::new(KernelKind::Matern52, 1);
        gp.fit(&xs, &ys, &mut rng()).unwrap();
        let (_, v_before) = gp.predict(&[0.5]);
        gp.hallucinate(vec![0.5], 1.0).unwrap();
        let (_, v_after) = gp.predict(&[0.5]);
        assert!(v_after < v_before, "hallucination should reduce variance");
    }
}
