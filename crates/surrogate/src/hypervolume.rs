//! Exact hypervolume computation (minimization) and the hypervolume
//! difference metric.

use crate::pareto::non_dominated_indices;

/// Exact hypervolume of `points` (minimization) with respect to
/// `reference`, the volume of the region dominated by the points and
/// bounded above by the reference point.
///
/// Points at or beyond the reference in any coordinate contribute
/// nothing. Uses a sweep in 2-D and recursive slicing (HSO) in higher
/// dimensions — exact and fast for the front sizes a co-optimization run
/// produces (tens of points, ≤ 4 objectives).
///
/// # Panics
///
/// Panics if any point's dimension differs from the reference's.
pub fn hypervolume(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let d = reference.len();
    let mut clipped: Vec<Vec<f64>> = points
        .iter()
        .inspect(|p| assert_eq!(p.len(), d, "point/reference dimension mismatch"))
        .filter(|p| p.iter().zip(reference).all(|(x, r)| x < r))
        .cloned()
        .collect();
    if clipped.is_empty() {
        return 0.0;
    }
    let keep = non_dominated_indices(&clipped);
    clipped = keep.into_iter().map(|i| clipped[i].clone()).collect();
    hv_rec(&mut clipped, reference)
}

fn hv_rec(points: &mut [Vec<f64>], reference: &[f64]) -> f64 {
    let d = reference.len();
    match d {
        0 => 0.0,
        1 => {
            let min = points.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
            (reference[0] - min).max(0.0)
        }
        2 => {
            // Sweep: sort by x ascending, accumulate rectangles.
            points.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap_or(std::cmp::Ordering::Equal));
            let mut hv = 0.0;
            let mut prev_y = reference[1];
            for p in points.iter() {
                if p[1] < prev_y {
                    hv += (reference[0] - p[0]) * (prev_y - p[1]);
                    prev_y = p[1];
                }
            }
            hv
        }
        _ => {
            // Slice along the last objective.
            points.sort_by(|a, b| {
                a[d - 1]
                    .partial_cmp(&b[d - 1])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut hv = 0.0;
            let sub_ref = &reference[..d - 1];
            for i in 0..points.len() {
                let z = points[i][d - 1];
                let next_z = if i + 1 < points.len() {
                    points[i + 1][d - 1]
                } else {
                    reference[d - 1]
                };
                let height = next_z - z;
                if height <= 0.0 {
                    continue;
                }
                let mut active: Vec<Vec<f64>> =
                    points[..=i].iter().map(|p| p[..d - 1].to_vec()).collect();
                let keep = non_dominated_indices(&active);
                active = keep.into_iter().map(|k| active[k].clone()).collect();
                hv += hv_rec(&mut active, sub_ref) * height;
            }
            hv
        }
    }
}

/// Hypervolume difference `HV(reference_front) − HV(front)` — the
/// convergence metric of the paper's Fig. 7: lower is better, `0` means
/// the front matches the reference front exactly.
pub fn hypervolume_difference(
    front: &[Vec<f64>],
    reference_front: &[Vec<f64>],
    reference_point: &[f64],
) -> f64 {
    hypervolume(reference_front, reference_point) - hypervolume(front, reference_point)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_box() {
        let hv = hypervolume(&[vec![1.0, 1.0]], &[3.0, 4.0]);
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn two_points_union() {
        // (1,3) and (3,1) vs ref (4,4): 3+3+... union = 3*1 + 1*3 + ... draw it:
        // box1 = (4-1)*(4-3)=3, box2=(4-3)*(4-1)=3, overlap=(4-3)*(4-3)=1 -> 5
        let hv = hypervolume(&[vec![1.0, 3.0], vec![3.0, 1.0]], &[4.0, 4.0]);
        assert!((hv - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_point_adds_nothing() {
        let base = hypervolume(&[vec![1.0, 1.0]], &[4.0, 4.0]);
        let with_dom = hypervolume(&[vec![1.0, 1.0], vec![2.0, 2.0]], &[4.0, 4.0]);
        assert!((base - with_dom).abs() < 1e-12);
    }

    #[test]
    fn point_beyond_reference_ignored() {
        let hv = hypervolume(&[vec![5.0, 5.0]], &[4.0, 4.0]);
        assert_eq!(hv, 0.0);
        assert_eq!(hypervolume(&[], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn three_d_cube() {
        let hv = hypervolume(&[vec![0.0, 0.0, 0.0]], &[2.0, 3.0, 4.0]);
        assert!((hv - 24.0).abs() < 1e-12);
    }

    #[test]
    fn three_d_union_matches_inclusion_exclusion() {
        let a = vec![0.0, 1.0, 1.0];
        let b = vec![1.0, 0.0, 1.0];
        let r = vec![2.0, 2.0, 2.0];
        // vol(a)= 2*1*1=2, vol(b)=1*2*1=2, overlap=(max coords)->(1,1,1): 1*1*1=1
        let hv = hypervolume(&[a, b], &r);
        assert!((hv - 3.0).abs() < 1e-12, "hv {hv}");
    }

    #[test]
    fn four_d_consistency_with_slicing() {
        // One point at origin in 4D box.
        let hv = hypervolume(&[vec![0.0; 4]], &[1.0, 2.0, 3.0, 4.0]);
        assert!((hv - 24.0).abs() < 1e-12);
        // Two staircase points.
        let hv2 = hypervolume(
            &[vec![0.0, 1.0, 1.0, 1.0], vec![1.0, 0.0, 1.0, 1.0]],
            &[2.0; 4],
        );
        // By symmetry with the 3-D case x an extra factor 1 each:
        // vol(a)=2*1*1*1=2 ... overlap 1 -> 3
        assert!((hv2 - 3.0).abs() < 1e-12, "hv2 {hv2}");
    }

    #[test]
    fn hypervolume_monotone_in_point_insertion() {
        let r = vec![1.0, 1.0, 1.0];
        let mut pts: Vec<Vec<f64>> = Vec::new();
        let mut prev = 0.0;
        let seq = [
            vec![0.5, 0.5, 0.5],
            vec![0.2, 0.8, 0.6],
            vec![0.9, 0.1, 0.3],
            vec![0.4, 0.4, 0.9],
        ];
        for p in seq {
            pts.push(p);
            let hv = hypervolume(&pts, &r);
            assert!(hv >= prev - 1e-12, "hv must not decrease on insertion");
            prev = hv;
        }
    }

    #[test]
    fn difference_metric_zero_at_reference() {
        let front = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let d = hypervolume_difference(&front, &front, &[3.0, 3.0]);
        assert!(d.abs() < 1e-12);
        let worse = vec![vec![2.5, 2.5]];
        assert!(hypervolume_difference(&worse, &front, &[3.0, 3.0]) > 0.0);
    }
}
