//! Acquisition functions and kriging-believer batch selection.

use crate::gp::GaussianProcess;

/// Which acquisition function batch selection maximizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AcquisitionKind {
    /// Expected improvement over the incumbent best (minimization).
    ExpectedImprovement,
    /// Lower-confidence bound `mean − beta·stddev` (minimization), with
    /// exploration weight `beta`.
    LowerConfidenceBound {
        /// Exploration weight.
        beta: f64,
    },
}

/// Standard normal probability density.
fn phi(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution (Abramowitz–Stegun style
/// erf-based approximation; absolute error < 1.5e-7, far below any noise
/// level in this application).
fn big_phi(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Expected improvement of a Gaussian posterior `(mean, variance)` below
/// the incumbent `best` (minimization). Returns `0` for zero variance and
/// no mean improvement.
pub fn expected_improvement(mean: f64, variance: f64, best: f64) -> f64 {
    let std = variance.max(0.0).sqrt();
    if std < 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / std;
    ((best - mean) * big_phi(z) + std * phi(z)).max(0.0)
}

/// Lower-confidence-bound score (lower is more promising). Exposed as a
/// *maximizable* acquisition value: `−(mean − beta·stddev)`.
pub fn ucb(mean: f64, variance: f64, beta: f64) -> f64 {
    -(mean - beta * variance.max(0.0).sqrt())
}

/// Selects a batch of `batch` candidate indices from `pool` maximizing
/// the acquisition under the kriging-believer strategy: after each pick,
/// the GP is updated with a hallucinated observation at the predicted
/// mean so subsequent picks spread out.
///
/// The GP is consumed (hallucinations mutate it); pass a clone if the
/// original is still needed.
///
/// # Panics
///
/// Panics if `pool` is empty or `batch == 0`.
pub fn select_batch(
    mut gp: GaussianProcess,
    pool: &[Vec<f64>],
    best: f64,
    kind: AcquisitionKind,
    batch: usize,
) -> Vec<usize> {
    assert!(!pool.is_empty(), "empty candidate pool");
    assert!(batch > 0, "batch must be positive");
    let mut chosen: Vec<usize> = Vec::with_capacity(batch);
    // Kernel rows k(candidate, training point) are memoized across
    // kriging-believer rounds: each hallucination adds exactly one
    // training point, so a candidate's row only grows by its evaluation
    // against that point instead of being rebuilt from scratch — the
    // prediction bits are unchanged.
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); pool.len()];
    for _ in 0..batch.min(pool.len()) {
        let mut best_idx = None;
        let mut best_score = f64::NEG_INFINITY;
        for (i, x) in pool.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            gp.extend_kernel_row(x, &mut rows[i]);
            let (mean, var) = gp.predict_prepared(x, &rows[i]);
            let score = match kind {
                AcquisitionKind::ExpectedImprovement => expected_improvement(mean, var, best),
                AcquisitionKind::LowerConfidenceBound { beta } => ucb(mean, var, beta),
            };
            if score > best_score {
                best_score = score;
                best_idx = Some(i);
            }
        }
        let idx = best_idx.expect("pool larger than chosen set");
        chosen.push(idx);
        let (mean, _) = gp.predict_prepared(&pool[idx], &rows[idx]);
        // A failed hallucination only degrades batch diversity; keep going.
        let _ = gp.hallucinate(pool[idx].clone(), mean);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((big_phi(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ei_zero_when_mean_far_above_best() {
        let ei = expected_improvement(10.0, 0.01, 0.0);
        assert!(ei < 1e-6);
    }

    #[test]
    fn ei_grows_with_variance() {
        let low = expected_improvement(1.0, 0.01, 1.0);
        let high = expected_improvement(1.0, 1.0, 1.0);
        assert!(high > low);
    }

    #[test]
    fn ei_deterministic_improvement_at_zero_variance() {
        assert!((expected_improvement(0.5, 0.0, 1.0) - 0.5).abs() < 1e-12);
        assert_eq!(expected_improvement(2.0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn ucb_prefers_uncertain_low_mean() {
        assert!(ucb(0.5, 1.0, 2.0) > ucb(0.5, 0.0, 2.0));
        assert!(ucb(0.1, 0.0, 2.0) > ucb(0.9, 0.0, 2.0));
    }

    #[test]
    fn batch_selection_is_diverse() {
        let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 / 5.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] - 0.5).powi(2)).collect();
        let mut gp = GaussianProcess::new(KernelKind::Matern52, 1);
        gp.fit(&xs, &ys, &mut StdRng::seed_from_u64(3)).unwrap();
        let pool: Vec<Vec<f64>> = (0..21).map(|i| vec![i as f64 / 20.0]).collect();
        let picks = select_batch(gp, &pool, 0.0, AcquisitionKind::ExpectedImprovement, 4);
        assert_eq!(picks.len(), 4);
        let mut uniq = picks.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "batch must not repeat candidates");
    }

    #[test]
    fn batch_capped_at_pool_size() {
        let gp = GaussianProcess::new(KernelKind::Matern52, 1);
        let pool = vec![vec![0.1], vec![0.9]];
        let picks = select_batch(
            gp,
            &pool,
            1.0,
            AcquisitionKind::LowerConfidenceBound { beta: 1.0 },
            5,
        );
        assert_eq!(picks.len(), 2);
    }
}
