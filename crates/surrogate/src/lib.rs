//! Multi-objective Bayesian-optimization machinery for UNICO.
//!
//! Everything here is model-agnostic: inputs are plain feature vectors in
//! `[0, 1]^d` and outputs are objective vectors to be *minimized*. The
//! crate provides, from scratch (no external linear-algebra dependency):
//!
//! * [`linalg`] — dense matrices, Cholesky factorization, triangular
//!   solves;
//! * [`GaussianProcess`] — a GP regressor with squared-exponential /
//!   Matérn-5/2 kernels and log-marginal-likelihood hyperparameter
//!   fitting;
//! * [`scalarize`] — ParEGO-style augmented-Tchebycheff scalarization of
//!   objective vectors (the paper's Eq. 1);
//! * acquisition functions (expected improvement, UCB) with
//!   kriging-believer batch selection;
//! * [`pareto`] — non-dominated sorting, Pareto-front maintenance and
//!   crowding distances;
//! * [`hypervolume`] — exact hypervolume in 2-D/3-D and a recursive
//!   WFG-style algorithm for higher dimensions, plus the hypervolume
//!   *difference* metric used by the paper's Fig. 7/10.
//!
//! # Example: one Bayesian-optimization step
//!
//! ```
//! use rand::SeedableRng;
//! use unico_surrogate::{GaussianProcess, KernelKind, expected_improvement};
//!
//! let xs = vec![vec![0.1], vec![0.5], vec![0.9]];
//! let ys = vec![1.0, 0.2, 0.8];
//! let mut gp = GaussianProcess::new(KernelKind::Matern52, 1);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! gp.fit(&xs, &ys, &mut rng).unwrap();
//! let (mean, var) = gp.predict(&[0.52]);
//! assert!(var >= 0.0);
//! let ei = expected_improvement(mean, var, 0.2);
//! assert!(ei >= 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod acquisition;
mod gp;
pub mod hypervolume;
mod kernel;
pub mod linalg;
pub mod pareto;
pub mod scalarize;

pub use acquisition::{expected_improvement, select_batch, ucb, AcquisitionKind};
pub use gp::{GaussianProcess, GpError};
pub use kernel::{Kernel, KernelKind};
