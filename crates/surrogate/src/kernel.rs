//! Covariance kernels for Gaussian-process regression.

use std::fmt;

/// Which kernel family a [`Kernel`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Squared-exponential (RBF) kernel — infinitely smooth.
    SquaredExponential,
    /// Matérn-5/2 kernel — twice differentiable, the usual BO default.
    Matern52,
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelKind::SquaredExponential => write!(f, "rbf"),
            KernelKind::Matern52 => write!(f, "matern52"),
        }
    }
}

/// A stationary covariance kernel with an isotropic length scale and a
/// signal variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kernel {
    kind: KernelKind,
    length_scale: f64,
    variance: f64,
}

impl Kernel {
    /// Creates a kernel.
    ///
    /// # Panics
    ///
    /// Panics if `length_scale` or `variance` is not strictly positive.
    pub fn new(kind: KernelKind, length_scale: f64, variance: f64) -> Self {
        assert!(
            length_scale > 0.0 && length_scale.is_finite(),
            "length scale must be positive"
        );
        assert!(
            variance > 0.0 && variance.is_finite(),
            "variance must be positive"
        );
        Kernel {
            kind,
            length_scale,
            variance,
        }
    }

    /// The kernel family.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// Length scale.
    pub fn length_scale(&self) -> f64 {
        self.length_scale
    }

    /// Signal variance (`k(x, x)`).
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Evaluates `k(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `a` and `b` have different lengths.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let d2: f64 = a
            .iter()
            .zip(b)
            .map(|(x, y)| {
                let d = (x - y) / self.length_scale;
                d * d
            })
            .sum();
        match self.kind {
            KernelKind::SquaredExponential => self.variance * (-0.5 * d2).exp(),
            KernelKind::Matern52 => {
                let d = d2.sqrt();
                let s5 = 5f64.sqrt() * d;
                self.variance * (1.0 + s5 + 5.0 * d2 / 3.0) * (-s5).exp()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_at_zero_distance_is_variance() {
        for kind in [KernelKind::SquaredExponential, KernelKind::Matern52] {
            let k = Kernel::new(kind, 0.5, 2.5);
            let x = vec![0.3, 0.7];
            assert!((k.eval(&x, &x) - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn kernel_decays_with_distance() {
        for kind in [KernelKind::SquaredExponential, KernelKind::Matern52] {
            let k = Kernel::new(kind, 1.0, 1.0);
            let near = k.eval(&[0.0], &[0.1]);
            let far = k.eval(&[0.0], &[2.0]);
            assert!(near > far);
            assert!(far > 0.0);
        }
    }

    #[test]
    fn kernel_is_symmetric() {
        let k = Kernel::new(KernelKind::Matern52, 0.7, 1.3);
        let a = vec![0.1, 0.9, 0.4];
        let b = vec![0.6, 0.2, 0.8];
        assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-14);
    }

    #[test]
    fn shorter_length_scale_decays_faster() {
        let tight = Kernel::new(KernelKind::SquaredExponential, 0.1, 1.0);
        let loose = Kernel::new(KernelKind::SquaredExponential, 2.0, 1.0);
        assert!(tight.eval(&[0.0], &[0.5]) < loose.eval(&[0.0], &[0.5]));
    }

    #[test]
    #[should_panic(expected = "length scale")]
    fn zero_length_scale_panics() {
        let _ = Kernel::new(KernelKind::Matern52, 0.0, 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(KernelKind::Matern52.to_string(), "matern52");
        assert_eq!(KernelKind::SquaredExponential.to_string(), "rbf");
    }
}
