//! ParEGO-style scalarization of objective vectors (the paper's Eq. 1).

use rand::Rng;

/// Augmented-Tchebycheff scalarization
/// `v = max_j(w_j · y_j) + ρ · Σ_j w_j · y_j` (the paper's Eq. 1 with
/// `ρ = 0.2` by default).
///
/// Objectives should be normalized to comparable scales before calling;
/// weights must lie on the probability simplex.
///
/// # Panics
///
/// Panics if `objectives` and `weights` differ in length or are empty.
pub fn parego(objectives: &[f64], weights: &[f64], rho: f64) -> f64 {
    assert_eq!(
        objectives.len(),
        weights.len(),
        "objective/weight length mismatch"
    );
    assert!(!objectives.is_empty(), "empty objective vector");
    let weighted: Vec<f64> = objectives.iter().zip(weights).map(|(y, w)| y * w).collect();
    let max = weighted.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let sum: f64 = weighted.iter().sum();
    max + rho * sum
}

/// The default augmentation coefficient used by UNICO.
pub const DEFAULT_RHO: f64 = 0.2;

/// Samples a uniformly random weight vector on the probability simplex.
pub fn sample_simplex<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> Vec<f64> {
    assert!(dim > 0, "simplex dimension must be positive");
    // Exponential spacing trick.
    let mut w: Vec<f64> = (0..dim)
        .map(|_| -(rng.gen_range(1e-12..1.0f64)).ln())
        .collect();
    let s: f64 = w.iter().sum();
    for v in &mut w {
        *v /= s;
    }
    w
}

/// Min-max normalizes each objective column of `rows` to `[0, 1]`.
/// Columns with zero range map to `0`.
pub fn normalize_columns(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let Some(first) = rows.first() else {
        return Vec::new();
    };
    let d = first.len();
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for r in rows {
        assert_eq!(r.len(), d, "ragged objective rows");
        for j in 0..d {
            lo[j] = lo[j].min(r[j]);
            hi[j] = hi[j].max(r[j]);
        }
    }
    rows.iter()
        .map(|r| {
            (0..d)
                .map(|j| {
                    let range = hi[j] - lo[j];
                    if range > 0.0 {
                        (r[j] - lo[j]) / range
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parego_prefers_dominating_point() {
        let w = vec![0.25; 4];
        let good = parego(&[0.1, 0.1, 0.1, 0.1], &w, DEFAULT_RHO);
        let bad = parego(&[0.9, 0.9, 0.9, 0.9], &w, DEFAULT_RHO);
        assert!(good < bad);
    }

    #[test]
    fn parego_matches_hand_computation() {
        let v = parego(&[1.0, 2.0], &[0.5, 0.5], 0.2);
        // max(0.5, 1.0) + 0.2*(0.5+1.0) = 1.0 + 0.3
        assert!((v - 1.3).abs() < 1e-12);
    }

    #[test]
    fn parego_rho_zero_is_pure_tchebycheff() {
        let v = parego(&[3.0, 1.0], &[0.5, 0.5], 0.0);
        assert!((v - 1.5).abs() < 1e-12);
    }

    #[test]
    fn simplex_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        for dim in 1..=6 {
            let w = sample_simplex(&mut rng, dim);
            assert_eq!(w.len(), dim);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(w.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn normalization_maps_to_unit_box() {
        let rows = vec![vec![10.0, 1.0], vec![20.0, 3.0], vec![15.0, 2.0]];
        let n = normalize_columns(&rows);
        assert_eq!(n[0], vec![0.0, 0.0]);
        assert_eq!(n[1], vec![1.0, 1.0]);
        assert_eq!(n[2], vec![0.5, 0.5]);
    }

    #[test]
    fn degenerate_column_is_zero() {
        let rows = vec![vec![5.0, 1.0], vec![5.0, 2.0]];
        let n = normalize_columns(&rows);
        assert_eq!(n[0][0], 0.0);
        assert_eq!(n[1][0], 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn length_mismatch_panics() {
        let _ = parego(&[1.0], &[0.5, 0.5], 0.2);
    }
}
