//! Property-based tests of the surrogate stack: GP posterior sanity,
//! scalarization monotonicity, and hypervolume cross-checked against a
//! Monte-Carlo estimator.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use unico_surrogate::hypervolume::hypervolume;
use unico_surrogate::pareto::dominates;
use unico_surrogate::scalarize::{normalize_columns, parego, sample_simplex};
use unico_surrogate::{GaussianProcess, KernelKind};

fn arb_points(max: usize) -> impl Strategy<Value = Vec<[f64; 3]>> {
    proptest::collection::vec(proptest::array::uniform3(0.0f64..1.0), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hypervolume agrees with a deterministic Monte-Carlo estimate.
    #[test]
    fn hypervolume_matches_monte_carlo(pts in arb_points(12)) {
        let cloud: Vec<Vec<f64>> = pts.iter().map(|p| p.to_vec()).collect();
        let reference = vec![1.0, 1.0, 1.0];
        let exact = hypervolume(&cloud, &reference);

        // Low-discrepancy grid sampling of the unit cube.
        const G: usize = 24;
        let mut hits = 0usize;
        for i in 0..G {
            for j in 0..G {
                for k in 0..G {
                    let q = [
                        (i as f64 + 0.5) / G as f64,
                        (j as f64 + 0.5) / G as f64,
                        (k as f64 + 0.5) / G as f64,
                    ];
                    if cloud.iter().any(|p| p.iter().zip(&q).all(|(a, b)| a <= b)) {
                        hits += 1;
                    }
                }
            }
        }
        let mc = hits as f64 / (G * G * G) as f64;
        prop_assert!((exact - mc).abs() < 0.05, "exact {exact} vs mc {mc}");
    }

    /// ParEGO never prefers a dominated point (positive weights).
    #[test]
    fn parego_respects_dominance(
        a in proptest::array::uniform4(0.0f64..1.0),
        shift in proptest::array::uniform4(0.0f64..0.5),
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = sample_simplex(&mut rng, 4);
        let b: Vec<f64> = a.iter().zip(&shift).map(|(x, s)| x + s).collect();
        let va = parego(&a, &w, 0.2);
        let vb = parego(&b, &w, 0.2);
        prop_assert!(va <= vb + 1e-12, "dominating point must score ≤");
    }

    /// Column normalization is idempotent on already-normalized data and
    /// preserves dominance relations.
    #[test]
    fn normalization_preserves_dominance(pts in arb_points(10)) {
        let rows: Vec<Vec<f64>> = pts.iter().map(|p| p.to_vec()).collect();
        let norm = normalize_columns(&rows);
        for i in 0..rows.len() {
            for j in 0..rows.len() {
                if dominates(&rows[i], &rows[j]) {
                    // Normalized i must not be dominated by normalized j.
                    prop_assert!(!dominates(&norm[j], &norm[i]));
                }
            }
        }
    }

    /// GP posterior: non-negative variance everywhere; approximate
    /// interpolation at training points for smooth targets.
    #[test]
    fn gp_posterior_sanity(seed in 0u64..50, n in 4usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (3.0 * x[0]).cos()).collect();
        let mut gp = GaussianProcess::new(KernelKind::Matern52, 1);
        gp.fit(&xs, &ys, &mut rng).expect("fit");
        for q in 0..=20 {
            let x = q as f64 / 20.0;
            let (m, v) = gp.predict(&[x]);
            prop_assert!(v >= 0.0, "variance must be non-negative");
            prop_assert!(m.is_finite());
        }
        for (x, y) in xs.iter().zip(&ys) {
            let (m, _) = gp.predict(x);
            prop_assert!((m - y).abs() < 0.35, "poor interpolation: {m} vs {y}");
        }
    }
}
