//! Property tests for the incremental Cholesky machinery behind the
//! batched surrogate path: rank-1 up/downdates against from-scratch
//! refactorization, round-tripping, bitwise row appends, and
//! incremental-vs-scratch GP posteriors.
//!
//! # Tolerances
//!
//! Rank-1 up/downdates use a different (hyperbolic-rotation) operation
//! order than a from-scratch factorization, so agreement is only up to
//! floating-point reassociation: we accept an absolute error of `1e-8`
//! on factor entries of well-conditioned matrices (`G Gᵀ + I` with
//! entries in `[-1, 1]`, n ≤ 8), orders of magnitude tighter than any
//! signal in the surrogate. Row *appends* reuse the scratch operation
//! order exactly and are asserted **bitwise**, which is what the
//! run-level determinism machinery relies on.

use proptest::prelude::*;

use unico_surrogate::linalg::Matrix;
use unico_surrogate::{GaussianProcess, KernelKind};

const TOL: f64 = 1e-8;

/// A well-conditioned SPD matrix `G Gᵀ + I` built from `n²` entries in
/// `[-1, 1]`.
fn spd_from(entries: &[f64], n: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    let mut acc = 0.0;
                    for k in 0..n {
                        acc += entries[i * n + k] * entries[j * n + k];
                    }
                    if i == j {
                        acc += 1.0;
                    }
                    acc
                })
                .collect()
        })
        .collect();
    Matrix::from_rows(&rows)
}

fn arb_spd(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, n * n..n * n + 1).prop_map(move |e| spd_from(&e, n))
}

fn max_factor_diff(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.rows(), b.rows());
    let mut worst = 0.0f64;
    for i in 0..a.rows() {
        for j in 0..=i {
            worst = worst.max((a[(i, j)] - b[(i, j)]).abs());
        }
    }
    worst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rank-1 update of `chol(A)` agrees with `chol(A + v vᵀ)` within
    /// the documented tolerance.
    #[test]
    fn rank1_update_matches_scratch(
        entries in proptest::collection::vec(-1.0f64..1.0, 25..26),
        v in proptest::collection::vec(-1.0f64..1.0, 5..6),
    ) {
        let a = spd_from(&entries, 5);
        let mut l = a.cholesky().expect("SPD by construction");
        l.cholesky_rank1_update(&v);

        let updated = Matrix::from_rows(
            &(0..5)
                .map(|i| (0..5).map(|j| a[(i, j)] + v[i] * v[j]).collect())
                .collect::<Vec<_>>(),
        );
        let scratch = updated.cholesky().expect("update keeps SPD");
        prop_assert!(max_factor_diff(&l, &scratch) < TOL);
    }

    /// Rank-1 downdate of `chol(A + v vᵀ)` recovers `chol(A)` within
    /// tolerance (the downdate target is SPD by construction).
    #[test]
    fn rank1_downdate_matches_scratch(
        entries in proptest::collection::vec(-1.0f64..1.0, 25..26),
        v in proptest::collection::vec(-1.0f64..1.0, 5..6),
    ) {
        let a = spd_from(&entries, 5);
        let updated = Matrix::from_rows(
            &(0..5)
                .map(|i| (0..5).map(|j| a[(i, j)] + v[i] * v[j]).collect())
                .collect::<Vec<_>>(),
        );
        let mut l = updated.cholesky().expect("SPD by construction");
        l.cholesky_rank1_downdate(&v).expect("downdate target is SPD");
        let scratch = a.cholesky().expect("SPD by construction");
        prop_assert!(max_factor_diff(&l, &scratch) < TOL);
    }

    /// Update followed by downdate with the same vector round-trips to
    /// the original factor.
    #[test]
    fn update_then_downdate_round_trips(
        a in arb_spd(6),
        v in proptest::collection::vec(-1.0f64..1.0, 6..7),
    ) {
        let reference = a.cholesky().expect("SPD by construction");
        let mut l = reference.clone();
        l.cholesky_rank1_update(&v);
        l.cholesky_rank1_downdate(&v).expect("round trip stays SPD");
        prop_assert!(max_factor_diff(&l, &reference) < TOL);
    }

    /// Appending rows one at a time reproduces the from-scratch factor
    /// of the full matrix **bitwise** — the invariant the incremental
    /// GP and the golden-trace determinism tests lean on.
    #[test]
    fn append_rows_bitwise_equal_scratch(a in arb_spd(8)) {
        let scratch = a.cholesky().expect("SPD by construction");
        // Start from the leading 3×3 block and append the rest.
        let head = Matrix::from_rows(
            &(0..3)
                .map(|i| (0..3).map(|j| a[(i, j)]).collect())
                .collect::<Vec<_>>(),
        );
        let mut grown = head.cholesky().expect("leading block is SPD");
        for m in 3..8 {
            let col: Vec<f64> = (0..m).map(|j| a[(m, j)]).collect();
            grown
                .cholesky_append_row(&col, a[(m, m)])
                .expect("extension stays SPD");
        }
        prop_assert_eq!(grown.rows(), 8);
        for i in 0..8 {
            for j in 0..=i {
                prop_assert_eq!(
                    grown[(i, j)].to_bits(),
                    scratch[(i, j)].to_bits(),
                    "factor entry ({}, {}) diverged", i, j
                );
            }
        }
    }

    /// An incrementally extended GP produces the same posterior mean and
    /// variance as a from-scratch fit at the same hyperparameters — and
    /// since row appends are bitwise, so is the posterior.
    #[test]
    fn incremental_gp_posterior_matches_scratch(
        seed_xs in proptest::collection::vec(0.0f64..1.0, 4..10),
        extra_xs in proptest::collection::vec(0.0f64..1.0, 1..4),
        queries in proptest::collection::vec(0.0f64..1.0, 1..6),
        ls in 0.05f64..1.5,
        var in 0.2f64..3.0,
    ) {
        let f = |x: f64| (4.0 * x).sin() + 0.3 * x;
        let xs: Vec<Vec<f64>> = seed_xs.iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> = seed_xs.iter().map(|&x| f(x)).collect();
        let full_xs: Vec<Vec<f64>> = xs
            .iter()
            .cloned()
            .chain(extra_xs.iter().map(|&x| vec![x]))
            .collect();
        let full_ys: Vec<f64> = ys
            .iter()
            .copied()
            .chain(extra_xs.iter().map(|&x| f(x)))
            .collect();

        let mut inc = GaussianProcess::new(KernelKind::Matern52, 1);
        inc.fit_with_hypers(&xs, &ys, ls, var, 1e-4).expect("seed fit");
        inc.fit_incremental(&full_xs, &full_ys).expect("incremental fit");

        let mut scratch = GaussianProcess::new(KernelKind::Matern52, 1);
        scratch
            .fit_with_hypers(&full_xs, &full_ys, ls, var, 1e-4)
            .expect("scratch fit");

        for &q in &queries {
            let (mi, vi) = inc.predict(&[q]);
            let (ms, vs) = scratch.predict(&[q]);
            prop_assert_eq!(mi.to_bits(), ms.to_bits(), "posterior mean at {}", q);
            prop_assert_eq!(vi.to_bits(), vs.to_bits(), "posterior variance at {}", q);
        }
    }
}
