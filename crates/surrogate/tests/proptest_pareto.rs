//! Property tests of the incrementally maintained [`ParetoFront`]: the
//! archive invariants the checkpoint/resume machinery depends on. The
//! front must stay mutually non-dominated under arbitrary insertion
//! streams, its hypervolume must grow monotonically as points are
//! offered, and the *set* of points it converges to must not depend on
//! the order the stream arrived in.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use unico_surrogate::hypervolume::hypervolume;
use unico_surrogate::pareto::{dominates, non_dominated_indices, ParetoFront};

fn arb_cloud(max: usize) -> impl Strategy<Value = Vec<[f64; 3]>> {
    proptest::collection::vec(proptest::array::uniform3(0.0f64..1.0), 1..max)
}

/// The front's objective vectors as an order-insensitive, bit-exact set.
fn front_set(front: &ParetoFront<usize>) -> Vec<Vec<u64>> {
    let mut set: Vec<Vec<u64>> = front
        .objectives()
        .iter()
        .map(|y| y.iter().map(|v| v.to_bits()).collect())
        .collect();
    set.sort();
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any stream of offers the archive is mutually non-dominated,
    /// duplicate-free, and exactly the non-dominated subset of the
    /// offered cloud.
    #[test]
    fn front_stays_non_dominated_under_arbitrary_inserts(pts in arb_cloud(24)) {
        let mut front = ParetoFront::new();
        for (i, p) in pts.iter().enumerate() {
            front.offer(p.to_vec(), i);
        }
        let members = front.objectives();
        for (i, a) in members.iter().enumerate() {
            for (j, b) in members.iter().enumerate() {
                if i != j {
                    prop_assert!(!dominates(a, b), "front member {a:?} dominates {b:?}");
                    prop_assert!(a != b, "duplicate objective vector on the front");
                }
            }
        }
        // Oracle: batch non-dominated filtering of the whole cloud
        // (deduplicated) must agree with the incremental archive.
        let cloud: Vec<Vec<f64>> = pts.iter().map(|p| p.to_vec()).collect();
        let mut expect: Vec<Vec<u64>> = non_dominated_indices(&cloud)
            .into_iter()
            .map(|i| cloud[i].iter().map(|v| v.to_bits()).collect())
            .collect();
        expect.sort();
        prop_assert_eq!(front_set(&front), expect);
    }

    /// Offering one more point never shrinks the dominated hypervolume,
    /// and the maintained front preserves the whole cloud's hypervolume.
    #[test]
    fn hypervolume_is_monotone_under_insertion(pts in arb_cloud(16)) {
        let reference = vec![1.0, 1.0, 1.0];
        let mut front = ParetoFront::new();
        let mut last = 0.0f64;
        for (i, p) in pts.iter().enumerate() {
            front.offer(p.to_vec(), i);
            let hv = hypervolume(&front.objectives(), &reference);
            prop_assert!(
                hv >= last - 1e-12,
                "hypervolume shrank after an insert: {last} -> {hv}"
            );
            last = hv;
        }
        // Evicted (dominated) points never carried exclusive volume.
        let cloud: Vec<Vec<f64>> = pts.iter().map(|p| p.to_vec()).collect();
        let full = hypervolume(&cloud, &reference);
        prop_assert!((last - full).abs() < 1e-12, "front lost volume: {last} vs {full}");
    }

    /// The converged front is a *set* invariant: any permutation of the
    /// insertion stream yields bit-identical membership.
    #[test]
    fn front_membership_is_insertion_order_independent(
        original in arb_cloud(20),
        seed in 0u64..1_000,
    ) {
        // Seed-driven Fisher–Yates permutation of the stream.
        let mut shuffled = original.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..=i);
            shuffled.swap(i, j);
        }
        let mut a = ParetoFront::new();
        for (i, p) in original.iter().enumerate() {
            a.offer(p.to_vec(), i);
        }
        let mut b = ParetoFront::new();
        for (i, p) in shuffled.iter().enumerate() {
            b.offer(p.to_vec(), i);
        }
        prop_assert_eq!(front_set(&a), front_set(&b));
    }
}
