//! A small hand-rolled reverse-mode automatic-differentiation tape over
//! `f64` scalars — no external dependencies, mirroring the vendored-shim
//! approach of the offline `rand`/`proptest` packages.
//!
//! The design is the classic Wengert list: a [`Tape`] records every
//! primitive operation as a node carrying (up to two) parent indices and
//! the local partial derivatives evaluated at the forward values.
//! [`Var`] is a `Copy` handle into the tape; arithmetic on `Var`s pushes
//! nodes and [`Var::backward`] runs one reverse sweep, producing the
//! gradient of that variable with respect to every tape entry.
//!
//! Two deliberate non-smooth conventions, relied on by the differentiable
//! mapping search and documented for the gradient-check suite:
//!
//! * **`min`/`max` ties** route the gradient to the *first* operand, so
//!   `a.vmax(b)` with `a == b` has `d/da = 1`, `d/db = 0`. Finite
//!   differences disagree at the tie itself — gradient checks exclude
//!   points within a margin of a tie.
//! * **`ceil_ste`** is a straight-through estimator: the forward value is
//!   the true `f64::ceil`, the backward partial is `1.0`. The forward map
//!   is piecewise constant, so a finite-difference oracle sees a zero (or
//!   exploding, at a jump) derivative — `ceil_ste` is therefore *excluded*
//!   from finite-difference agreement by design and pinned by its own
//!   op-level test instead. See `DESIGN.md` ("Gradient search") for why
//!   the relaxed cost model keeps division smooth and reserves `ceil_ste`
//!   for consumers that want discretization in the forward pass only.
//!
//! The [`Scalar`] trait abstracts the primitive set over both plain `f64`
//! and [`Var`]; generic numeric kernels written against it (like the
//! analytical model's `cost_core`) execute the *identical* sequence of
//! `f64` operations in both instantiations, which is what keeps the
//! scalar evaluation path bit-identical after the refactor.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::cell::RefCell;

/// One recorded operation: up to two parents with the local partial
/// derivative of the node's output with respect to each.
#[derive(Debug, Clone, Copy)]
struct Node {
    parents: [usize; 2],
    partials: [f64; 2],
}

/// A Wengert-list tape of recorded operations.
///
/// Create leaves with [`Tape::var`], combine them with `Var` arithmetic,
/// then call [`Var::backward`] on the scalar output.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of nodes recorded so far (leaves included).
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Records a new leaf variable with value `v`.
    pub fn var(&self, v: f64) -> Var<'_> {
        let idx = self.push(Node {
            parents: [0, 0],
            partials: [0.0, 0.0],
        });
        Var {
            tape: self,
            idx,
            val: v,
        }
    }

    fn push(&self, node: Node) -> usize {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(node);
        nodes.len() - 1
    }
}

/// A differentiable scalar: a value plus its position on a [`Tape`].
///
/// `Var` is `Copy`; all arithmetic borrows the tape immutably and appends
/// nodes through interior mutability.
#[derive(Debug, Clone, Copy)]
pub struct Var<'t> {
    tape: &'t Tape,
    idx: usize,
    val: f64,
}

impl<'t> Var<'t> {
    /// The forward value.
    pub fn value(self) -> f64 {
        self.val
    }

    /// The node index on the tape (stable for the tape's lifetime).
    pub fn index(self) -> usize {
        self.idx
    }

    /// The tape this variable is recorded on.
    pub fn tape(self) -> &'t Tape {
        self.tape
    }

    fn unary(self, val: f64, partial: f64) -> Var<'t> {
        let idx = self.tape.push(Node {
            parents: [self.idx, self.idx],
            partials: [partial, 0.0],
        });
        Var {
            tape: self.tape,
            idx,
            val,
        }
    }

    fn binary(self, other: Var<'t>, val: f64, da: f64, db: f64) -> Var<'t> {
        let idx = self.tape.push(Node {
            parents: [self.idx, other.idx],
            partials: [da, db],
        });
        Var {
            tape: self.tape,
            idx,
            val,
        }
    }

    /// Natural logarithm.
    pub fn ln(self) -> Var<'t> {
        self.unary(self.val.ln(), 1.0 / self.val)
    }

    /// Natural exponential.
    pub fn exp(self) -> Var<'t> {
        let v = self.val.exp();
        self.unary(v, v)
    }

    /// Integer power (`f64::powi` forward, `n·x^(n-1)` backward).
    pub fn powi(self, n: i32) -> Var<'t> {
        self.unary(self.val.powi(n), f64::from(n) * self.val.powi(n - 1))
    }

    /// Element maximum; at a tie the gradient flows to `self`.
    pub fn vmax(self, other: Var<'t>) -> Var<'t> {
        if self.val >= other.val {
            self.binary(other, self.val.max(other.val), 1.0, 0.0)
        } else {
            self.binary(other, self.val.max(other.val), 0.0, 1.0)
        }
    }

    /// Element minimum; at a tie the gradient flows to `self`.
    pub fn vmin(self, other: Var<'t>) -> Var<'t> {
        if self.val <= other.val {
            self.binary(other, self.val.min(other.val), 1.0, 0.0)
        } else {
            self.binary(other, self.val.min(other.val), 0.0, 1.0)
        }
    }

    /// Ceiling with a straight-through estimator: forward `f64::ceil`,
    /// backward identity. Excluded from finite-difference checks by
    /// design (the forward map is piecewise constant).
    pub fn ceil_ste(self) -> Var<'t> {
        self.unary(self.val.ceil(), 1.0)
    }

    /// Reverse sweep: the gradient of `self` with respect to every node
    /// recorded so far.
    pub fn backward(self) -> Grads {
        let nodes = self.tape.nodes.borrow();
        let mut adj = vec![0.0f64; nodes.len()];
        adj[self.idx] = 1.0;
        for i in (0..=self.idx).rev() {
            let a = adj[i];
            if a == 0.0 {
                continue;
            }
            let node = nodes[i];
            // Leaves are self-parents with zero partials: no-ops here.
            for p in 0..2 {
                let contribution = a * node.partials[p];
                if contribution != 0.0 && node.parents[p] != i {
                    adj[node.parents[p]] += contribution;
                }
            }
        }
        Grads { adj }
    }
}

/// Adjoints produced by [`Var::backward`], indexed by tape position.
#[derive(Debug, Clone)]
pub struct Grads {
    adj: Vec<f64>,
}

impl Grads {
    /// The gradient with respect to `v` (zero if `v` does not influence
    /// the output).
    pub fn wrt(&self, v: Var<'_>) -> f64 {
        self.adj.get(v.idx).copied().unwrap_or(0.0)
    }
}

impl<'t> std::ops::Add for Var<'t> {
    type Output = Var<'t>;
    fn add(self, o: Var<'t>) -> Var<'t> {
        self.binary(o, self.val + o.val, 1.0, 1.0)
    }
}

impl<'t> std::ops::Sub for Var<'t> {
    type Output = Var<'t>;
    fn sub(self, o: Var<'t>) -> Var<'t> {
        self.binary(o, self.val - o.val, 1.0, -1.0)
    }
}

impl<'t> std::ops::Mul for Var<'t> {
    type Output = Var<'t>;
    fn mul(self, o: Var<'t>) -> Var<'t> {
        self.binary(o, self.val * o.val, o.val, self.val)
    }
}

impl<'t> std::ops::Div for Var<'t> {
    type Output = Var<'t>;
    fn div(self, o: Var<'t>) -> Var<'t> {
        self.binary(
            o,
            self.val / o.val,
            1.0 / o.val,
            -self.val / (o.val * o.val),
        )
    }
}

impl<'t> std::ops::Neg for Var<'t> {
    type Output = Var<'t>;
    fn neg(self) -> Var<'t> {
        self.unary(-self.val, -1.0)
    }
}

/// The primitive-operation set shared by `f64` and [`Var`].
///
/// Generic numeric code written against `Scalar` performs the *same*
/// `f64` operations in the same order under both instantiations: the
/// `f64` impl is a zero-cost passthrough, and the `Var` impl additionally
/// records each operation on the tape. Constants enter through
/// [`Scalar::lit`], which needs an existing scalar to supply the tape
/// context (for `f64` it is the identity on the literal).
pub trait Scalar: Copy {
    /// The forward value.
    fn value(self) -> f64;
    /// A constant in the same differentiation context as `self`
    /// (gradients never flow into literals).
    fn lit(self, v: f64) -> Self;
    /// Addition.
    fn add(self, o: Self) -> Self;
    /// Subtraction.
    fn sub(self, o: Self) -> Self;
    /// Multiplication.
    fn mul(self, o: Self) -> Self;
    /// Division.
    fn div(self, o: Self) -> Self;
    /// Negation.
    fn neg(self) -> Self;
    /// Element maximum (tie: gradient to `self`).
    fn vmax(self, o: Self) -> Self;
    /// Element minimum (tie: gradient to `self`).
    fn vmin(self, o: Self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Integer power.
    fn powi(self, n: i32) -> Self;
    /// Ceiling with straight-through gradient (identity backward).
    fn ceil_ste(self) -> Self;
}

impl Scalar for f64 {
    fn value(self) -> f64 {
        self
    }
    fn lit(self, v: f64) -> Self {
        v
    }
    fn add(self, o: Self) -> Self {
        self + o
    }
    fn sub(self, o: Self) -> Self {
        self - o
    }
    fn mul(self, o: Self) -> Self {
        self * o
    }
    fn div(self, o: Self) -> Self {
        self / o
    }
    fn neg(self) -> Self {
        -self
    }
    fn vmax(self, o: Self) -> Self {
        self.max(o)
    }
    fn vmin(self, o: Self) -> Self {
        self.min(o)
    }
    fn ln(self) -> Self {
        f64::ln(self)
    }
    fn exp(self) -> Self {
        f64::exp(self)
    }
    fn powi(self, n: i32) -> Self {
        f64::powi(self, n)
    }
    fn ceil_ste(self) -> Self {
        self.ceil()
    }
}

impl<'t> Scalar for Var<'t> {
    fn value(self) -> f64 {
        Var::value(self)
    }
    fn lit(self, v: f64) -> Self {
        self.tape.var(v)
    }
    fn add(self, o: Self) -> Self {
        self + o
    }
    fn sub(self, o: Self) -> Self {
        self - o
    }
    fn mul(self, o: Self) -> Self {
        self * o
    }
    fn div(self, o: Self) -> Self {
        self / o
    }
    fn neg(self) -> Self {
        -self
    }
    fn vmax(self, o: Self) -> Self {
        Var::vmax(self, o)
    }
    fn vmin(self, o: Self) -> Self {
        Var::vmin(self, o)
    }
    fn ln(self) -> Self {
        Var::ln(self)
    }
    fn exp(self) -> Self {
        Var::exp(self)
    }
    fn powi(self, n: i32) -> Self {
        Var::powi(self, n)
    }
    fn ceil_ste(self) -> Self {
        Var::ceil_ste(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_rule() {
        let t = Tape::new();
        let x = t.var(3.0);
        let y = t.var(4.0);
        let z = x * y + x;
        assert_eq!(z.value(), 15.0);
        let g = z.backward();
        assert_eq!(g.wrt(x), 5.0); // y + 1
        assert_eq!(g.wrt(y), 3.0); // x
    }

    #[test]
    fn quotient_and_chain() {
        let t = Tape::new();
        let x = t.var(2.0);
        let y = t.var(5.0);
        // d/dx (x^2 / y) = 2x/y; d/dy = -x^2/y^2
        let z = x.powi(2) / y;
        let g = z.backward();
        assert!((g.wrt(x) - 0.8).abs() < 1e-12);
        assert!((g.wrt(y) + 4.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn log_exp_roundtrip_gradient() {
        let t = Tape::new();
        let x = t.var(1.7);
        let z = x.ln().exp(); // identity
        assert!((z.value() - 1.7).abs() < 1e-12);
        let g = z.backward();
        assert!((g.wrt(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_min_pick_branch() {
        let t = Tape::new();
        let a = t.var(2.0);
        let b = t.var(3.0);
        let g = a.vmax(b).backward();
        assert_eq!(g.wrt(a), 0.0);
        assert_eq!(g.wrt(b), 1.0);
        let g = a.vmin(b).backward();
        assert_eq!(g.wrt(a), 1.0);
        assert_eq!(g.wrt(b), 0.0);
    }

    #[test]
    fn tie_routes_gradient_to_first_operand() {
        let t = Tape::new();
        let a = t.var(2.0);
        let b = t.var(2.0);
        let g = a.vmax(b).backward();
        assert_eq!(g.wrt(a), 1.0);
        assert_eq!(g.wrt(b), 0.0);
    }

    #[test]
    fn ceil_ste_forward_discrete_backward_identity() {
        let t = Tape::new();
        let x = t.var(2.3);
        let z = x.ceil_ste() * x;
        assert_eq!(z.value(), 3.0 * 2.3);
        let g = z.backward();
        // STE: d(ceil(x)*x)/dx = 1*x + ceil(x) under the estimator.
        assert!((g.wrt(x) - (2.3 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn fanout_accumulates() {
        let t = Tape::new();
        let x = t.var(3.0);
        let z = x * x + x * x; // 2x^2, dz/dx = 4x
        let g = z.backward();
        assert_eq!(g.wrt(x), 12.0);
    }

    #[test]
    fn generic_kernel_identical_under_both_scalars() {
        fn kernel<S: Scalar>(x: S, y: S) -> S {
            let c = x.lit(2.5);
            x.mul(y).add(c).vmax(x.powi(2)).div(y.exp().add(x.lit(1.0)))
        }
        let xf = 1.3f64;
        let yf = 0.7f64;
        let plain = kernel(xf, yf);
        let t = Tape::new();
        let xv = t.var(xf);
        let yv = t.var(yf);
        let taped = kernel(xv, yv);
        // Same op sequence, same f64 primitives: bit-identical forward.
        assert_eq!(plain.to_bits(), taped.value().to_bits());
    }

    #[test]
    fn unused_var_has_zero_gradient() {
        let t = Tape::new();
        let x = t.var(1.0);
        let y = t.var(2.0);
        let z = x + x;
        let g = z.backward();
        assert_eq!(g.wrt(y), 0.0);
        assert_eq!(g.wrt(x), 2.0);
    }
}
