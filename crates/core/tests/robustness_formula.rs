//! Pinning tests for the paper's robustness metric `R = Δ·(1 + F(θ))`
//! (§3.4): exact values at the geometry's edge cases — θ = 0 (pure
//! power variation, penalty 2Δ), θ = π/2 (pure latency variation,
//! penalty Δ), θ = π (power increase toward the optimum, penalty 3Δ),
//! Δ = 0 (perfect robustness), and colinear 45° displacements — plus
//! the scale-freeness and ensemble-averaging contracts the outer loop
//! relies on.

use std::f64::consts::PI;

use unico_core::robustness::{
    aggregate_robustness, f_theta, robustness_ensemble, robustness_from_points,
    robustness_of_history,
};
use unico_mapping::{MappingOutcome, SearchHistory};

const TOL: f64 = 1e-12;

#[test]
fn f_theta_exact_at_anchors() {
    // F(θ) = 6/π²·θ² − 5/π·θ + 1.
    assert!((f_theta(0.0) - 1.0).abs() < TOL, "F(0) must be exactly 1");
    assert!(f_theta(PI / 2.0).abs() < TOL, "F(π/2) must be exactly 0");
    assert!((f_theta(PI) - 2.0).abs() < TOL, "F(π) must be exactly 2");
    // The quarter-circle value is rational: F(π/4) = 6/16 − 5/4 + 1.
    assert!((f_theta(PI / 4.0) - 0.125).abs() < TOL);
    // 3π/4 mirrors into the penalized half: F(3π/4) = 27/8 − 15/4 + 1.
    assert!((f_theta(3.0 * PI / 4.0) - 0.625).abs() < TOL);
}

#[test]
fn f_theta_clamps_outside_the_half_circle() {
    assert_eq!(f_theta(-1.0), f_theta(0.0), "θ < 0 clamps to 0");
    assert_eq!(f_theta(4.0), f_theta(PI), "θ > π clamps to π");
    assert_eq!(f_theta(f64::NEG_INFINITY), f_theta(0.0));
    assert_eq!(f_theta(f64::INFINITY), f_theta(PI));
}

#[test]
fn zero_displacement_is_exactly_zero() {
    // Δ = 0: the sub-optimal point *is* the optimum.
    assert_eq!(robustness_from_points(1.0, 1.0, 1.0, 1.0), 0.0);
    assert_eq!(robustness_from_points(3.5, 250.0, 3.5, 250.0), 0.0);
    // Sub-femto displacements collapse to 0 rather than amplifying
    // rounding noise through the angle computation.
    assert_eq!(robustness_from_points(1.0, 1.0, 1.0 + 1e-16, 1.0), 0.0);
}

#[test]
fn pure_latency_variation_is_theta_half_pi() {
    // Only latency degrades: θ = π/2, F = 0, so R = Δ exactly.
    for d in [0.01, 0.1, 0.5, 2.0] {
        let r = robustness_from_points(2.0, 300.0, 2.0 * (1.0 + d), 300.0);
        assert!((r - d).abs() < 1e-9, "R must equal Δ = {d}, got {r}");
    }
}

#[test]
fn pure_power_variation_above_optimum_is_theta_zero() {
    // Sub-optimal at identical latency but higher power: the
    // displacement points straight up the power axis, θ = 0, F = 1,
    // R = 2Δ.
    let r = robustness_from_points(1.0, 100.0, 1.0, 120.0);
    assert!((r - 2.0 * 0.2).abs() < 1e-9, "R must be 2Δ, got {r}");
}

#[test]
fn pure_power_variation_below_optimum_is_theta_pi() {
    // Sub-optimal at identical latency but *lower* power — reaching the
    // optimum increases power, the paper's most-penalized direction:
    // θ = π, F = 2, R = 3Δ.
    let r = robustness_from_points(1.0, 100.0, 1.0, 80.0);
    assert!((r - 3.0 * 0.2).abs() < 1e-9, "R must be 3Δ, got {r}");
}

#[test]
fn colinear_diagonal_displacement_pins_quarter_angle() {
    // Equal relative degradation in latency and power: the displacement
    // is colinear with the 45° diagonal, θ = π/4, Δ = d√2 and
    // R = Δ·(1 + 1/8).
    for d in [0.05, 0.2, 1.0] {
        let r = robustness_from_points(1.0, 100.0, 1.0 + d, 100.0 * (1.0 + d));
        let delta = d * std::f64::consts::SQRT_2;
        assert!((r - delta * 1.125).abs() < 1e-9, "d={d}: got {r}");
    }
    // The anti-diagonal (latency worse, power better by the same
    // relative amount) lands at θ = 3π/4: R = Δ·1.625.
    let d = 0.2;
    let r = robustness_from_points(1.0, 100.0, 1.0 + d, 100.0 * (1.0 - d));
    let delta = d * std::f64::consts::SQRT_2;
    assert!((r - delta * 1.625).abs() < 1e-9, "anti-diagonal: got {r}");
}

#[test]
fn metric_is_scale_free() {
    // Normalizing by the optimum makes R invariant under independent
    // rescaling of the latency and power axes (seconds→ms, mW→W...).
    let r1 = robustness_from_points(1.0, 100.0, 1.3, 90.0);
    let r2 = robustness_from_points(1000.0, 0.1, 1300.0, 0.09);
    assert!((r1 - r2).abs() < 1e-9, "axis units must not matter");
}

#[test]
#[should_panic(expected = "positive")]
fn zero_optimal_power_rejected() {
    let _ = robustness_from_points(1.0, 0.0, 1.0, 1.0);
}

#[test]
fn flat_history_scores_perfectly_robust() {
    // Every mapping performs identically: the loss landscape has a flat
    // top, Δ = 0 at every quantile, so history, ensemble and aggregate
    // all answer exactly 0.
    let mut h = SearchHistory::new();
    for _ in 0..50 {
        h.push(MappingOutcome {
            loss: 1.0,
            latency_s: 1.0,
            power_mw: 50.0,
        });
    }
    assert_eq!(robustness_of_history(&h, 0.05), Some(0.0));
    assert_eq!(robustness_ensemble(&h, 0.05), Some(0.0));
    assert_eq!(aggregate_robustness(&[&h, &h], 0.05), Some(0.0));
}

#[test]
fn empty_history_yields_none_everywhere() {
    let empty = SearchHistory::new();
    assert_eq!(robustness_of_history(&empty, 0.05), None);
    assert_eq!(robustness_ensemble(&empty, 0.05), None);
    assert_eq!(aggregate_robustness(&[], 0.05), None);
    assert_eq!(aggregate_robustness(&[&empty], 0.05), None);
}

#[test]
fn ensemble_is_mean_of_quantile_ladder() {
    // A strictly improving search: every quantile is well-defined, so
    // the ensemble must equal the arithmetic mean over {0.4α, α, 2α, 4α}.
    let mut h = SearchHistory::new();
    for i in 0..100 {
        let loss = 10.0 - 0.09 * i as f64;
        h.push(MappingOutcome {
            loss,
            latency_s: loss,
            power_mw: 100.0 + loss,
        });
    }
    let alpha = 0.05;
    let ladder = [0.4 * alpha, alpha, 2.0 * alpha, 4.0 * alpha];
    let mean = ladder
        .iter()
        .map(|&a| robustness_of_history(&h, a).expect("quantile defined"))
        .sum::<f64>()
        / ladder.len() as f64;
    let ens = robustness_ensemble(&h, alpha).expect("ensemble defined");
    assert!((ens - mean).abs() < TOL, "ensemble {ens} vs mean {mean}");
}

#[test]
fn aggregate_is_mean_over_feasible_jobs() {
    let mut sharp = SearchHistory::new();
    for i in 0..40 {
        let loss = 10.0 - 0.2 * i as f64;
        sharp.push(MappingOutcome {
            loss,
            latency_s: loss,
            power_mw: 100.0 + loss,
        });
    }
    let mut flat = SearchHistory::new();
    for _ in 0..40 {
        flat.push(MappingOutcome {
            loss: 1.0,
            latency_s: 1.0,
            power_mw: 50.0,
        });
    }
    let a = robustness_ensemble(&sharp, 0.05).unwrap();
    let b = robustness_ensemble(&flat, 0.05).unwrap();
    let agg = aggregate_robustness(&[&sharp, &flat], 0.05).unwrap();
    assert!((agg - (a + b) / 2.0).abs() < TOL);
    // Infeasible (empty) jobs are skipped, not averaged as zeros.
    let empty = SearchHistory::new();
    let agg_skip = aggregate_robustness(&[&sharp, &empty], 0.05).unwrap();
    assert!((agg_skip - a).abs() < TOL);
}
