//! Loud-failure semantics of the crash-safety environment variables.
//!
//! `UNICO_CHECKPOINT_EVERY` used to silently fall back to "every
//! iteration" when malformed; an operator who fat-fingers a cadence must
//! get a crash naming the variable, not a silently different durability
//! policy. These tests mutate the process environment, so they live in
//! their own integration-test binary and serialize on a mutex.

use std::panic::catch_unwind;
use std::sync::Mutex;

use unico_core::checkpoint::CheckpointPolicy;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the two checkpoint variables set as given (None clears)
/// and restores a clean slate afterwards.
fn with_env<T>(path: Option<&str>, every: Option<&str>, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    match path {
        Some(v) => std::env::set_var("UNICO_CHECKPOINT", v),
        None => std::env::remove_var("UNICO_CHECKPOINT"),
    }
    match every {
        Some(v) => std::env::set_var("UNICO_CHECKPOINT_EVERY", v),
        None => std::env::remove_var("UNICO_CHECKPOINT_EVERY"),
    }
    let out = f();
    std::env::remove_var("UNICO_CHECKPOINT");
    std::env::remove_var("UNICO_CHECKPOINT_EVERY");
    out
}

#[test]
fn unset_checkpoint_var_disables_checkpointing() {
    assert!(with_env(None, None, CheckpointPolicy::from_env).is_none());
    assert!(with_env(None, Some("5"), CheckpointPolicy::from_env).is_none());
    assert!(with_env(Some(""), None, CheckpointPolicy::from_env).is_none());
}

#[test]
fn valid_vars_build_the_policy() {
    let p = with_env(
        Some("/tmp/run.checkpoint"),
        None,
        CheckpointPolicy::from_env,
    )
    .expect("path set builds a policy");
    assert_eq!(p.every, 1);
    assert_eq!(p.path.to_string_lossy(), "/tmp/run.checkpoint");

    let p = with_env(
        Some("/tmp/run.checkpoint"),
        Some("7"),
        CheckpointPolicy::from_env,
    )
    .expect("policy with cadence");
    assert_eq!(p.every, 7);
}

#[test]
fn malformed_cadence_panics_loudly_instead_of_defaulting() {
    for bad in ["zero", "0", "-1", "1.5", ""] {
        let outcome = with_env(Some("/tmp/run.checkpoint"), Some(bad), || {
            catch_unwind(CheckpointPolicy::from_env)
        });
        let panic = outcome.expect_err(bad);
        let msg = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("UNICO_CHECKPOINT_EVERY"),
            "panic must name the variable, got {msg:?}"
        );
    }
}
