//! The hardware robustness (sensitivity) metric `R` (paper §3.4).
//!
//! After a mapping search, a hardware configuration is assessed not only
//! by its best-found mapping but by how *fragile* that assessment is:
//! how far the `(latency, power)` of the search's "sub-optimal" mapping
//! (the `(1−α)` right-tail percentile of the loss history) sits from the
//! optimum, and in which direction. `R = Δ·(1 + F(θ))`, where `Δ` is the
//! normalized distance between the two points and `F(θ)` penalizes the
//! direction of the displacement — power variation more than latency
//! variation, and power *increase* most of all.

use std::f64::consts::PI;

use unico_mapping::SearchHistory;

/// The paper's direction-penalty polynomial
/// `F(θ) = 6/π²·θ² − 5/π·θ + 1` for `θ ∈ [0, π]`.
///
/// `F(0) = 1`, `F(π/2) = 0`, `F(π) = 2`, so the total penalty `1 + F(θ)`
/// spans `2 → 1 → 3` across the half-circle.
pub fn f_theta(theta: f64) -> f64 {
    let t = theta.clamp(0.0, PI);
    6.0 / (PI * PI) * t * t - 5.0 / PI * t + 1.0
}

/// Robustness from explicit optimal / sub-optimal `(latency, power)`
/// pairs. Axes are normalized by the optimal values so the metric is
/// scale-free.
///
/// Returns `0` for a perfectly robust configuration (`Δ = 0`).
///
/// # Panics
///
/// Panics if the optimal latency or power is not strictly positive.
pub fn robustness_from_points(
    opt_latency: f64,
    opt_power: f64,
    sub_latency: f64,
    sub_power: f64,
) -> f64 {
    assert!(
        opt_latency > 0.0 && opt_power > 0.0,
        "optimal latency/power must be positive"
    );
    // Normalized displacement from the optimum to the sub-optimal point.
    let dx = (sub_latency - opt_latency) / opt_latency; // ≥ 0 by monotonicity
    let dy = (sub_power - opt_power) / opt_power;
    let delta = (dx * dx + dy * dy).sqrt();
    if delta < 1e-15 {
        return 0.0;
    }
    // θ per the paper's Fig. 5(b): π/2 when only latency varies; < π/2
    // when the sub-optimal point also has *higher* power (both improve
    // toward the optimum); > π/2 when moving to the optimum *increases*
    // power.
    let theta = PI / 2.0 - dy.atan2(dx.max(1e-15));
    delta * (1.0 + f_theta(theta))
}

/// Robustness of one mapping-search history: optimal = the converged
/// best, sub-optimal = the record at quantile `α` of the loss history
/// counted from the best side (`α = 0.05` ⇒ a mapping just inside the
/// best 5% — Fig. 5(a)'s *promising but sub-optimal* orange point).
///
/// `Δ` then measures how sharp the optimum is relative to the other
/// near-converged mappings the search found: a flat top (many
/// alternatives perform like the best) gives `R ≈ 0`, a needle-like
/// optimum that must be hit exactly gives a large `R`. Empirically this
/// sharp-top signal is what anti-correlates with generalization to
/// unseen workloads (validated by the Fig. 8 reproduction); measuring
/// against the *worst* tail instead inverts the correlation, because
/// flexible hardware also admits many bad mappings.
///
/// Returns `None` when the history has no feasible evaluations.
pub fn robustness_of_history(history: &SearchHistory, alpha: f64) -> Option<f64> {
    let opt = history.best()?;
    let sub = history.loss_quantile_record(alpha.clamp(0.0, 1.0))?;
    if opt.latency_s <= 0.0 || opt.power_mw <= 0.0 {
        return None;
    }
    Some(robustness_from_points(
        opt.latency_s,
        opt.power_mw,
        sub.latency_s.max(opt.latency_s),
        sub.power_mw,
    ))
}

/// Ensemble robustness of one history: mean of [`robustness_of_history`]
/// over a small ladder of quantiles around `alpha`
/// (`{0.4α, α, 2α, 4α}`). A single percentile of a few-hundred-sample
/// loss history is a noisy estimator; averaging nearby quantiles
/// measurably tightens the correlation between `R` and generalization
/// (see the Fig. 8 reproduction notes in EXPERIMENTS.md).
pub fn robustness_ensemble(history: &SearchHistory, alpha: f64) -> Option<f64> {
    let ladder = [0.4 * alpha, alpha, 2.0 * alpha, 4.0 * alpha];
    let vals: Vec<f64> = ladder
        .iter()
        .filter_map(|&a| robustness_of_history(history, a.clamp(0.0, 1.0)))
        .collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

/// Mean ensemble robustness across several job histories (one per
/// layer/network); `None` if no job yields a value.
pub fn aggregate_robustness(histories: &[&SearchHistory], alpha: f64) -> Option<f64> {
    let vals: Vec<f64> = histories
        .iter()
        .filter_map(|h| robustness_ensemble(h, alpha))
        .collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unico_mapping::MappingOutcome;

    #[test]
    fn f_theta_anchor_values() {
        assert!((f_theta(0.0) - 1.0).abs() < 1e-12);
        assert!(f_theta(PI / 2.0).abs() < 1e-12);
        assert!((f_theta(PI) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn f_theta_asymmetric_preference() {
        // θ slightly below π/2 (power also improves) is preferred over
        // the mirrored angle above π/2 (power worsens).
        let below = f_theta(PI / 2.0 - 0.3);
        let above = f_theta(PI / 2.0 + 0.3);
        assert!(above > below);
    }

    #[test]
    fn zero_displacement_is_ideal() {
        assert_eq!(robustness_from_points(1.0, 2.0, 1.0, 2.0), 0.0);
    }

    #[test]
    fn pure_latency_variation_gives_delta() {
        // Sub-optimal 10% slower at identical power: θ = π/2, R = Δ = 0.1.
        let r = robustness_from_points(1.0, 100.0, 1.1, 100.0);
        assert!((r - 0.1).abs() < 1e-9, "r {r}");
    }

    #[test]
    fn power_increase_toward_optimum_penalized_most() {
        // Case (ii): optimum has HIGHER power than the sub-optimal point
        // (moving orange→green increases power): θ > π/2, penalty > Δ.
        let r_bad = robustness_from_points(1.0, 100.0, 1.1, 80.0);
        // Case (i): optimum improves both: θ < π/2, penalty in (Δ, 2Δ].
        let r_good = robustness_from_points(1.0, 100.0, 1.1, 120.0);
        let delta_bad = (0.1f64.powi(2) + 0.2f64.powi(2)).sqrt();
        assert!(r_bad > delta_bad, "θ>π/2 must penalize beyond Δ");
        assert!(r_bad > r_good, "power increase must be least favorable");
    }

    #[test]
    fn r_bounded_by_analytic_envelope() {
        // `1 + F(θ)` spans `[23/24, 3]` over `θ ∈ [0, π]` (the polynomial
        // dips slightly below 1 at its vertex θ* = 5π/12).
        for (sl, sp) in [(1.5, 50.0), (1.01, 300.0), (2.0, 100.0), (1.2, 99.0)] {
            let r = robustness_from_points(1.0, 100.0, sl, sp);
            let dx: f64 = sl - 1.0;
            let dy: f64 = (sp - 100.0) / 100.0;
            let delta = (dx * dx + dy * dy).sqrt();
            assert!(r >= (23.0 / 24.0) * delta - 1e-9, "R ≥ 23Δ/24 fails");
            assert!(r <= 3.0 * delta + 1e-9, "R ≤ 3Δ fails");
        }
    }

    #[test]
    fn f_theta_vertex_minimum() {
        let theta_star = 5.0 * PI / 12.0;
        assert!((f_theta(theta_star) - (1.0 - 25.0 / 24.0)).abs() < 1e-12);
        // The vertex is the global minimum.
        for i in 0..=100 {
            let t = PI * i as f64 / 100.0;
            assert!(f_theta(t) >= f_theta(theta_star) - 1e-12);
        }
    }

    #[test]
    fn history_robustness_flat_search_is_zero() {
        let mut h = SearchHistory::new();
        for _ in 0..20 {
            h.push(MappingOutcome {
                loss: 1.0,
                latency_s: 1.0,
                power_mw: 50.0,
            });
        }
        let r = robustness_of_history(&h, 0.05).unwrap();
        assert!(r.abs() < 1e-12);
    }

    #[test]
    fn history_robustness_sensitive_search_positive() {
        let mut h = SearchHistory::new();
        for i in 0..40 {
            let loss = 10.0 - 0.2 * i as f64;
            h.push(MappingOutcome {
                loss,
                latency_s: loss,
                power_mw: 100.0 + loss,
            });
        }
        let r = robustness_of_history(&h, 0.05).unwrap();
        assert!(r > 0.0);
    }

    #[test]
    fn aggregate_skips_empty_histories() {
        let mut a = SearchHistory::new();
        a.push(MappingOutcome {
            loss: 2.0,
            latency_s: 2.0,
            power_mw: 10.0,
        });
        let empty = SearchHistory::new();
        let r = aggregate_robustness(&[&a, &empty], 0.05);
        assert!(r.is_some());
        assert!(aggregate_robustness(&[&empty], 0.05).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_optimum_panics() {
        let _ = robustness_from_points(0.0, 1.0, 1.0, 1.0);
    }
}
