//! Plain-text/markdown report formatting for experiment outputs.

/// A simple markdown table builder.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!(" {:<w$} |", c, w = width[i]));
            }
            s.push('\n');
            s
        };
        let mut out = fmt_row(&self.header);
        out.push('|');
        for w in &width {
            out.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Formats a latency in seconds the way the paper's tables do
/// (milliseconds with adaptive precision).
pub fn fmt_latency_ms(latency_s: f64) -> String {
    let ms = latency_s * 1e3;
    if ms < 0.01 {
        format!("{ms:.6}")
    } else if ms < 1.0 {
        format!("{ms:.4}")
    } else {
        format!("{ms:.2}")
    }
}

/// Formats `(latency, power, area)` as a paper-style cell
/// `L(ms), P(mW), A(mm²)`.
pub fn fmt_ppa(latency_s: f64, power_mw: f64, area_mm2: f64) -> String {
    format!(
        "{}, {:.1}, {:.2}",
        fmt_latency_ms(latency_s),
        power_mw,
        area_mm2
    )
}

/// Formats simulated seconds as hours with one decimal.
pub fn fmt_hours(seconds: f64) -> String {
    format!("{:.2}", seconds / 3600.0)
}

/// Renders an `(x, y)` series as CSV with the given column names.
pub fn series_to_csv(name_x: &str, name_y: &str, series: &[(f64, f64)]) -> String {
    let mut s = format!("{name_x},{name_y}\n");
    for (x, y) in series {
        s.push_str(&format!("{x:.6},{y:.6}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "22"]);
        t.row(vec!["333", "4"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a"));
        assert!(md.contains("| 333 | 4"));
        assert_eq!(md.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }

    #[test]
    fn latency_formatting_scales() {
        assert_eq!(fmt_latency_ms(0.0000001), "0.000100");
        assert_eq!(fmt_latency_ms(0.0005), "0.5000");
        assert_eq!(fmt_latency_ms(2.5), "2500.00");
    }

    #[test]
    fn ppa_and_hours() {
        let cell = fmt_ppa(0.0021, 150.55, 3.456);
        assert!(cell.contains("150.6"));
        assert!(cell.contains("3.46"));
        assert_eq!(fmt_hours(7200.0), "2.00");
    }

    #[test]
    fn csv_series() {
        let csv = series_to_csv("t", "hv", &[(1.0, 2.0), (3.0, 4.0)]);
        assert!(csv.starts_with("t,hv\n"));
        assert_eq!(csv.lines().count(), 3);
    }
}
