//! UNICO: unified hardware–software co-optimization for robust neural
//! network acceleration.
//!
//! This crate implements the paper's primary contribution (Algorithm 1):
//!
//! 1. **Batched, surrogate-guided HW sampling** — each outer iteration
//!    samples a batch of `N` hardware configurations by expected
//!    improvement on a Gaussian-process surrogate over ParEGO-scalarized
//!    objectives, with a random exploration share.
//! 2. **Adaptive SW mapping search with modified successive halving**
//!    (MSH) — per-candidate mapping searches run in parallel and are
//!    early-stopped in halving rounds; promotion uses terminal value
//!    *and* convergence-rate AUC (`k = ⌊0.5N⌋`, `p = ⌊0.15N⌋`).
//! 3. **High-fidelity surrogate updates** — only samples whose ParEGO
//!    scalar lies within the adaptive Upper Update Limit (95th percentile
//!    of accepted distances) of the best-seen scalar feed the surrogate.
//! 4. **The robustness metric `R`** — `R = Δ·(1 + F(θ))` with
//!    `F(θ) = 6/π²·θ² − 5/π·θ + 1`, quantifying a configuration's
//!    sensitivity to the mapping search; `R` is the fourth MOBO objective
//!    `(latency, power, area, sensitivity)` and also gates high-fidelity
//!    selection, steering the search toward hardware that generalizes to
//!    unseen workloads.
//!
//! The [`experiments`] module contains one driver per table/figure of the
//! paper's evaluation; the `unico-bench` crate exposes them as binaries.
//!
//! # Example
//!
//! ```no_run
//! use unico_core::{Unico, UnicoConfig};
//! use unico_search::{CoSearchEnv, EnvConfig};
//! use unico_model::SpatialPlatform;
//! use unico_workloads::zoo;
//!
//! let platform = SpatialPlatform::edge();
//! let env = CoSearchEnv::new(&platform, &[zoo::mobilenet_v1()], EnvConfig::default());
//! let result = Unico::new(UnicoConfig::default()).run(&env);
//! for (objectives, entry) in result.front.iter() {
//!     println!("{objectives:?} -> {:?}", result.evaluations[*entry].hw);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod experiments;
pub mod report;
pub mod robustness;
mod unico;

pub use checkpoint::{Checkpoint, CheckpointError, CheckpointPolicy, DirScan, GpHypers};
pub use unico::{
    HwRecord, IterationUpdate, RunObserver, RunOptions, Unico, UnicoConfig, UnicoResult,
};

// Facade re-exports: the graph frontend and the fusion-aware mapping
// surface, so embedders reach the whole import → fuse → co-optimize
// pipeline through one crate.
pub use unico_mapping::{search_fusion, FusionGain, FusionOracle, FusionPlan, FusionStats};
pub use unico_model::{
    FusedCostOracle, FusedGroupEval, FusedMember, FusedMemberCost, FusionPricer,
};
pub use unico_search::FusionReport;
pub use unico_workloads::frontend;
pub use unico_workloads::{FrontendError, FusionEdge, ImportedGraph};
