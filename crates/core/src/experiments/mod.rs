//! Experiment drivers: one per table/figure of the paper's evaluation.
//!
//! Every driver is a pure function of a [`Scale`] and a seed, so the
//! integration tests run the same code at smoke scale that the
//! `unico-bench` binaries run at paper scale.
//!
//! | Paper artifact | Driver |
//! |---|---|
//! | Table 1 (edge)  | [`table::run_table`] with [`table::Scenario::Edge`] |
//! | Table 2 (cloud) | [`table::run_table`] with [`table::Scenario::Cloud`] |
//! | Fig. 7          | [`hv_trace::run_hv_trace`] |
//! | Fig. 8          | [`robust_pairs::run_robust_pairs`] |
//! | Fig. 9          | [`generalization::run_generalization`] |
//! | Fig. 10         | [`ablation::run_ablation`] |
//! | Fig. 11         | [`ascend::run_ascend`] |

pub mod ablation;
pub mod ascend;
pub mod generalization;
pub mod hv_trace;
pub mod robust_pairs;
pub mod stats;
pub mod table;

use unico_model::{Platform, SpatialPlatform};
use unico_search::{evaluate_batch, Assessment, CoSearchEnv, EnvConfig};
use unico_workloads::Network;

/// Experiment sizing: the same drivers run at `smoke` scale in tests and
/// `paper` scale in the bench binaries.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// UNICO/MOBOHB hardware batch size (`N`).
    pub batch: usize,
    /// UNICO MOBO iterations (`MaxIter`).
    pub max_iter: usize,
    /// Maximum per-job mapping budget (`b_max`).
    pub b_max: u64,
    /// Dominant layers kept per network.
    pub layers_per_network: usize,
    /// HASCO outer iterations.
    pub hasco_iterations: usize,
    /// NSGA-II population size.
    pub nsga_population: usize,
    /// NSGA-II generations.
    pub nsga_generations: usize,
    /// MOBOHB outer iterations.
    pub mobohb_iterations: usize,
    /// Budget used when validating a fixed design on a new network.
    pub validation_budget: u64,
    /// Parallel workers for cost accounting.
    pub workers: u32,
}

impl Scale {
    /// Tiny scale for CI/integration tests (seconds of real time).
    pub fn smoke() -> Self {
        Scale {
            batch: 6,
            max_iter: 3,
            b_max: 32,
            layers_per_network: 1,
            hasco_iterations: 6,
            nsga_population: 6,
            nsga_generations: 2,
            mobohb_iterations: 3,
            validation_budget: 32,
            workers: 16,
        }
    }

    /// The paper's configuration (`N = 30`, `b_max = 300`).
    pub fn paper() -> Self {
        Scale {
            batch: 30,
            max_iter: 30,
            b_max: 300,
            layers_per_network: 4,
            hasco_iterations: 120,
            nsga_population: 30,
            nsga_generations: 12,
            mobohb_iterations: 20,
            validation_budget: 300,
            workers: 16,
        }
    }

    /// A mid-size scale for quick local experimentation.
    pub fn quick() -> Self {
        Scale {
            batch: 12,
            max_iter: 8,
            b_max: 96,
            layers_per_network: 2,
            hasco_iterations: 32,
            nsga_population: 12,
            nsga_generations: 6,
            mobohb_iterations: 8,
            validation_budget: 96,
            workers: 16,
        }
    }
}

/// Evaluates a *fixed* hardware design on one network by running a fresh
/// full-budget software mapping search (the paper's procedure for
/// validating designs on unseen workloads). Returns `None` when no
/// feasible mapping exists on some layer.
pub fn validate_on_network<P: Platform>(
    platform: &P,
    hw: P::Hw,
    network: &Network,
    layers: usize,
    budget: u64,
    seed: u64,
) -> Option<Assessment>
where
    P::Hw: Send,
{
    let env = CoSearchEnv::new(
        platform,
        std::slice::from_ref(network),
        EnvConfig {
            max_layers_per_network: layers,
            power_cap_mw: None,
            area_cap_mm2: None,
        },
    );
    let (mut results, _, _) = evaluate_batch(&env, vec![hw], budget, seed);
    results.pop().and_then(|(_, a)| a)
}

/// The edge/cloud platform with the paper's power constraint, shared by
/// several experiments.
pub fn scenario_env<'p>(
    platform: &'p SpatialPlatform,
    networks: &[Network],
    scale: &Scale,
    power_cap_mw: Option<f64>,
) -> CoSearchEnv<'p, SpatialPlatform> {
    CoSearchEnv::new(
        platform,
        networks,
        EnvConfig {
            max_layers_per_network: scale.layers_per_network,
            power_cap_mw,
            area_cap_mm2: None,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use unico_workloads::zoo;

    #[test]
    fn scales_are_ordered() {
        let s = Scale::smoke();
        let p = Scale::paper();
        assert!(s.batch < p.batch);
        assert!(s.b_max < p.b_max);
        assert!(Scale::quick().b_max < p.b_max);
    }

    #[test]
    fn validate_on_network_runs() {
        let p = SpatialPlatform::edge();
        let mut rng = rand::SeedableRng::seed_from_u64(5);
        // Try a few configs until one is feasible on the tiny workload.
        for i in 0..30 {
            let hw = p.sample_hw(&mut rng);
            if let Some(a) = validate_on_network(&p, hw, &zoo::mobilenet_v1(), 1, 24, i) {
                assert!(a.latency_s > 0.0);
                return;
            }
        }
        panic!("no feasible config found");
    }
}
