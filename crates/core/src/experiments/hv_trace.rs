//! Fig. 7: hypervolume difference vs. simulated wall-clock time for
//! HASCO, NSGA-II, MOBOHB and UNICO.

use unico_search::{
    run_hasco, run_mobohb, run_nsga2, HascoConfig, MobohbConfig, Nsga2Config, SearchTrace,
};
use unico_surrogate::pareto::non_dominated_indices;
use unico_workloads::Network;

use crate::{Unico, UnicoConfig};

use super::table::Scenario;
use super::{scenario_env, Scale};

/// The hypervolume-difference series of one method.
#[derive(Debug, Clone)]
pub struct MethodTrace {
    /// Method name.
    pub method: String,
    /// `(hours, hypervolume difference)` samples in time order.
    pub series: Vec<(f64, f64)>,
}

/// Fig. 7 output: one series per method.
#[derive(Debug, Clone)]
pub struct HvTraceResult {
    /// Scenario label.
    pub scenario: &'static str,
    /// Per-method series.
    pub methods: Vec<MethodTrace>,
}

/// Normalizes all fronts into `[0, 1]^3` using global per-objective
/// bounds, builds the reference front (non-dominated union of final
/// fronts) and converts each trace into an HV-difference series.
fn build_series(traces: Vec<(String, SearchTrace)>) -> Vec<MethodTrace> {
    // Global bounds over every snapshot point.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for (_, t) in &traces {
        for p in t.points() {
            for y in &p.front {
                for j in 0..3 {
                    lo[j] = lo[j].min(y[j]);
                    hi[j] = hi[j].max(y[j]);
                }
            }
        }
    }
    let norm = |y: &[f64]| -> Vec<f64> {
        (0..3)
            .map(|j| {
                let r = hi[j] - lo[j];
                if r > 0.0 {
                    (y[j] - lo[j]) / r
                } else {
                    0.0
                }
            })
            .collect()
    };
    // Reference front: non-dominated union of all final fronts.
    let mut union: Vec<Vec<f64>> = Vec::new();
    for (_, t) in &traces {
        if let Some(f) = t.final_front() {
            union.extend(f.iter().map(|y| norm(y)));
        }
    }
    let reference: Vec<Vec<f64>> = non_dominated_indices(&union)
        .into_iter()
        .map(|i| union[i].clone())
        .collect();
    let ref_point = vec![1.1, 1.1, 1.1];

    traces
        .into_iter()
        .map(|(method, t)| {
            let normalized_trace = {
                let mut nt = SearchTrace::new();
                for p in t.points() {
                    nt.record(p.seconds, p.front.iter().map(|y| norm(y)).collect());
                }
                nt
            };
            let series = normalized_trace
                .hv_difference_series(&reference, &ref_point)
                .into_iter()
                .map(|(s, d)| (s / 3600.0, d))
                .collect();
            MethodTrace { method, series }
        })
        .collect()
}

/// Runs the four methods on the given networks and returns their
/// hypervolume-difference traces.
pub fn run_hv_trace(
    scenario: Scenario,
    networks: &[Network],
    scale: &Scale,
    seed: u64,
) -> HvTraceResult {
    let platform = scenario.platform();
    let env = scenario_env(&platform, networks, scale, Some(scenario.power_cap_mw()));

    let hasco = run_hasco(
        &env,
        &HascoConfig {
            iterations: scale.hasco_iterations,
            inner_budget: scale.b_max,
            seed,
            workers: scale.workers,
            ..HascoConfig::default()
        },
    );
    let nsga = run_nsga2(
        &env,
        &Nsga2Config {
            population: scale.nsga_population,
            generations: scale.nsga_generations,
            inner_budget: scale.b_max,
            seed,
            workers: scale.workers,
            ..Nsga2Config::default()
        },
    );
    let mobohb = run_mobohb(
        &env,
        &MobohbConfig {
            iterations: scale.mobohb_iterations,
            batch: scale.batch,
            b_max: scale.b_max,
            seed,
            workers: scale.workers,
            ..MobohbConfig::default()
        },
    );
    let unico = Unico::new(UnicoConfig {
        max_iter: scale.max_iter,
        batch: scale.batch,
        b_max: scale.b_max,
        seed,
        workers: scale.workers,
        ..UnicoConfig::default()
    })
    .run(&env);

    let methods = build_series(vec![
        ("HASCO".to_string(), hasco.trace),
        ("NSGAII".to_string(), nsga.trace),
        ("MOBOHB".to_string(), mobohb.trace),
        ("UNICO".to_string(), unico.trace),
    ]);
    HvTraceResult {
        scenario: scenario.label(),
        methods,
    }
}

/// Final hypervolume difference per method (lower = better).
pub fn final_hv_differences(result: &HvTraceResult) -> Vec<(String, f64)> {
    result
        .methods
        .iter()
        .map(|m| {
            (
                m.method.clone(),
                m.series.last().map(|&(_, d)| d).unwrap_or(f64::INFINITY),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unico_workloads::zoo;

    #[test]
    fn smoke_hv_trace() {
        let res = run_hv_trace(Scenario::Edge, &[zoo::mobilenet_v1()], &Scale::smoke(), 11);
        assert_eq!(res.methods.len(), 4);
        for m in &res.methods {
            assert!(!m.series.is_empty(), "{} trace empty", m.method);
            // HV difference is non-negative versus the union reference.
            assert!(m.series.iter().all(|&(_, d)| d >= -1e-9));
            // Series are non-increasing in HV difference (fronts only
            // improve).
            for w in m.series.windows(2) {
                assert!(w[1].1 <= w[0].1 + 1e-9, "{} series increased", m.method);
            }
        }
        let finals = final_hv_differences(&res);
        assert_eq!(finals.len(), 4);
        // At least one method reaches (near) the reference front.
        assert!(finals.iter().any(|&(_, d)| d < 0.5));
    }
}
