//! Fig. 9: UNICO vs HASCO generalization to unseen DNNs.
//!
//! Co-optimize on {MobileNetV2, ResNet, SRGAN, VGG}, then validate each
//! method's Pareto designs on eight unseen networks with fresh mapping
//! searches.
//!
//! The primary metric is *selection-robust*: per unseen network, the
//! hypervolume of each method's validated `(latency, power)` front (top
//! designs, common normalization), so the comparison does not hinge on
//! which single knee each method would deploy. Knee designs (UNICO's
//! robustness-aware 4-objective knee vs HASCO's PPA knee) are reported
//! alongside.

use unico_model::{HwConfig, SpatialPlatform};
use unico_search::{run_hasco, Assessment, HascoConfig};
use unico_surrogate::hypervolume::hypervolume;
use unico_surrogate::scalarize::normalize_columns;
use unico_workloads::zoo;

use crate::{Unico, UnicoConfig};

use super::table::Scenario;
use super::{scenario_env, validate_on_network, Scale};

/// How many front designs per method are validated per network.
const FRONT_SAMPLE: usize = 8;

/// Per-validation-network comparison.
#[derive(Debug, Clone)]
pub struct GeneralizationRow {
    /// Validation network name.
    pub network: String,
    /// Hypervolume of UNICO's validated `(latency, power)` front.
    pub unico_hv: f64,
    /// Hypervolume of HASCO's validated front.
    pub hasco_hv: f64,
    /// UNICO's knee design on this network (secondary).
    pub unico_knee: Option<Assessment>,
    /// HASCO's knee design on this network (secondary).
    pub hasco_knee: Option<Assessment>,
}

impl GeneralizationRow {
    /// Relative hypervolume gain of UNICO over HASCO on this network
    /// (`> 0` means UNICO's designs generalize better here).
    pub fn gain(&self) -> f64 {
        if self.hasco_hv > 0.0 {
            (self.unico_hv - self.hasco_hv) / self.hasco_hv
        } else if self.unico_hv > 0.0 {
            1.0
        } else {
            0.0
        }
    }
}

/// Fig. 9 output.
#[derive(Debug, Clone)]
pub struct GeneralizationResult {
    /// UNICO's deployed (robustness-aware knee) design.
    pub unico_hw: HwConfig,
    /// HASCO's deployed (PPA knee) design.
    pub hasco_hw: HwConfig,
    /// Per-network rows.
    pub rows: Vec<GeneralizationRow>,
    /// Suite-aggregate validation hypervolume of UNICO's designs (each
    /// design summarized as geometric-mean latency × mean power across
    /// the validation suite).
    pub unico_aggregate_hv: f64,
    /// Suite-aggregate validation hypervolume of the comparison method.
    pub hasco_aggregate_hv: f64,
}

impl GeneralizationResult {
    /// Mean per-network hypervolume gain.
    pub fn mean_gain(&self) -> Option<f64> {
        if self.rows.is_empty() {
            return None;
        }
        Some(self.rows.iter().map(GeneralizationRow::gain).sum::<f64>() / self.rows.len() as f64)
    }

    /// The headline metric: relative gain of the suite-aggregate
    /// validation hypervolume (less noisy than per-network gains).
    pub fn aggregate_gain(&self) -> f64 {
        if self.hasco_aggregate_hv > 0.0 {
            (self.unico_aggregate_hv - self.hasco_aggregate_hv) / self.hasco_aggregate_hv
        } else if self.unico_aggregate_hv > 0.0 {
            1.0
        } else {
            0.0
        }
    }
}

/// Runs the Fig. 9 study.
pub fn run_generalization(scale: &Scale, seed: u64) -> GeneralizationResult {
    let platform = Scenario::Edge.platform();
    let train = zoo::generalization_train_suite();
    let env = scenario_env(
        &platform,
        &train,
        scale,
        Some(Scenario::Edge.power_cap_mw()),
    );

    let unico_res = Unico::new(UnicoConfig {
        max_iter: scale.max_iter,
        batch: scale.batch,
        b_max: scale.b_max,
        seed,
        workers: scale.workers,
        ..UnicoConfig::default()
    })
    .run(&env);
    let hasco_res = run_hasco(
        &env,
        &HascoConfig {
            iterations: scale.hasco_iterations,
            inner_budget: scale.b_max,
            seed,
            workers: scale.workers,
            ..HascoConfig::default()
        },
    );

    // Deployed designs for the secondary knee comparison.
    let unico_hw = unico_res
        .robust_knee()
        .or_else(|| unico_res.min_euclidean_record())
        .map(|r| r.hw)
        .expect("UNICO found no feasible design on the training suite");
    let hasco_hw = hasco_res
        .front
        .min_euclidean()
        .map(|(_, hw)| *hw)
        .expect("HASCO found no feasible design on the training suite");

    // Front samples for the primary hypervolume comparison.
    let unico_front = spread_sample(
        unico_res
            .front
            .iter()
            .map(|(y, &idx)| (y[0], unico_res.evaluations[idx].hw))
            .collect(),
    );
    let hasco_front = spread_sample(hasco_res.front.iter().map(|(y, hw)| (y[0], *hw)).collect());

    compare_design_sets(
        &platform,
        &unico_front,
        &hasco_front,
        unico_hw,
        hasco_hw,
        scale,
        seed,
    )
}

/// Spreads a sample of up to [`FRONT_SAMPLE`] designs evenly along the
/// latency-sorted front so the sample represents the whole trade-off
/// curve rather than insertion order.
fn spread_sample(mut entries: Vec<(f64, HwConfig)>) -> Vec<HwConfig> {
    entries.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    if entries.len() <= FRONT_SAMPLE {
        return entries.into_iter().map(|(_, hw)| hw).collect();
    }
    (0..FRONT_SAMPLE)
        .map(|i| {
            let pos = i * (entries.len() - 1) / (FRONT_SAMPLE - 1);
            entries[pos].1
        })
        .collect()
}

/// Normalized hypervolume of two point sets under common bounds.
fn paired_hv(a: &[Vec<f64>], b: &[Vec<f64>]) -> (f64, f64) {
    let mut all = a.to_vec();
    all.extend(b.iter().cloned());
    if all.is_empty() {
        return (0.0, 0.0);
    }
    let norm = normalize_columns(&all);
    let (an, bn) = norm.split_at(a.len());
    let reference = vec![1.1, 1.1];
    (hypervolume(an, &reference), hypervolume(bn, &reference))
}

/// Validates both design sets on every validation network once, then
/// derives per-network and suite-aggregate hypervolume comparisons.
#[allow(clippy::too_many_arguments)]
fn compare_design_sets(
    platform: &SpatialPlatform,
    a_front: &[HwConfig],
    b_front: &[HwConfig],
    a_knee: HwConfig,
    b_knee: HwConfig,
    scale: &Scale,
    seed: u64,
) -> GeneralizationResult {
    let validation = zoo::generalization_validation_suite();
    // matrix[method][design][network] -> Option<Assessment>
    let validate_matrix = |front: &[HwConfig], base: u64| -> Vec<Vec<Option<Assessment>>> {
        front
            .iter()
            .enumerate()
            .map(|(i, &hw)| {
                validation
                    .iter()
                    .enumerate()
                    .map(|(k, net)| {
                        validate_on_network(
                            platform,
                            hw,
                            net,
                            scale.layers_per_network,
                            scale.validation_budget,
                            seed.wrapping_add(base + (i * 64 + k) as u64),
                        )
                    })
                    .collect()
            })
            .collect()
    };
    let a_matrix = validate_matrix(a_front, 0);
    let b_matrix = validate_matrix(b_front, 100_000);

    // Per-network fronts.
    let per_net_points = |matrix: &Vec<Vec<Option<Assessment>>>, k: usize| -> Vec<Vec<f64>> {
        matrix
            .iter()
            .filter_map(|row| row[k].as_ref())
            .map(|a| vec![a.latency_s, a.power_mw])
            .collect()
    };
    let rows: Vec<GeneralizationRow> = validation
        .iter()
        .enumerate()
        .map(|(k, net)| {
            let (unico_hv, hasco_hv) =
                paired_hv(&per_net_points(&a_matrix, k), &per_net_points(&b_matrix, k));
            GeneralizationRow {
                network: net.name().to_string(),
                unico_hv,
                hasco_hv,
                unico_knee: validate_on_network(
                    platform,
                    a_knee,
                    net,
                    scale.layers_per_network,
                    scale.validation_budget,
                    seed.wrapping_add(900_000 + k as u64),
                ),
                hasco_knee: validate_on_network(
                    platform,
                    b_knee,
                    net,
                    scale.layers_per_network,
                    scale.validation_budget,
                    seed.wrapping_add(910_000 + k as u64),
                ),
            }
        })
        .collect();

    // Suite-aggregate: one (geo-mean latency, mean power) point per
    // design that is feasible on the whole suite.
    let aggregate_points = |matrix: &Vec<Vec<Option<Assessment>>>| -> Vec<Vec<f64>> {
        matrix
            .iter()
            .filter_map(|row| {
                let mut lat_log = 0.0;
                let mut pow = 0.0;
                for a in row {
                    let a = a.as_ref()?;
                    lat_log += a.latency_s.ln();
                    pow += a.power_mw;
                }
                let n = row.len() as f64;
                Some(vec![(lat_log / n).exp(), pow / n])
            })
            .collect()
    };
    let (unico_aggregate_hv, hasco_aggregate_hv) =
        paired_hv(&aggregate_points(&a_matrix), &aggregate_points(&b_matrix));

    GeneralizationResult {
        unico_hw: a_knee,
        hasco_hw: b_knee,
        rows,
        unico_aggregate_hv,
        hasco_aggregate_hv,
    }
}

/// The mechanism check behind Fig. 9: UNICO *with* the robustness
/// objective vs the identical configuration *without* it, compared by
/// per-network validation-front hypervolume. Positive mean gain shows
/// the `R` objective itself improves generalization.
pub fn run_r_ablation(scale: &Scale, seed: u64) -> GeneralizationResult {
    let platform = Scenario::Edge.platform();
    let train = zoo::generalization_train_suite();
    let env = scenario_env(
        &platform,
        &train,
        scale,
        Some(Scenario::Edge.power_cap_mw()),
    );
    let base = UnicoConfig {
        max_iter: scale.max_iter,
        batch: scale.batch,
        b_max: scale.b_max,
        seed,
        workers: scale.workers,
        ..UnicoConfig::default()
    };
    let with_r = Unico::new(base).run(&env);
    let without_r = Unico::new(base.without_robustness()).run(&env);

    let knee = |res: &crate::UnicoResult<HwConfig>| {
        res.robust_knee()
            .or_else(|| res.min_euclidean_record())
            .map(|r| r.hw)
            .expect("feasible design exists")
    };
    let front_of = |res: &crate::UnicoResult<HwConfig>| -> Vec<(f64, HwConfig)> {
        res.front
            .iter()
            .map(|(y, &idx)| (y[0], res.evaluations[idx].hw))
            .collect()
    };
    let a_front = spread_sample(front_of(&with_r));
    let b_front = spread_sample(front_of(&without_r));
    let (a_knee, b_knee) = (knee(&with_r), knee(&without_r));

    compare_design_sets(
        &platform,
        &a_front,
        &b_front,
        a_knee,
        b_knee,
        scale,
        seed.wrapping_add(777),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(u: f64, h: f64) -> GeneralizationRow {
        GeneralizationRow {
            network: "x".into(),
            unico_hv: u,
            hasco_hv: h,
            unico_knee: None,
            hasco_knee: None,
        }
    }

    #[test]
    fn gain_sign_matches_hv_ordering() {
        assert!(row(1.2, 1.0).gain() > 0.0);
        assert!(row(0.8, 1.0).gain() < 0.0);
        assert_eq!(row(0.0, 0.0).gain(), 0.0);
        assert_eq!(row(0.5, 0.0).gain(), 1.0);
    }

    #[test]
    fn mean_gain_averages_rows() {
        let res = GeneralizationResult {
            unico_hw: HwConfig::new(
                2,
                2,
                512,
                65536,
                64,
                unico_model::Dataflow::WeightStationary,
            ),
            hasco_hw: HwConfig::new(
                2,
                2,
                512,
                65536,
                64,
                unico_model::Dataflow::WeightStationary,
            ),
            rows: vec![row(1.1, 1.0), row(0.9, 1.0)],
            unico_aggregate_hv: 1.2,
            hasco_aggregate_hv: 1.0,
        };
        let m = res.mean_gain().unwrap();
        assert!((m - 0.0).abs() < 1e-9, "mean {m}");
        assert!((res.aggregate_gain() - 0.2).abs() < 1e-9);
    }
}
