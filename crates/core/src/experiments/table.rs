//! Tables 1 and 2: per-network comparison of HASCO, NSGA-II and UNICO
//! under edge / cloud power constraints.

use std::sync::Arc;

use unico_model::{EvalCache, SpatialPlatform};
use unico_search::{run_hasco, run_nsga2, HascoConfig, Nsga2Config};
use unico_workloads::{zoo, Network};

use crate::report::{fmt_hours, fmt_ppa, Table};
use crate::{Unico, UnicoConfig};

use super::{scenario_env, Scale};

/// The paper's two deployment scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Edge device, power < 2 W.
    Edge,
    /// Cloud device, power < 20 W.
    Cloud,
}

impl Scenario {
    /// The platform instance for this scenario, with a fresh evaluation
    /// cache attached: every experiment driver that goes through
    /// `Scenario::platform()` memoizes PPA queries and reports hit
    /// rates in its run report.
    pub fn platform(&self) -> SpatialPlatform {
        let base = match self {
            Scenario::Edge => SpatialPlatform::edge(),
            Scenario::Cloud => SpatialPlatform::cloud(),
        };
        base.with_eval_cache(Arc::new(EvalCache::new()))
    }

    /// The scenario's power constraint in milliwatts.
    pub fn power_cap_mw(&self) -> f64 {
        match self {
            Scenario::Edge => 2_000.0,
            Scenario::Cloud => 20_000.0,
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Edge => "Edge Device (Power < 2W)",
            Scenario::Cloud => "Cloud Device (Power < 20W)",
        }
    }
}

/// One method's reported design point for one network.
#[derive(Debug, Clone)]
pub struct MethodRow {
    /// Method name.
    pub method: String,
    /// Min-Euclidean-distance PPA on the method's Pareto front
    /// (`None` when the method found no feasible design).
    pub ppa: Option<(f64, f64, f64)>,
    /// Simulated search cost in hours.
    pub cost_h: f64,
}

/// Comparison rows for one network.
#[derive(Debug, Clone)]
pub struct NetworkComparison {
    /// Network name.
    pub network: String,
    /// One row per method (HASCO, NSGAII, UNICO).
    pub rows: Vec<MethodRow>,
}

/// Picks each front's min-Euclidean-distance point under **common**
/// normalization bounds (computed over the union of all fronts), so the
/// reported knee points are comparable across methods.
fn min_euclid_common(fronts: &[Vec<Vec<f64>>]) -> Vec<Option<(f64, f64, f64)>> {
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for f in fronts {
        for y in f {
            for j in 0..3 {
                lo[j] = lo[j].min(y[j]);
                hi[j] = hi[j].max(y[j]);
            }
        }
    }
    fronts
        .iter()
        .map(|f| {
            f.iter()
                .map(|y| {
                    let d: f64 = (0..3)
                        .map(|j| {
                            let r = hi[j] - lo[j];
                            if r > 0.0 {
                                ((y[j] - lo[j]) / r).powi(2)
                            } else {
                                0.0
                            }
                        })
                        .sum();
                    (d, (y[0], y[1], y[2]))
                })
                .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(_, ppa)| ppa)
        })
        .collect()
}

/// Runs the three methods on one network and returns the comparison.
pub fn compare_on_network(
    scenario: Scenario,
    network: &Network,
    scale: &Scale,
    seed: u64,
) -> NetworkComparison {
    let platform = scenario.platform();
    let env = scenario_env(
        &platform,
        std::slice::from_ref(network),
        scale,
        Some(scenario.power_cap_mw()),
    );

    let hasco = run_hasco(
        &env,
        &HascoConfig {
            iterations: scale.hasco_iterations,
            inner_budget: scale.b_max,
            seed,
            workers: scale.workers,
            ..HascoConfig::default()
        },
    );
    let nsga = run_nsga2(
        &env,
        &Nsga2Config {
            population: scale.nsga_population,
            generations: scale.nsga_generations,
            inner_budget: scale.b_max,
            seed,
            workers: scale.workers,
            ..Nsga2Config::default()
        },
    );
    let unico = Unico::new(UnicoConfig {
        max_iter: scale.max_iter,
        batch: scale.batch,
        b_max: scale.b_max,
        seed,
        workers: scale.workers,
        ..UnicoConfig::default()
    })
    .run(&env);

    let fronts = vec![
        hasco.front.objectives(),
        nsga.front.objectives(),
        unico.front.objectives(),
    ];
    let knees = min_euclid_common(&fronts);
    NetworkComparison {
        network: network.name().to_string(),
        rows: vec![
            MethodRow {
                method: "HASCO".into(),
                ppa: knees[0],
                cost_h: hasco.wall_clock_s / 3600.0,
            },
            MethodRow {
                method: "NSGAII".into(),
                ppa: knees[1],
                cost_h: nsga.wall_clock_s / 3600.0,
            },
            MethodRow {
                method: "UNICO".into(),
                ppa: knees[2],
                cost_h: unico.wall_clock_s / 3600.0,
            },
        ],
    }
}

/// Runs the full table over the paper's seven networks.
pub fn run_table(scenario: Scenario, scale: &Scale, seed: u64) -> Vec<NetworkComparison> {
    zoo::edge_suite()
        .iter()
        .map(|net| compare_on_network(scenario, net, scale, seed))
        .collect()
}

/// Renders the table in the paper's layout.
pub fn render(scenario: Scenario, comparisons: &[NetworkComparison]) -> String {
    let mut t = Table::new(vec![
        "Network",
        "HASCO L(ms),P(mW),A(mm2)",
        "HASCO Cost(h)",
        "NSGAII L(ms),P(mW),A(mm2)",
        "NSGAII Cost(h)",
        "UNICO L(ms),P(mW),A(mm2)",
        "UNICO Cost(h)",
    ]);
    for c in comparisons {
        let cell = |m: &MethodRow| {
            m.ppa
                .map(|(l, p, a)| fmt_ppa(l, p, a))
                .unwrap_or_else(|| "infeasible".to_string())
        };
        let cost = |m: &MethodRow| fmt_hours(m.cost_h * 3600.0);
        t.row(vec![
            c.network.clone(),
            cell(&c.rows[0]),
            cost(&c.rows[0]),
            cell(&c.rows[1]),
            cost(&c.rows[1]),
            cell(&c.rows[2]),
            cost(&c.rows[2]),
        ]);
    }
    format!("{}\n{}", scenario.label(), t.to_markdown())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_comparison_on_one_network() {
        let c = compare_on_network(Scenario::Edge, &zoo::mobilenet_v1(), &Scale::smoke(), 7);
        assert_eq!(c.rows.len(), 3);
        assert_eq!(c.rows[2].method, "UNICO");
        // Every method consumed simulated time.
        assert!(c.rows.iter().all(|r| r.cost_h > 0.0));
        // At least one method found a feasible design at smoke scale.
        assert!(c.rows.iter().any(|r| r.ppa.is_some()));
    }

    #[test]
    fn scenario_properties() {
        assert_eq!(Scenario::Edge.power_cap_mw(), 2000.0);
        assert_eq!(Scenario::Cloud.power_cap_mw(), 20000.0);
        assert!(Scenario::Cloud.label().contains("20W"));
    }

    #[test]
    fn render_contains_networks() {
        let c = vec![NetworkComparison {
            network: "TestNet".into(),
            rows: vec![
                MethodRow {
                    method: "HASCO".into(),
                    ppa: Some((1e-3, 100.0, 2.0)),
                    cost_h: 1.0,
                },
                MethodRow {
                    method: "NSGAII".into(),
                    ppa: None,
                    cost_h: 2.0,
                },
                MethodRow {
                    method: "UNICO".into(),
                    ppa: Some((5e-4, 90.0, 1.5)),
                    cost_h: 0.5,
                },
            ],
        }];
        let md = render(Scenario::Edge, &c);
        assert!(md.contains("TestNet"));
        assert!(md.contains("infeasible"));
        assert!(md.contains("Edge Device"));
    }
}
