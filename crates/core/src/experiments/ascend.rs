//! Fig. 11: deployment of UNICO on the Ascend-like architecture.
//!
//! UNICO co-optimizes the Ascend-like core over the industrial suite
//! (UNet, FSRCNN at three resolutions, DLEU) under a 200 mm² area
//! constraint with `N = 8`, `MaxIter = 30`, `b_max = 200` (the paper's
//! parameters; the [`Scale`] scales them down for tests). The found
//! architecture is then compared per network against the expert default.

use std::sync::Arc;

use unico_camodel::{AscendConfig, AscendPlatform};
use unico_model::EvalCache;
use unico_search::{Assessment, CoSearchEnv, EnvConfig};
use unico_workloads::{zoo, Network};

use crate::{Unico, UnicoConfig};

use super::{validate_on_network, Scale};

/// Per-network savings of the UNICO-found design vs. the expert default.
#[derive(Debug, Clone)]
pub struct AscendRow {
    /// Network name.
    pub network: String,
    /// Expert-default PPA.
    pub default: Option<Assessment>,
    /// UNICO-found PPA.
    pub unico: Option<Assessment>,
    /// Latency reduction, percent (positive = UNICO faster).
    pub latency_saving_pct: Option<f64>,
    /// Power reduction, percent.
    pub power_saving_pct: Option<f64>,
}

/// Fig. 11 output.
#[derive(Debug, Clone)]
pub struct AscendResult {
    /// The expert default architecture.
    pub default_hw: AscendConfig,
    /// The architecture UNICO found.
    pub unico_hw: AscendConfig,
    /// Per-network comparisons.
    pub rows: Vec<AscendRow>,
    /// Simulated search cost, hours.
    pub search_cost_h: f64,
}

impl AscendResult {
    /// Mean power saving over the networks where both designs are
    /// feasible.
    pub fn mean_power_saving_pct(&self) -> Option<f64> {
        let v: Vec<f64> = self
            .rows
            .iter()
            .filter_map(|r| r.power_saving_pct)
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// `(ΔL0A, ΔL0B, ΔL0C)` in KiB of the found design vs. the default —
    /// the paper highlights that UNICO grows L0A while shrinking
    /// L0B/L0C.
    pub fn l0_deltas_kb(&self) -> (i64, i64, i64) {
        (
            i64::from(self.unico_hw.l0a_kb) - i64::from(self.default_hw.l0a_kb),
            i64::from(self.unico_hw.l0b_kb) - i64::from(self.default_hw.l0b_kb),
            i64::from(self.unico_hw.l0c_kb) - i64::from(self.default_hw.l0c_kb),
        )
    }
}

/// Runs the Fig. 11 study. `networks` defaults to the paper's suite when
/// `None`.
pub fn run_ascend(scale: &Scale, seed: u64, networks: Option<Vec<Network>>) -> AscendResult {
    // Cycle-level evaluations are the expensive ones; memoize them for
    // the whole study (search + both validation passes).
    let platform = AscendPlatform::new().with_eval_cache(Arc::new(EvalCache::new()));
    let suite = networks.unwrap_or_else(zoo::ascend_suite);
    let env = CoSearchEnv::new(
        &platform,
        &suite,
        EnvConfig {
            max_layers_per_network: scale.layers_per_network,
            power_cap_mw: None,
            area_cap_mm2: Some(200.0),
        },
    );

    // The paper uses N = 8, MaxIter = 30, b_max = 200 at full scale; the
    // Scale shrinks proportionally for tests.
    let result = Unico::new(UnicoConfig {
        max_iter: scale.max_iter,
        batch: scale.batch.min(8),
        b_max: scale.b_max.min(200),
        seed,
        workers: scale.workers,
        ..UnicoConfig::default()
    })
    .run(&env);

    let default_hw = AscendConfig::expert_default();
    // The co-optimization goal is "reduce both latency and power" vs the
    // expert default, so select the front design minimizing the *worst*
    // ratio to the default's training-suite PPA — that picks a design
    // dominating the default whenever one was found.
    let default_session = {
        let mut s = env.session(default_hw, seed.wrapping_add(999));
        s.advance_to(scale.b_max.min(200));
        s.assess()
    };
    let full_budget = result
        .evaluations
        .iter()
        .map(|r| r.budget_spent)
        .max()
        .unwrap_or(0);
    let unico_hw = result
        .evaluations
        .iter()
        .filter(|r| r.budget_spent >= full_budget)
        .filter_map(|r| r.assessment.map(|a| (r.hw, a)))
        .min_by(|(_, a), (_, b)| {
            let score = |x: &unico_search::Assessment| match &default_session {
                Some(d) => (x.latency_s / d.latency_s).max(x.power_mw / d.power_mw),
                None => x.latency_s,
            };
            score(a)
                .partial_cmp(&score(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(hw, _)| hw)
        .unwrap_or(default_hw);

    let rows = suite
        .iter()
        .enumerate()
        .map(|(k, net)| {
            let default = validate_on_network(
                &platform,
                default_hw,
                net,
                scale.layers_per_network,
                scale.validation_budget.min(200),
                seed.wrapping_add(10_000 + k as u64),
            );
            let unico = validate_on_network(
                &platform,
                unico_hw,
                net,
                scale.layers_per_network,
                scale.validation_budget.min(200),
                seed.wrapping_add(20_000 + k as u64),
            );
            let saving = |d: Option<&Assessment>,
                          u: Option<&Assessment>,
                          f: fn(&Assessment) -> f64| match (d, u) {
                (Some(d), Some(u)) => Some((f(d) - f(u)) / f(d) * 100.0),
                _ => None,
            };
            AscendRow {
                network: net.name().to_string(),
                latency_saving_pct: saving(default.as_ref(), unico.as_ref(), |a| a.latency_s),
                power_saving_pct: saving(default.as_ref(), unico.as_ref(), |a| a.power_mw),
                default,
                unico,
            }
        })
        .collect();

    AscendResult {
        default_hw,
        unico_hw,
        rows,
        search_cost_h: result.wall_clock_s / 3600.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l0_delta_math() {
        let r = AscendResult {
            default_hw: AscendConfig::expert_default(),
            unico_hw: AscendConfig {
                l0a_kb: 128,
                l0b_kb: 32,
                l0c_kb: 128,
                ..AscendConfig::expert_default()
            },
            rows: vec![],
            search_cost_h: 1.0,
        };
        assert_eq!(r.l0_deltas_kb(), (64, -32, -128));
        assert!(r.mean_power_saving_pct().is_none());
    }

    #[test]
    #[ignore = "several seconds; exercised by the fig11 binary and integration tests"]
    fn smoke_ascend() {
        let suite = vec![zoo::fsrcnn(160, 60)];
        let res = run_ascend(&Scale::smoke(), 5, Some(suite));
        assert_eq!(res.rows.len(), 1);
    }
}
