//! Fig. 10: feature-contribution ablation — HASCO vs SH+ChampionUpdate
//! vs MSH+ChampionUpdate vs full UNICO, compared by final hypervolume.

use unico_search::{run_hasco, HascoConfig, SearchTrace};
use unico_surrogate::hypervolume::hypervolume;
use unico_surrogate::pareto::non_dominated_indices;
use unico_workloads::zoo;

use crate::{Unico, UnicoConfig};

use super::table::Scenario;
use super::{scenario_env, Scale};

/// One ablation variant's outcome.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant name.
    pub variant: String,
    /// Hypervolume at the equal-time cutoff (one quarter of the
    /// earliest variant finish time) in normalized objective space —
    /// the mid-flight convergence comparison the paper's Fig. 10 makes.
    pub hypervolume: f64,
    /// Hypervolume at each variant's own final time.
    pub hypervolume_final: f64,
    /// Equal-time improvement over the HASCO baseline, percent.
    pub vs_hasco_pct: f64,
    /// Hours to reach the HASCO baseline's final hypervolume
    /// (`None` if never reached).
    pub hours_to_hasco_quality: Option<f64>,
}

/// Fig. 10 output.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// One row per variant, HASCO first.
    pub rows: Vec<AblationRow>,
}

/// Runs the four variants on the Fig. 10 workload set
/// ({UNet, SRGAN, BERT, ViT}).
pub fn run_ablation(scale: &Scale, seed: u64) -> AblationResult {
    let platform = Scenario::Edge.platform();
    let networks = vec![zoo::unet(), zoo::srgan(), zoo::bert_base(), zoo::vit_base()];
    let env = scenario_env(
        &platform,
        &networks,
        scale,
        Some(Scenario::Edge.power_cap_mw()),
    );

    let base_cfg = UnicoConfig {
        max_iter: scale.max_iter,
        batch: scale.batch,
        b_max: scale.b_max,
        seed,
        workers: scale.workers,
        ..UnicoConfig::default()
    };

    let hasco = run_hasco(
        &env,
        &HascoConfig {
            iterations: scale.hasco_iterations,
            inner_budget: scale.b_max,
            seed,
            workers: scale.workers,
            ..HascoConfig::default()
        },
    );
    let sh_champ = Unico::new(base_cfg.sh_champion()).run(&env);
    let msh_champ = Unico::new(base_cfg.msh_champion()).run(&env);
    let full = Unico::new(base_cfg).run(&env);

    let traces: Vec<(String, &SearchTrace)> = vec![
        ("HASCO".into(), &hasco.trace),
        ("SH+ChampionUpdate".into(), &sh_champ.trace),
        ("MSH+ChampionUpdate".into(), &msh_champ.trace),
        ("UNICO (MSH+HighFidelity+R)".into(), &full.trace),
    ];
    let rows = hypervolumes(&traces);
    AblationResult { rows }
}

/// Computes normalized final hypervolumes and percentage improvements
/// over the first (baseline) trace.
pub fn hypervolumes(traces: &[(String, &SearchTrace)]) -> Vec<AblationRow> {
    // Global normalization bounds.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for (_, t) in traces {
        for p in t.points() {
            for y in &p.front {
                for j in 0..3 {
                    lo[j] = lo[j].min(y[j]);
                    hi[j] = hi[j].max(y[j]);
                }
            }
        }
    }
    let norm = |y: &[f64]| -> Vec<f64> {
        (0..3)
            .map(|j| {
                let r = hi[j] - lo[j];
                if r > 0.0 {
                    (y[j] - lo[j]) / r
                } else {
                    0.0
                }
            })
            .collect()
    };
    let ref_point = vec![1.1, 1.1, 1.1];
    let hv_of_front = |front: &[Vec<f64>]| -> f64 {
        let pts: Vec<Vec<f64>> = front.iter().map(|y| norm(y)).collect();
        let keep = non_dominated_indices(&pts);
        let pts: Vec<Vec<f64>> = keep.into_iter().map(|i| pts[i].clone()).collect();
        hypervolume(&pts, &ref_point)
    };
    // Equal-time cutoff: a quarter of the earliest finish time, the
    // mid-flight regime where convergence speed differences show.
    let cutoff = traces
        .iter()
        .filter_map(|(_, t)| t.points().last().map(|p| p.seconds))
        .fold(f64::INFINITY, f64::min)
        * 0.25;
    let hv_at_cutoff = |t: &SearchTrace| -> f64 {
        t.points()
            .iter()
            .rfind(|p| p.seconds <= cutoff + 1e-9)
            .map(|p| hv_of_front(&p.front))
            .unwrap_or(0.0)
    };
    // Time-to-target: hours until a variant reaches the baseline's
    // final hypervolume.
    let target = traces[0]
        .1
        .final_front()
        .map(hv_of_front)
        .unwrap_or(f64::INFINITY);
    let time_to_target = |t: &SearchTrace| -> Option<f64> {
        t.points()
            .iter()
            .find(|p| hv_of_front(&p.front) >= target - 1e-12)
            .map(|p| p.seconds / 3600.0)
    };
    let base = hv_at_cutoff(traces[0].1);
    traces
        .iter()
        .map(|(name, t)| {
            let hv = hv_at_cutoff(t);
            let vs_hasco_pct = if base > 0.0 {
                (hv - base) / base * 100.0
            } else {
                0.0
            };
            AblationRow {
                variant: name.clone(),
                hypervolume: hv,
                hypervolume_final: t.final_front().map(hv_of_front).unwrap_or(0.0),
                vs_hasco_pct,
                hours_to_hasco_quality: time_to_target(t),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypervolume_rows_relative_to_baseline() {
        let mut a = SearchTrace::new();
        a.record(0.1, vec![vec![2.0, 2.0, 2.0]]);
        a.record(1.0, vec![vec![2.0, 2.0, 2.0]]);
        let mut b = SearchTrace::new();
        b.record(0.1, vec![vec![1.0, 1.0, 1.0]]);
        b.record(1.0, vec![vec![1.0, 1.0, 1.0]]);
        let traces: Vec<(String, &SearchTrace)> = vec![("base".into(), &a), ("better".into(), &b)];
        let rows = hypervolumes(&traces);
        assert_eq!(rows[0].vs_hasco_pct, 0.0);
        assert!(rows[1].vs_hasco_pct > 0.0);
        assert!(rows[1].hypervolume > rows[0].hypervolume);
        assert!(rows[1].hypervolume_final > rows[0].hypervolume_final);
        // The better variant reaches the baseline's final quality at its
        // very first snapshot.
        assert_eq!(rows[1].hours_to_hasco_quality, Some(0.1 / 3600.0));
        assert_eq!(rows[0].hours_to_hasco_quality, Some(0.1 / 3600.0));
    }

    #[test]
    fn never_reaching_target_is_none() {
        let mut strong = SearchTrace::new();
        strong.record(0.1, vec![vec![0.1, 0.1, 0.1]]);
        strong.record(1.0, vec![vec![0.1, 0.1, 0.1]]);
        let mut weak = SearchTrace::new();
        weak.record(0.1, vec![vec![0.9, 0.9, 0.9]]);
        weak.record(1.0, vec![vec![0.9, 0.9, 0.9]]);
        let traces: Vec<(String, &SearchTrace)> =
            vec![("strong".into(), &strong), ("weak".into(), &weak)];
        let rows = hypervolumes(&traces);
        assert!(rows[1].hours_to_hasco_quality.is_none());
    }
}
