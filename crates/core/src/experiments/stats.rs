//! Multi-seed statistics for experiment drivers.
//!
//! Single-seed co-search outcomes carry real variance (the paper reports
//! single runs; we additionally support `--repeats N` on the experiment
//! binaries). This module is the tiny aggregation layer: run a driver
//! across seeds and summarize any scalar it produces.

use std::fmt;

/// Mean / standard deviation / count of a scalar across repeats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Number of samples.
    pub n: usize,
}

impl Stats {
    /// Summarizes a slice of samples.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Stats {
        assert!(!values.is_empty(), "stats of an empty sample");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let std = if n > 1 {
            (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        Stats { mean, std, n }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.n > 1 {
            write!(f, "{:.4} ± {:.4} (n={})", self.mean, self.std, self.n)
        } else {
            write!(f, "{:.4}", self.mean)
        }
    }
}

/// Runs `f` once per seed (`base_seed, base_seed+1, …`) and collects the
/// results.
pub fn across_seeds<T>(base_seed: u64, repeats: usize, mut f: impl FnMut(u64) -> T) -> Vec<T> {
    (0..repeats.max(1))
        .map(|i| f(base_seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_mean_and_std() {
        let s = Stats::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert_eq!(s.n, 3);
        assert!(s.to_string().contains("±"));
    }

    #[test]
    fn single_sample_has_zero_std() {
        let s = Stats::of(&[5.0]);
        assert_eq!(s.std, 0.0);
        assert!(!s.to_string().contains("±"));
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = Stats::of(&[]);
    }

    #[test]
    fn across_seeds_enumerates() {
        let seeds = across_seeds(10, 3, |s| s);
        assert_eq!(seeds, vec![10, 11, 12]);
        assert_eq!(across_seeds(0, 0, |s| s).len(), 1, "repeats clamp to 1");
    }
}
