//! Fig. 8: does the robustness metric `R` predict generalization?
//!
//! Procedure (paper §4.3): run UNICO *without* `R` on the training
//! networks, pick Pareto pairs with similar PPA but different `R`, then
//! validate every paired design on unseen networks with fresh mapping
//! searches. The design with smaller `R` should achieve lower latency on
//! the validation set.

use unico_model::HwConfig;
use unico_workloads::{zoo, Network};

use crate::{Unico, UnicoConfig};

use super::table::Scenario;
use super::{scenario_env, validate_on_network, Scale};

/// One compared pair of Pareto designs.
#[derive(Debug, Clone)]
pub struct RobustPair {
    /// Front indices (for reporting).
    pub ids: (usize, usize),
    /// The two configurations.
    pub hw: (HwConfig, HwConfig),
    /// Robustness metric of each design (lower = more robust).
    pub robustness: (f64, f64),
    /// Training-set latency of each design (seconds).
    pub train_latency_s: (f64, f64),
    /// Mean validation latency of each design across unseen networks.
    pub validation_latency_s: (f64, f64),
}

impl RobustPair {
    /// Whether the more robust design (smaller `R`) also achieved lower
    /// mean validation latency — the correlation Fig. 8 demonstrates.
    pub fn robust_wins(&self) -> bool {
        let (ra, rb) = self.robustness;
        let (va, vb) = self.validation_latency_s;
        if ra <= rb {
            va <= vb
        } else {
            vb <= va
        }
    }
}

/// Fig. 8 output.
#[derive(Debug, Clone)]
pub struct RobustPairsResult {
    /// The compared pairs.
    pub pairs: Vec<RobustPair>,
    /// Size of the Pareto front the pairs were drawn from.
    pub front_size: usize,
}

/// Runs the Fig. 8 study. `max_pairs` bounds how many similar-PPA pairs
/// are validated (the paper uses 3).
pub fn run_robust_pairs(
    scale: &Scale,
    seed: u64,
    max_pairs: usize,
    similarity: f64,
) -> RobustPairsResult {
    let platform = Scenario::Edge.platform();
    let train = zoo::robustness_train_suite();
    let env = scenario_env(
        &platform,
        &train,
        scale,
        Some(Scenario::Edge.power_cap_mw()),
    );

    // Step 1: UNICO without the sensitivity objective.
    let result = Unico::new(
        UnicoConfig {
            max_iter: scale.max_iter,
            batch: scale.batch,
            b_max: scale.b_max,
            seed,
            workers: scale.workers,
            ..UnicoConfig::default()
        }
        .without_robustness(),
    )
    .run(&env);

    // Step 2/3: candidate pairs from the front with similar PPA but
    // recorded R values.
    // Only full-budget designs carry trustworthy R estimates (early-
    // stopped histories are short and noisy).
    let full_budget = result
        .evaluations
        .iter()
        .map(|r| r.budget_spent)
        .max()
        .unwrap_or(0);
    let entries: Vec<(usize, &crate::HwRecord<HwConfig>)> = result
        .front
        .iter()
        .map(|(_, &idx)| (idx, &result.evaluations[idx]))
        .filter(|(_, r)| {
            r.robustness.is_some() && r.assessment.is_some() && r.budget_spent >= full_budget
        })
        .collect();
    let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..entries.len() {
        for j in i + 1..entries.len() {
            let a = entries[i].1.assessment.expect("filtered");
            let b = entries[j].1.assessment.expect("filtered");
            let rel = |x: f64, y: f64| (x - y).abs() / x.max(y).max(1e-12);
            let collective = (rel(a.latency_s, b.latency_s)
                + rel(a.power_mw, b.power_mw)
                + rel(a.area_mm2, b.area_mm2))
                / 3.0;
            if collective <= similarity {
                let (ra, rb) = (
                    entries[i].1.robustness.expect("filtered"),
                    entries[j].1.robustness.expect("filtered"),
                );
                let dr = (ra - rb).abs();
                // Require a real robustness gap, or the comparison is a
                // coin flip.
                if dr >= 0.05 {
                    candidates.push((i, j, dr));
                }
            }
        }
    }
    // Prefer pairs with the largest robustness gap.
    candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));

    // Step 4/5: validate each selected pair on the unseen networks.
    let validation: Vec<Network> = zoo::robustness_validation_suite();
    let mut pairs = Vec::new();
    let mut used: Vec<usize> = Vec::new();
    for (i, j, _) in candidates {
        if pairs.len() >= max_pairs {
            break;
        }
        if used.contains(&i) || used.contains(&j) {
            continue;
        }
        let (idx_a, rec_a) = entries[i];
        let (idx_b, rec_b) = entries[j];
        let mean_val = |hw: HwConfig, salt: u64| -> Option<f64> {
            let mut sum = 0.0;
            let mut n = 0usize;
            for (k, net) in validation.iter().enumerate() {
                // Average two independent mapping searches per network to
                // damp search-seed noise.
                for rep in 0..2u64 {
                    let a = validate_on_network(
                        &platform,
                        hw,
                        net,
                        scale.layers_per_network,
                        scale.validation_budget,
                        seed.wrapping_add(salt * 97 + 2 * k as u64 + rep),
                    )?;
                    sum += a.latency_s;
                    n += 1;
                }
            }
            Some(sum / n as f64)
        };
        let (Some(va), Some(vb)) = (mean_val(rec_a.hw, i as u64), mean_val(rec_b.hw, j as u64))
        else {
            continue;
        };
        used.push(i);
        used.push(j);
        pairs.push(RobustPair {
            ids: (idx_a, idx_b),
            hw: (rec_a.hw, rec_b.hw),
            robustness: (
                rec_a.robustness.expect("filtered"),
                rec_b.robustness.expect("filtered"),
            ),
            train_latency_s: (
                rec_a.assessment.expect("filtered").latency_s,
                rec_b.assessment.expect("filtered").latency_s,
            ),
            validation_latency_s: (va, vb),
        });
    }

    RobustPairsResult {
        pairs,
        front_size: result.front.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_win_logic() {
        let p = RobustPair {
            ids: (0, 1),
            hw: (
                HwConfig::new(
                    2,
                    2,
                    512,
                    65536,
                    64,
                    unico_model::Dataflow::WeightStationary,
                ),
                HwConfig::new(
                    4,
                    4,
                    512,
                    65536,
                    64,
                    unico_model::Dataflow::WeightStationary,
                ),
            ),
            robustness: (0.1, 0.5),
            train_latency_s: (1.0, 1.0),
            validation_latency_s: (0.8, 1.2),
        };
        assert!(p.robust_wins());
        let q = RobustPair {
            validation_latency_s: (1.2, 0.8),
            ..p
        };
        assert!(!q.robust_wins());
    }

    #[test]
    #[ignore = "multi-minute at default scale; run explicitly"]
    fn smoke_robust_pairs() {
        let res = run_robust_pairs(&Scale::smoke(), 3, 2, 0.6);
        assert!(res.front_size >= 1);
    }
}
