//! The UNICO co-optimization algorithm (paper Algorithm 1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use unico_model::{EvalCache, Platform};
use unico_search::sh::{self, ShConfig};
use unico_search::{
    Assessment, CacheReport, CoSearchEnv, Counter, HwSession, MappingEngine, RunReport,
    SearchTrace, SimClock, Telemetry,
};
use unico_surrogate::pareto::ParetoFront;
use unico_surrogate::scalarize::{normalize_columns, parego, sample_simplex};
use unico_surrogate::{select_batch, AcquisitionKind, GaussianProcess, KernelKind};

use crate::robustness::aggregate_robustness;

/// Configuration of a UNICO run. The defaults match the paper's
/// open-source-platform experiments (`N = 30`, `b_max = 300`,
/// `p = 0.15 N`, `ρ = 0.2`, `α = 0.05`).
#[derive(Debug, Clone, Copy)]
pub struct UnicoConfig {
    /// Maximum MOBO iterations (`MaxIter`).
    pub max_iter: usize,
    /// Hardware batch size per iteration (`N`).
    pub batch: usize,
    /// Maximum per-job mapping-search budget (`b_max`).
    pub b_max: u64,
    /// AUC promotion share of MSH (`p/N`); `0` degrades MSH to plain SH.
    pub auc_fraction: f64,
    /// Use the high-fidelity update rule; `false` degrades to champion
    /// update (only the batch-best sample feeds the surrogate).
    pub high_fidelity: bool,
    /// Include the robustness metric `R` as the fourth objective.
    pub robustness_objective: bool,
    /// Right-tail percentile for the sub-optimal mapping (`α`).
    pub alpha: f64,
    /// ParEGO augmentation coefficient (`ρ`).
    pub rho: f64,
    /// Random exploration share of each batch.
    pub random_fraction: f64,
    /// Acquisition candidate-pool size.
    pub candidate_pool: usize,
    /// Percentile (of accepted distances) defining the Upper Update
    /// Limit.
    pub uul_percentile: f64,
    /// RNG seed.
    pub seed: u64,
    /// Parallel workers for cost accounting.
    pub workers: u32,
}

impl Default for UnicoConfig {
    fn default() -> Self {
        UnicoConfig {
            max_iter: 20,
            batch: 30,
            b_max: 300,
            auc_fraction: 0.15,
            high_fidelity: true,
            robustness_objective: true,
            alpha: 0.05,
            rho: 0.2,
            random_fraction: 0.25,
            candidate_pool: 256,
            uul_percentile: 0.95,
            seed: 0,
            workers: 16,
        }
    }
}

impl UnicoConfig {
    /// Ablation: plain SH + champion update (no robustness objective).
    pub fn sh_champion(self) -> Self {
        UnicoConfig {
            auc_fraction: 0.0,
            high_fidelity: false,
            robustness_objective: false,
            ..self
        }
    }

    /// Ablation: modified SH + champion update.
    pub fn msh_champion(self) -> Self {
        UnicoConfig {
            auc_fraction: 0.15,
            high_fidelity: false,
            robustness_objective: false,
            ..self
        }
    }

    /// UNICO without the robustness objective (used by the paper's
    /// Fig. 8 study).
    pub fn without_robustness(self) -> Self {
        UnicoConfig {
            robustness_objective: false,
            ..self
        }
    }
}

/// Everything recorded about one evaluated hardware configuration.
#[derive(Debug, Clone)]
pub struct HwRecord<H> {
    /// The configuration.
    pub hw: H,
    /// PPA assessment at the budget the candidate reached (`None` if no
    /// feasible mapping was found or a constraint was violated).
    pub assessment: Option<Assessment>,
    /// Aggregated robustness metric `R` (lower = more robust).
    pub robustness: Option<f64>,
    /// Per-job budget this candidate's mapping search consumed.
    pub budget_spent: u64,
    /// Iteration in which the candidate was evaluated.
    pub iteration: usize,
    /// Whether the sample passed the high-fidelity filter into the
    /// surrogate training set.
    pub fed_surrogate: bool,
}

/// Result of a UNICO run.
#[derive(Debug, Clone)]
pub struct UnicoResult<H> {
    /// PPA Pareto front; payloads index into [`UnicoResult::evaluations`].
    pub front: ParetoFront<usize>,
    /// Every evaluated configuration, in evaluation order.
    pub evaluations: Vec<HwRecord<H>>,
    /// Front snapshots over simulated wall-clock time.
    pub trace: SearchTrace,
    /// Total simulated wall-clock seconds.
    pub wall_clock_s: f64,
    /// Number of hardware configurations evaluated.
    pub hw_evals: usize,
    /// Structured telemetry snapshot of this run: phase wall-clock
    /// timers, evaluation counters, and the evaluation-cache section
    /// when a cache is attached (schema `unico.run_report.v2`).
    pub report: RunReport,
}

impl<H> UnicoResult<H> {
    /// The record whose PPA minimizes Euclidean distance to the origin on
    /// the normalized front — the paper's reported design point.
    pub fn min_euclidean_record(&self) -> Option<&HwRecord<H>> {
        self.front
            .min_euclidean()
            .map(|(_, &idx)| &self.evaluations[idx])
    }

    /// The robustness-aware knee: min-Euclidean distance over the
    /// normalized **four**-objective vectors
    /// `(latency, power, area, R)` of the front, restricted to designs
    /// whose mapping search ran to the full budget. This is the design
    /// UNICO deploys when generalization matters (paper §4.4).
    pub fn robust_knee(&self) -> Option<&HwRecord<H>> {
        let full_budget = self
            .evaluations
            .iter()
            .map(|r| r.budget_spent)
            .max()
            .unwrap_or(0);
        let candidates: Vec<(usize, Vec<f64>)> = self
            .front
            .iter()
            .filter_map(|(y, &idx)| {
                let rec = &self.evaluations[idx];
                if rec.budget_spent < full_budget {
                    return None;
                }
                let r = rec.robustness?;
                let mut v = y.to_vec();
                v.push(r);
                Some((idx, v))
            })
            .collect();
        if candidates.is_empty() {
            return self.min_euclidean_record();
        }
        let rows: Vec<Vec<f64>> = candidates.iter().map(|(_, v)| v.clone()).collect();
        let normalized = unico_surrogate::scalarize::normalize_columns(&rows);
        let best = normalized
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da: f64 = a.iter().map(|v| v * v).sum();
                let db: f64 = b.iter().map(|v| v * v).sum();
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| candidates[i].0)?;
        Some(&self.evaluations[best])
    }
}

/// The UNICO co-optimizer.
#[derive(Debug, Clone)]
pub struct Unico {
    cfg: UnicoConfig,
}

impl Unico {
    /// Creates the optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or `max_iter == 0`.
    pub fn new(cfg: UnicoConfig) -> Self {
        assert!(cfg.batch > 0, "batch must be positive");
        assert!(cfg.max_iter > 0, "max_iter must be positive");
        Unico { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &UnicoConfig {
        &self.cfg
    }

    /// Runs Algorithm 1 on the environment and returns the Pareto front
    /// of hardware configurations with full evaluation records.
    pub fn run<P: Platform>(&self, env: &CoSearchEnv<'_, P>) -> UnicoResult<P::Hw>
    where
        P::Hw: Send,
    {
        let cfg = &self.cfg;
        let obj_dim = if cfg.robustness_objective { 4 } else { 3 };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut clock = SimClock::new(cfg.workers);
        // One persistent worker pool for the whole run: every SH round of
        // every MOBO iteration queues jobs here instead of respawning
        // threads.
        let telemetry = Telemetry::new();
        let engine = MappingEngine::new((cfg.workers as usize).max(1));
        let cache_start = env.platform().eval_cache().map(EvalCache::stats);
        let mut trace = SearchTrace::new();
        let mut front: ParetoFront<usize> = ParetoFront::new();
        let mut evaluations: Vec<HwRecord<P::Hw>> = Vec::new();

        // All feasible samples (for v_best recomputation) and the
        // high-fidelity surrogate training subset.
        let mut all_xs: Vec<Vec<f64>> = Vec::new();
        let mut all_ys: Vec<Vec<f64>> = Vec::new();
        let mut hf_xs: Vec<Vec<f64>> = Vec::new();
        let mut hf_ys: Vec<Vec<f64>> = Vec::new();
        // Accepted ParEGO-distance set D and its adaptive threshold.
        let mut accepted_d: Vec<f64> = Vec::new();
        let mut uul = f64::INFINITY;

        for iteration in 0..cfg.max_iter {
            // ---- Line 4: sample a batch of N hardware configurations. ----
            let front_hw: Vec<P::Hw> = front
                .iter()
                .map(|(_, &idx)| evaluations[idx].hw.clone())
                .collect();
            let batch_hw = telemetry.time("sampling", || {
                self.sample_batch(
                    env, &hf_xs, &hf_ys, &front_hw, &mut rng, &mut clock, &telemetry,
                )
            });

            // ---- Lines 5–9: adaptive SW mapping search with MSH. ----
            let mut sessions: Vec<HwSession<'_, P>> = batch_hw
                .into_iter()
                .enumerate()
                .map(|(i, hw)| {
                    env.session(hw, cfg.seed.wrapping_add((iteration * 1009 + i) as u64))
                })
                .collect();
            let sh_cfg = ShConfig {
                b_max: cfg.b_max,
                auc_fraction: cfg.auc_fraction,
                min_budget: 8,
                workers: cfg.workers as usize,
            };
            telemetry.time("mapping_search", || {
                sh::run_with_engine(&mut sessions, &sh_cfg, &engine, &telemetry)
            });
            telemetry.add(
                Counter::MappingEvals,
                sessions.iter().map(HwSession::total_steps).sum(),
            );
            telemetry.add(Counter::HwEvals, sessions.len() as u64);
            let cpu: f64 = sessions.iter().map(HwSession::cost_seconds).sum();
            clock.charge(cpu, (sessions.len() * env.num_jobs()) as u32);

            // ---- Assess the batch: PPA + robustness. ----
            let mut batch_records: Vec<usize> = Vec::with_capacity(sessions.len());
            for s in &sessions {
                let assessment = s.assess();
                let robustness = aggregate_robustness(&s.job_histories(), cfg.alpha);
                let idx = evaluations.len();
                if let Some(a) = &assessment {
                    front.offer(a.objectives(), idx);
                    let mut y = a.objectives();
                    if cfg.robustness_objective {
                        y.push(robustness.unwrap_or(0.0));
                    }
                    all_xs.push(env.platform().encode(s.hw()));
                    all_ys.push(y);
                }
                evaluations.push(HwRecord {
                    hw: s.hw().clone(),
                    assessment,
                    robustness,
                    budget_spent: s.spent(),
                    iteration,
                    fed_surrogate: false,
                });
                batch_records.push(idx);
            }

            // ---- Lines 10–11: high-fidelity surrogate update. ----
            if !all_ys.is_empty() {
                let weights = sample_simplex(&mut rng, obj_dim);
                let normalized = normalize_columns(&all_ys);
                let scalars: Vec<f64> = normalized
                    .iter()
                    .map(|y| parego(y, &weights, cfg.rho))
                    .collect();
                let v_best = scalars.iter().copied().fold(f64::INFINITY, f64::min);
                // Map feasible batch members to their position in all_ys.
                let feasible_batch: Vec<(usize, usize)> = {
                    let mut pos = all_ys.len();
                    let feasible_count = batch_records
                        .iter()
                        .filter(|&&i| evaluations[i].assessment.is_some())
                        .count();
                    pos -= feasible_count;
                    batch_records
                        .iter()
                        .filter(|&&i| evaluations[i].assessment.is_some())
                        .map(|&i| {
                            let p = pos;
                            pos += 1;
                            (i, p)
                        })
                        .collect()
                };
                if cfg.high_fidelity {
                    let mut new_d = Vec::new();
                    for &(rec_idx, ys_idx) in &feasible_batch {
                        let d = (scalars[ys_idx] - v_best).abs();
                        if d <= uul {
                            hf_xs.push(all_xs[ys_idx].clone());
                            hf_ys.push(all_ys[ys_idx].clone());
                            evaluations[rec_idx].fed_surrogate = true;
                            new_d.push(d);
                            telemetry.add(Counter::UulAccepted, 1);
                        } else {
                            telemetry.add(Counter::UulRejected, 1);
                        }
                    }
                    accepted_d.extend(new_d);
                    uul = percentile(&accepted_d, cfg.uul_percentile).unwrap_or(f64::INFINITY);
                    // Bound the GP training set (keep the newest points —
                    // UUL already biases selection toward high quality).
                    const HF_CAP: usize = 400;
                    if hf_xs.len() > HF_CAP {
                        let drop = hf_xs.len() - HF_CAP;
                        hf_xs.drain(..drop);
                        hf_ys.drain(..drop);
                    }
                } else if let Some(&(rec_idx, ys_idx)) = feasible_batch.iter().min_by(|a, b| {
                    scalars[a.1]
                        .partial_cmp(&scalars[b.1])
                        .unwrap_or(std::cmp::Ordering::Equal)
                }) {
                    // Champion update: only the batch-best sample.
                    hf_xs.push(all_xs[ys_idx].clone());
                    hf_ys.push(all_ys[ys_idx].clone());
                    evaluations[rec_idx].fed_surrogate = true;
                }
            }

            // ---- Line 12: update HW Pareto front snapshot. ----
            trace.record(clock.seconds(), front.objectives());
        }

        let m = engine.metrics();
        telemetry.add(Counter::EngineJobs, m.jobs_executed);
        telemetry.add(Counter::EngineBatches, m.batches);
        telemetry.add(Counter::EnginePanics, m.panics_contained);
        telemetry.add(Counter::EngineThreadsSpawned, m.threads_spawned);
        let cache_delta = match (env.platform().eval_cache(), cache_start) {
            (Some(cache), Some(start)) => {
                let d = cache.stats().delta_since(&start);
                telemetry.add_cache_stats(d);
                Some(d)
            }
            _ => None,
        };
        let mut report = telemetry.report("unico.run");
        report.cache = cache_delta.map(CacheReport::from);
        Telemetry::global().absorb(&telemetry);

        UnicoResult {
            front,
            evaluations,
            trace,
            wall_clock_s: clock.seconds(),
            hw_evals: self.cfg.max_iter * self.cfg.batch,
            report,
        }
    }

    /// Batch acquisition: EI on the ParEGO-scalarized GP over the
    /// high-fidelity training set, plus a random exploration share. The
    /// candidate pool mixes uniform samples with local perturbations of
    /// current Pareto designs so the acquisition can exploit the
    /// incumbent region.
    #[allow(clippy::too_many_arguments)]
    fn sample_batch<P: Platform>(
        &self,
        env: &CoSearchEnv<'_, P>,
        hf_xs: &[Vec<f64>],
        hf_ys: &[Vec<f64>],
        front_hw: &[P::Hw],
        rng: &mut StdRng,
        clock: &mut SimClock,
        telemetry: &Telemetry,
    ) -> Vec<P::Hw> {
        let cfg = &self.cfg;
        let n_random = ((cfg.batch as f64) * cfg.random_fraction).ceil() as usize;
        let n_model = cfg.batch.saturating_sub(n_random);
        let mut batch: Vec<P::Hw> = Vec::with_capacity(cfg.batch);
        if n_model > 0 && hf_xs.len() >= 4 {
            let obj_dim = hf_ys[0].len();
            let weights = sample_simplex(rng, obj_dim);
            let normalized = normalize_columns(hf_ys);
            let targets: Vec<f64> = normalized
                .iter()
                .map(|y| parego(y, &weights, cfg.rho))
                .collect();
            let best = targets.iter().copied().fold(f64::INFINITY, f64::min);
            let mut gp = GaussianProcess::new(KernelKind::Matern52, env.platform().feature_dim());
            let fitted = telemetry.time("gp_fit", || gp.fit(hf_xs, &targets, rng).is_ok());
            telemetry.add(Counter::GpFits, 1);
            if fitted {
                clock.charge_sequential(2.0);
                let n_local = if front_hw.is_empty() {
                    0
                } else {
                    cfg.candidate_pool / 4
                };
                let mut pool: Vec<P::Hw> = (0..cfg.candidate_pool - n_local)
                    .map(|_| env.platform().sample_hw(rng))
                    .collect();
                for _ in 0..n_local {
                    let seed_hw = &front_hw[rng.gen_range(0..front_hw.len())];
                    let mut cand = env.platform().perturb_hw(rng, seed_hw);
                    if rng.gen_bool(0.5) {
                        cand = env.platform().perturb_hw(rng, &cand);
                    }
                    pool.push(cand);
                }
                let feats: Vec<Vec<f64>> = pool.iter().map(|h| env.platform().encode(h)).collect();
                let picks = telemetry.time("acquisition", || {
                    select_batch(
                        gp,
                        &feats,
                        best,
                        AcquisitionKind::ExpectedImprovement,
                        n_model,
                    )
                });
                for i in picks {
                    batch.push(pool[i].clone());
                }
            }
        }
        while batch.len() < cfg.batch {
            batch.push(env.platform().sample_hw(rng));
        }
        batch
    }
}

/// The `q`-quantile of `values` (linear index, values unsorted).
fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((q.clamp(0.0, 1.0)) * (v.len() - 1) as f64).round() as usize;
    Some(v[idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use unico_model::SpatialPlatform;
    use unico_search::EnvConfig;
    use unico_workloads::zoo;

    fn smoke_cfg() -> UnicoConfig {
        UnicoConfig {
            max_iter: 3,
            batch: 6,
            b_max: 32,
            candidate_pool: 32,
            ..UnicoConfig::default()
        }
    }

    fn env(platform: &SpatialPlatform) -> CoSearchEnv<'_, SpatialPlatform> {
        CoSearchEnv::new(
            platform,
            &[zoo::mobilenet_v1()],
            EnvConfig {
                max_layers_per_network: 1,
                power_cap_mw: None,
                area_cap_mm2: None,
            },
        )
    }

    #[test]
    fn unico_smoke_run() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let res = Unico::new(smoke_cfg()).run(&e);
        assert_eq!(res.hw_evals, 18);
        assert_eq!(res.evaluations.len(), 18);
        assert_eq!(res.trace.points().len(), 3);
        assert!(!res.front.is_empty());
        assert!(res.wall_clock_s > 0.0);
        let rec = res.min_euclidean_record().expect("front non-empty");
        assert!(rec.assessment.is_some());
    }

    #[test]
    fn deterministic_under_seed() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let a = Unico::new(smoke_cfg()).run(&e);
        let b = Unico::new(smoke_cfg()).run(&e);
        assert_eq!(a.front.objectives(), b.front.objectives());
        assert_eq!(a.wall_clock_s, b.wall_clock_s);
    }

    #[test]
    fn high_fidelity_feeds_subset_champion_feeds_one_per_iter() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let hf = Unico::new(smoke_cfg()).run(&e);
        let fed_hf = hf.evaluations.iter().filter(|r| r.fed_surrogate).count();
        assert!(fed_hf >= 1);

        let champ = Unico::new(smoke_cfg().msh_champion()).run(&e);
        let fed_champ = champ.evaluations.iter().filter(|r| r.fed_surrogate).count();
        assert!(fed_champ <= 3, "champion update feeds ≤ 1 per iteration");
    }

    #[test]
    fn msh_early_stops_some_candidates() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let res = Unico::new(smoke_cfg()).run(&e);
        let spent: Vec<u64> = res.evaluations.iter().map(|r| r.budget_spent).collect();
        assert!(spent.contains(&32), "finalists reach b_max");
        assert!(spent.iter().any(|&s| s < 32), "some candidates stop early");
    }

    #[test]
    fn robustness_recorded_for_feasible_candidates() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let res = Unico::new(smoke_cfg()).run(&e);
        let with_r = res
            .evaluations
            .iter()
            .filter(|r| r.assessment.is_some() && r.robustness.is_some())
            .count();
        assert!(with_r > 0, "feasible candidates must carry R");
    }

    #[test]
    fn ablation_configs() {
        let c = smoke_cfg();
        let shc = c.sh_champion();
        assert_eq!(shc.auc_fraction, 0.0);
        assert!(!shc.high_fidelity);
        let mshc = c.msh_champion();
        assert!(mshc.auc_fraction > 0.0);
        assert!(!mshc.high_fidelity);
        assert!(!c.without_robustness().robustness_objective);
    }

    #[test]
    fn run_report_carries_phases_and_counters() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let res = Unico::new(smoke_cfg()).run(&e);
        let r = &res.report;
        assert_eq!(r.name, "unico.run");
        assert_eq!(r.counters["hw_evals"], 18);
        assert!(r.counters["mapping_evals"] > 0);
        assert!(r.counters["sh_rounds"] > 0);
        assert_eq!(
            r.counters["engine_threads_spawned"], 16,
            "one pool for the whole run, spawned once"
        );
        assert!(r.counters["engine_batches"] >= r.counters["sh_rounds"]);
        assert!(r.phases_s.contains_key("sampling"));
        assert!(r.phases_s.contains_key("mapping_search"));
        assert!(r.to_json().contains("unico.run_report.v2"));
        // No cache attached to the stock edge platform here.
        assert!(r.cache.is_none());
        assert!(r.to_json().contains("\"cache\":null"));
    }

    #[test]
    fn run_report_carries_cache_section_when_cache_attached() {
        use std::sync::Arc;
        let cache = Arc::new(EvalCache::new());
        let p = SpatialPlatform::edge().with_eval_cache(Arc::clone(&cache));
        let e = env(&p);
        let res = Unico::new(smoke_cfg()).run(&e);
        let c = res.report.cache.expect("cache section present");
        assert!(c.misses > 0, "first run must compute");
        assert!(c.hits > 0, "SH re-assessments must hit");
        assert_eq!(c.hits + c.misses, cache.stats().lookups());
        assert_eq!(res.report.counters["cache_hits"], c.hits);
        assert_eq!(res.report.counters["cache_misses"], c.misses);
        assert!(res.report.to_json().contains("\"cache\":{\"hits\":"));
    }

    #[test]
    fn percentile_helper() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 0.0), Some(1.0));
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 1.0), Some(3.0));
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 0.5), Some(2.0));
    }
}
