//! The UNICO co-optimization algorithm (paper Algorithm 1).

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use unico_model::{BatchStats, EvalCache, Platform};
use unico_search::sh::{self, ShConfig};
use unico_search::{
    Assessment, CacheReport, CacheStats, CoSearchEnv, Counter, FaultContext, HwSession,
    MappingEngine, RunReport, SearchTrace, SimClock, Telemetry, TracePoint,
};
use unico_surrogate::pareto::ParetoFront;
use unico_surrogate::scalarize::{normalize_columns, parego, sample_simplex};
use unico_surrogate::{select_batch, AcquisitionKind, GaussianProcess, KernelKind};

use crate::checkpoint::{
    CacheSnapshot, Checkpoint, CheckpointError, CheckpointPolicy, EvalSnapshot, FrontEntry,
    GpHypers, NetworkSnapshot, TraceSnapshot,
};
use crate::robustness::aggregate_robustness;

/// Configuration of a UNICO run. The defaults match the paper's
/// open-source-platform experiments (`N = 30`, `b_max = 300`,
/// `p = 0.15 N`, `ρ = 0.2`, `α = 0.05`).
#[derive(Debug, Clone, Copy)]
pub struct UnicoConfig {
    /// Maximum MOBO iterations (`MaxIter`).
    pub max_iter: usize,
    /// Hardware batch size per iteration (`N`).
    pub batch: usize,
    /// Maximum per-job mapping-search budget (`b_max`).
    pub b_max: u64,
    /// AUC promotion share of MSH (`p/N`); `0` degrades MSH to plain SH.
    pub auc_fraction: f64,
    /// Use the high-fidelity update rule; `false` degrades to champion
    /// update (only the batch-best sample feeds the surrogate).
    pub high_fidelity: bool,
    /// Include the robustness metric `R` as the fourth objective.
    pub robustness_objective: bool,
    /// Right-tail percentile for the sub-optimal mapping (`α`).
    pub alpha: f64,
    /// ParEGO augmentation coefficient (`ρ`).
    pub rho: f64,
    /// Random exploration share of each batch.
    pub random_fraction: f64,
    /// Acquisition candidate-pool size.
    pub candidate_pool: usize,
    /// Percentile (of accepted distances) defining the Upper Update
    /// Limit.
    pub uul_percentile: f64,
    /// RNG seed.
    pub seed: u64,
    /// Parallel workers for cost accounting.
    pub workers: u32,
}

impl Default for UnicoConfig {
    fn default() -> Self {
        UnicoConfig {
            max_iter: 20,
            batch: 30,
            b_max: 300,
            auc_fraction: 0.15,
            high_fidelity: true,
            robustness_objective: true,
            alpha: 0.05,
            rho: 0.2,
            random_fraction: 0.25,
            candidate_pool: 256,
            uul_percentile: 0.95,
            seed: 0,
            workers: 16,
        }
    }
}

impl UnicoConfig {
    /// Ablation: plain SH + champion update (no robustness objective).
    pub fn sh_champion(self) -> Self {
        UnicoConfig {
            auc_fraction: 0.0,
            high_fidelity: false,
            robustness_objective: false,
            ..self
        }
    }

    /// Ablation: modified SH + champion update.
    pub fn msh_champion(self) -> Self {
        UnicoConfig {
            auc_fraction: 0.15,
            high_fidelity: false,
            robustness_objective: false,
            ..self
        }
    }

    /// UNICO without the robustness objective (used by the paper's
    /// Fig. 8 study).
    pub fn without_robustness(self) -> Self {
        UnicoConfig {
            robustness_objective: false,
            ..self
        }
    }
}

/// Everything recorded about one evaluated hardware configuration.
#[derive(Debug, Clone)]
pub struct HwRecord<H> {
    /// The configuration.
    pub hw: H,
    /// PPA assessment at the budget the candidate reached (`None` if no
    /// feasible mapping was found or a constraint was violated).
    pub assessment: Option<Assessment>,
    /// Aggregated robustness metric `R` (lower = more robust).
    pub robustness: Option<f64>,
    /// Per-job budget this candidate's mapping search consumed.
    pub budget_spent: u64,
    /// Iteration in which the candidate was evaluated.
    pub iteration: usize,
    /// Whether the sample passed the high-fidelity filter into the
    /// surrogate training set.
    pub fed_surrogate: bool,
}

/// Result of a UNICO run.
#[derive(Debug, Clone)]
pub struct UnicoResult<H> {
    /// PPA Pareto front; payloads index into [`UnicoResult::evaluations`].
    pub front: ParetoFront<usize>,
    /// Every evaluated configuration, in evaluation order.
    pub evaluations: Vec<HwRecord<H>>,
    /// Front snapshots over simulated wall-clock time.
    pub trace: SearchTrace,
    /// Total simulated wall-clock seconds.
    pub wall_clock_s: f64,
    /// Number of hardware configurations evaluated.
    pub hw_evals: usize,
    /// Iterations actually completed (equals `max_iter` unless the run
    /// was cancelled through a [`RunObserver`]).
    pub iterations_done: usize,
    /// `true` when a [`RunObserver`] stopped the run before `max_iter`.
    pub cancelled: bool,
    /// Structured telemetry snapshot of this run: phase wall-clock
    /// timers, evaluation counters, and the evaluation-cache section
    /// when a cache is attached (schema `unico.run_report.v3`).
    pub report: RunReport,
}

impl<H> UnicoResult<H> {
    /// The record whose PPA minimizes Euclidean distance to the origin on
    /// the normalized front — the paper's reported design point.
    pub fn min_euclidean_record(&self) -> Option<&HwRecord<H>> {
        self.front
            .min_euclidean()
            .map(|(_, &idx)| &self.evaluations[idx])
    }

    /// The robustness-aware knee: min-Euclidean distance over the
    /// normalized **four**-objective vectors
    /// `(latency, power, area, R)` of the front, restricted to designs
    /// whose mapping search ran to the full budget. This is the design
    /// UNICO deploys when generalization matters (paper §4.4).
    pub fn robust_knee(&self) -> Option<&HwRecord<H>> {
        let full_budget = self
            .evaluations
            .iter()
            .map(|r| r.budget_spent)
            .max()
            .unwrap_or(0);
        let candidates: Vec<(usize, Vec<f64>)> = self
            .front
            .iter()
            .filter_map(|(y, &idx)| {
                let rec = &self.evaluations[idx];
                if rec.budget_spent < full_budget {
                    return None;
                }
                let r = rec.robustness?;
                let mut v = y.to_vec();
                v.push(r);
                Some((idx, v))
            })
            .collect();
        if candidates.is_empty() {
            return self.min_euclidean_record();
        }
        let rows: Vec<Vec<f64>> = candidates.iter().map(|(_, v)| v.clone()).collect();
        let normalized = unico_surrogate::scalarize::normalize_columns(&rows);
        let best = normalized
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da: f64 = a.iter().map(|v| v * v).sum();
                let db: f64 = b.iter().map(|v| v * v).sum();
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| candidates[i].0)?;
        Some(&self.evaluations[best])
    }
}

/// Live progress hooks for an in-flight run.
///
/// An observer is polled at every iteration boundary, which is where
/// the loop state is consistent (and, when checkpointing is on, right
/// after the boundary snapshot was armed). `unico-serve` uses this to
/// stream per-iteration telemetry deltas to HTTP clients and to
/// deliver cooperative job cancellation; both methods default to
/// no-ops so plain runs pay nothing.
pub trait RunObserver: Sync {
    /// Called after every completed iteration with a consistent view of
    /// the loop.
    fn on_iteration(&self, _update: &IterationUpdate<'_>) {}

    /// Polled before each iteration starts; returning `true` stops the
    /// run cooperatively. A stopped run still returns a well-formed
    /// [`UnicoResult`] (with [`UnicoResult::cancelled`] set), and any
    /// checkpoint written at an earlier boundary remains resumable.
    fn cancelled(&self) -> bool {
        false
    }
}

/// What a [`RunObserver`] sees at an iteration boundary.
#[derive(Debug)]
pub struct IterationUpdate<'a> {
    /// Completed iterations (1-based; resumed runs continue counting).
    pub iteration: usize,
    /// Total iterations the run will execute (`max_iter`).
    pub max_iter: usize,
    /// Current Pareto-front size.
    pub front_size: usize,
    /// Evaluations recorded so far (including restored ones).
    pub evaluations: usize,
    /// Simulated wall-clock seconds elapsed.
    pub wall_clock_s: f64,
    /// The run's live telemetry; snapshot/diff it for deltas.
    pub telemetry: &'a Telemetry,
}

/// Optional run machinery around the MOBO loop: crash-safe
/// checkpointing, deterministic fault injection, live observation /
/// cancellation, and the kill-switch test hook the resume-equivalence
/// oracle uses.
#[derive(Clone, Default)]
pub struct RunOptions<'a> {
    /// Write [`Checkpoint`]s per this policy (`None` disables).
    pub checkpoint: Option<CheckpointPolicy>,
    /// Thread a deterministic fault plan through every mapping-search
    /// round (`None` runs fault-free).
    pub faults: Option<&'a FaultContext>,
    /// Test hook: panic at this checkpoint boundary *after* the
    /// snapshot is armed but *before* the periodic write, so the
    /// panic-guard flush is what lands on disk. Ignored when
    /// `checkpoint` is `None`.
    pub kill_after: Option<usize>,
    /// Progress/cancellation hooks (`None` runs unobserved).
    pub observer: Option<&'a dyn RunObserver>,
}

impl fmt::Debug for RunOptions<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunOptions")
            .field("checkpoint", &self.checkpoint)
            .field("faults", &self.faults)
            .field("kill_after", &self.kill_after)
            .field("observer", &self.observer.map(|_| "dyn RunObserver"))
            .finish()
    }
}

impl RunOptions<'_> {
    /// Builds options from the environment: `UNICO_CHECKPOINT` names
    /// the checkpoint file and `UNICO_CHECKPOINT_EVERY` the cadence
    /// (see [`CheckpointPolicy::from_env`]). Faults and the kill hook
    /// are never enabled from the environment.
    pub fn from_env() -> Self {
        RunOptions {
            checkpoint: CheckpointPolicy::from_env(),
            ..RunOptions::default()
        }
    }
}

/// Everything the MOBO outer loop carries across iterations, split out
/// of `run` so a checkpoint can snapshot it and a resume can rebuild
/// it.
struct LoopState<H> {
    start_iter: usize,
    rng: StdRng,
    clock: SimClock,
    trace: SearchTrace,
    front: ParetoFront<usize>,
    evaluations: Vec<HwRecord<H>>,
    all_xs: Vec<Vec<f64>>,
    all_ys: Vec<Vec<f64>>,
    hf_xs: Vec<Vec<f64>>,
    hf_ys: Vec<Vec<f64>>,
    accepted_d: Vec<f64>,
    uul: f64,
    /// Live surrogate carried across iterations so acquisition rounds
    /// extend the existing Cholesky factor instead of refitting from
    /// scratch. `None` until the first successful fit and after any
    /// event that invalidates the factor (HF-set drain, fit failure,
    /// resume from checkpoint).
    gp: Option<GaussianProcess>,
    /// Hyperparameters of the last accepted fit plus the training-set
    /// size at the last full hyper search; drives the full-vs-
    /// incremental decision and survives checkpoints.
    gp_hypers: Option<GpHypers>,
    /// Counter totals restored from a checkpoint (empty on a fresh
    /// run); seeded into the run's telemetry before the loop starts.
    baseline_counters: BTreeMap<String, u64>,
    /// `(hits, misses, evictions)` of the evaluation cache accumulated
    /// before the checkpoint, so the final report can present
    /// whole-run totals.
    cache_baseline: Option<(u64, u64, u64)>,
}

impl<H> LoopState<H> {
    fn fresh(cfg: &UnicoConfig) -> Self {
        LoopState {
            start_iter: 0,
            rng: StdRng::seed_from_u64(cfg.seed),
            clock: SimClock::new(cfg.workers),
            trace: SearchTrace::new(),
            front: ParetoFront::new(),
            evaluations: Vec::new(),
            all_xs: Vec::new(),
            all_ys: Vec::new(),
            hf_xs: Vec::new(),
            hf_ys: Vec::new(),
            accepted_d: Vec::new(),
            uul: f64::INFINITY,
            gp: None,
            gp_hypers: None,
            baseline_counters: BTreeMap::new(),
            cache_baseline: None,
        }
    }
}

fn restore_state<P: Platform>(
    env: &CoSearchEnv<'_, P>,
    ck: &Checkpoint,
) -> Result<LoopState<P::Hw>, CheckpointError> {
    let platform = env.platform();
    let mut evaluations = Vec::with_capacity(ck.evaluations.len());
    for e in &ck.evaluations {
        let hw = platform.hw_from_words(&e.hw_words).ok_or_else(|| {
            CheckpointError::Schema(format!(
                "platform {:?} cannot rebuild hardware words {:?}",
                platform.name(),
                e.hw_words
            ))
        })?;
        evaluations.push(HwRecord {
            hw,
            assessment: e
                .assessment
                .map(|[latency_s, power_mw, area_mm2]| Assessment {
                    latency_s,
                    power_mw,
                    area_mm2,
                }),
            robustness: e.robustness,
            budget_spent: e.spent,
            iteration: e.iteration,
            fed_surrogate: e.fed,
        });
    }
    for f in &ck.front {
        if f.idx >= evaluations.len() {
            return Err(CheckpointError::Schema(format!(
                "front index {} out of bounds ({} evaluations)",
                f.idx,
                evaluations.len()
            )));
        }
    }
    Ok(LoopState {
        start_iter: ck.iterations_done,
        rng: StdRng::from_state(ck.rng),
        clock: SimClock::resumed(ck.config.workers, ck.clock_seconds),
        trace: SearchTrace::from_points(
            ck.trace
                .iter()
                .map(|p| TracePoint {
                    seconds: p.seconds,
                    front: p.front.clone(),
                })
                .collect(),
        ),
        front: ParetoFront::from_entries(ck.front.iter().map(|f| (f.y.clone(), f.idx)).collect()),
        evaluations,
        all_xs: ck.all_xs.clone(),
        all_ys: ck.all_ys.clone(),
        hf_xs: ck.hf_xs.clone(),
        hf_ys: ck.hf_ys.clone(),
        accepted_d: ck.accepted_d.clone(),
        uul: ck.uul,
        // The factorization itself is not serialized; the first
        // acquisition round after a resume rebuilds it from the stored
        // hypers via `fit_with_hypers` (zero RNG draws), which is
        // bit-identical to the factor an uninterrupted run carries.
        gp: None,
        gp_hypers: ck.gp,
        baseline_counters: ck.counters.clone(),
        cache_baseline: ck.cache.as_ref().map(|c| (c.hits, c.misses, c.evictions)),
    })
}

/// Snapshots the loop at the boundary after `done` completed
/// iterations. Counter totals fold in the live engine metrics and the
/// cache delta (which the uninterrupted run only adds to telemetry at
/// the end), count the checkpoint write carrying the snapshot, and
/// exclude `engine_threads_spawned` (a resumed run spawns its own
/// pool), so a resumed run's totals line up exactly with an
/// uninterrupted run's.
#[allow(clippy::too_many_arguments)]
fn build_checkpoint<P: Platform>(
    cfg: &UnicoConfig,
    env: &CoSearchEnv<'_, P>,
    done: usize,
    st: &LoopState<P::Hw>,
    telemetry: &Telemetry,
    engine: &MappingEngine,
    cache_start: Option<&CacheStats>,
    batch_start: Option<&BatchStats>,
) -> Checkpoint {
    let platform = env.platform();
    let cache_delta = match (platform.eval_cache(), cache_start) {
        (Some(c), Some(start)) => Some((c.stats().delta_since(start), c.to_trace())),
        _ => None,
    };
    let batch_delta = match (platform.eval_cache(), batch_start) {
        (Some(c), Some(start)) => Some(c.batch_stats().delta_since(start)),
        _ => None,
    };
    let m = engine.metrics();
    let mut counters = BTreeMap::new();
    for c in Counter::ALL {
        if c == Counter::EngineThreadsSpawned {
            continue;
        }
        let extra = match c {
            Counter::EngineJobs => m.jobs_executed,
            Counter::EngineBatches => m.batches,
            Counter::EnginePanics => m.panics_contained,
            Counter::CheckpointsWritten => 1,
            Counter::CacheHits => cache_delta.as_ref().map_or(0, |(d, _)| d.hits),
            Counter::CacheMisses => cache_delta.as_ref().map_or(0, |(d, _)| d.misses),
            Counter::CacheEvictions => cache_delta.as_ref().map_or(0, |(d, _)| d.evictions),
            Counter::CacheBatchLookups => batch_delta.as_ref().map_or(0, |d| d.lookups),
            Counter::CacheBatchKeys => batch_delta.as_ref().map_or(0, |d| d.keys),
            _ => 0,
        };
        counters.insert(c.name().to_string(), telemetry.get(c) + extra);
    }
    let (base_h, base_m, base_e) = st.cache_baseline.unwrap_or((0, 0, 0));
    Checkpoint {
        config: *cfg,
        platform: platform.name().to_string(),
        iterations_done: done,
        rng: st.rng.state(),
        clock_seconds: st.clock.seconds(),
        uul: st.uul,
        accepted_d: st.accepted_d.clone(),
        front: st
            .front
            .iter()
            .map(|(y, &idx)| FrontEntry { y: y.to_vec(), idx })
            .collect(),
        evaluations: st
            .evaluations
            .iter()
            .map(|r| EvalSnapshot {
                hw_words: platform
                    .hw_words(&r.hw)
                    .expect("checkpointing requires Platform::hw_words support"),
                assessment: r
                    .assessment
                    .as_ref()
                    .map(|a| [a.latency_s, a.power_mw, a.area_mm2]),
                robustness: r.robustness,
                spent: r.budget_spent,
                iteration: r.iteration,
                fed: r.fed_surrogate,
            })
            .collect(),
        all_xs: st.all_xs.clone(),
        all_ys: st.all_ys.clone(),
        hf_xs: st.hf_xs.clone(),
        hf_ys: st.hf_ys.clone(),
        trace: st
            .trace
            .points()
            .iter()
            .map(|p| TraceSnapshot {
                seconds: p.seconds,
                front: p.front.clone(),
            })
            .collect(),
        networks: env
            .networks()
            .iter()
            .map(|n| NetworkSnapshot {
                name: n.name().to_string(),
                layers: n.layers().len(),
            })
            .collect(),
        counters,
        cache: cache_delta.map(|(d, trace)| CacheSnapshot {
            hits: base_h + d.hits,
            misses: base_m + d.misses,
            evictions: base_e + d.evictions,
            trace,
        }),
        gp: st.gp_hypers,
    }
}

/// Holds the latest boundary snapshot and flushes it to disk if the
/// loop unwinds (worker panic, kill hook) before the next periodic
/// write, so a crash never loses a completed iteration boundary.
#[derive(Default)]
struct CheckpointGuard {
    armed: Option<(Checkpoint, PathBuf)>,
}

impl CheckpointGuard {
    fn arm(&mut self, ck: Checkpoint, path: PathBuf) {
        self.armed = Some((ck, path));
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self.armed.take() {
            Some((ck, path)) => ck.write_atomic(&path),
            None => Ok(()),
        }
    }
}

impl Drop for CheckpointGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Unwinding already: best-effort flush, errors unreportable.
            let _ = self.flush();
        }
    }
}

/// The UNICO co-optimizer.
#[derive(Debug, Clone)]
pub struct Unico {
    cfg: UnicoConfig,
}

impl Unico {
    /// Creates the optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or `max_iter == 0`.
    pub fn new(cfg: UnicoConfig) -> Self {
        assert!(cfg.batch > 0, "batch must be positive");
        assert!(cfg.max_iter > 0, "max_iter must be positive");
        Unico { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &UnicoConfig {
        &self.cfg
    }

    /// Runs Algorithm 1 on the environment and returns the Pareto front
    /// of hardware configurations with full evaluation records.
    ///
    /// Honors the crash-safety environment variables: `UNICO_CHECKPOINT`
    /// (+ `UNICO_CHECKPOINT_EVERY`) enables periodic checkpointing, and
    /// `UNICO_RESUME=<path>` restores an interrupted run from that
    /// checkpoint instead of starting fresh (the configuration,
    /// including the seed, then comes from the checkpoint file). Use
    /// [`Unico::run_with_options`] to bypass the environment.
    ///
    /// # Panics
    ///
    /// Panics if `UNICO_RESUME` names a checkpoint that cannot be
    /// restored against `env`.
    pub fn run<P: Platform>(&self, env: &CoSearchEnv<'_, P>) -> UnicoResult<P::Hw>
    where
        P::Hw: Send,
    {
        let opts = RunOptions::from_env();
        if let Some(path) = std::env::var_os("UNICO_RESUME") {
            let path = PathBuf::from(path);
            return Self::resume_with_options(env, &path, &opts)
                .unwrap_or_else(|e| panic!("UNICO_RESUME={}: {e}", path.display()));
        }
        self.run_with_options(env, &opts)
    }

    /// [`Unico::run`] with checkpointing, fault injection, or the kill
    /// hook enabled (see [`RunOptions`]).
    ///
    /// # Panics
    ///
    /// Panics if a due checkpoint cannot be written, or when
    /// `kill_after` fires.
    pub fn run_with_options<P: Platform>(
        &self,
        env: &CoSearchEnv<'_, P>,
        opts: &RunOptions<'_>,
    ) -> UnicoResult<P::Hw>
    where
        P::Hw: Send,
    {
        self.run_loop(env, LoopState::fresh(&self.cfg), opts)
    }

    /// Restores an interrupted run from a checkpoint file and drives it
    /// to completion. The configuration (including the seed) comes from
    /// the checkpoint; `env` must target the same platform (by name)
    /// and workload set. If the platform has an evaluation cache
    /// attached, it is pre-populated from the checkpoint's embedded
    /// trace so the resumed run's hit/miss stream matches an
    /// uninterrupted run's.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] if the file cannot be read or parsed, names
    /// a different platform, or holds hardware words the platform
    /// cannot rebuild.
    pub fn resume<P: Platform>(
        env: &CoSearchEnv<'_, P>,
        path: impl AsRef<Path>,
    ) -> Result<UnicoResult<P::Hw>, CheckpointError>
    where
        P::Hw: Send,
    {
        Self::resume_with_options(env, path, &RunOptions::default())
    }

    /// [`Unico::resume`] with further checkpointing or fault injection
    /// enabled for the remainder of the run.
    ///
    /// # Errors
    ///
    /// See [`Unico::resume`].
    pub fn resume_with_options<P: Platform>(
        env: &CoSearchEnv<'_, P>,
        path: impl AsRef<Path>,
        opts: &RunOptions<'_>,
    ) -> Result<UnicoResult<P::Hw>, CheckpointError>
    where
        P::Hw: Send,
    {
        let ck = Checkpoint::read(path.as_ref())?;
        if ck.platform != env.platform().name() {
            return Err(CheckpointError::Schema(format!(
                "checkpoint targets platform {:?}, environment is {:?}",
                ck.platform,
                env.platform().name()
            )));
        }
        if let (Some(cache), Some(snap)) = (env.platform().eval_cache(), &ck.cache) {
            cache
                .load_trace(&snap.trace)
                .map_err(|e| CheckpointError::Schema(format!("embedded cache trace: {e}")))?;
        }
        let state = restore_state(env, &ck)?;
        Ok(Unico::new(ck.config).run_loop(env, state, opts))
    }

    fn run_loop<P: Platform>(
        &self,
        env: &CoSearchEnv<'_, P>,
        mut st: LoopState<P::Hw>,
        opts: &RunOptions<'_>,
    ) -> UnicoResult<P::Hw>
    where
        P::Hw: Send,
    {
        let cfg = &self.cfg;
        let obj_dim = if cfg.robustness_objective { 4 } else { 3 };
        // One persistent worker pool for the whole run: every SH round of
        // every MOBO iteration queues jobs here instead of respawning
        // threads.
        let telemetry = Telemetry::new();
        for (name, v) in &st.baseline_counters {
            if let Some(c) = Counter::from_name(name) {
                telemetry.add(c, *v);
            }
        }
        let engine = MappingEngine::new((cfg.workers as usize).max(1));
        let cache_start = env.platform().eval_cache().map(EvalCache::stats);
        let batch_start = env.platform().eval_cache().map(EvalCache::batch_stats);
        let mut guard = CheckpointGuard::default();
        let mut iterations_done = st.start_iter;
        let mut cancelled = false;

        for iteration in st.start_iter..cfg.max_iter {
            if opts.observer.is_some_and(|o| o.cancelled()) {
                cancelled = true;
                break;
            }
            // ---- Line 4: sample a batch of N hardware configurations. ----
            let front_hw: Vec<P::Hw> = st
                .front
                .iter()
                .map(|(_, &idx)| st.evaluations[idx].hw.clone())
                .collect();
            let batch_hw = telemetry.time("sampling", || {
                self.sample_batch(
                    env,
                    &st.hf_xs,
                    &st.hf_ys,
                    &front_hw,
                    &mut st.rng,
                    &mut st.clock,
                    &telemetry,
                    &mut st.gp,
                    &mut st.gp_hypers,
                )
            });

            // ---- Lines 5–9: adaptive SW mapping search with MSH. ----
            let mut sessions: Vec<HwSession<'_, P>> = batch_hw
                .into_iter()
                .enumerate()
                .map(|(i, hw)| {
                    env.session(hw, cfg.seed.wrapping_add((iteration * 1009 + i) as u64))
                })
                .collect();
            let sh_cfg = ShConfig {
                b_max: cfg.b_max,
                auc_fraction: cfg.auc_fraction,
                min_budget: 8,
                workers: cfg.workers as usize,
            };
            telemetry.time("mapping_search", || {
                sh::run_with_engine_faulted(
                    &mut sessions,
                    &sh_cfg,
                    &engine,
                    &telemetry,
                    opts.faults,
                )
            });
            telemetry.add(
                Counter::MappingEvals,
                sessions.iter().map(HwSession::total_steps).sum(),
            );
            telemetry.add(Counter::HwEvals, sessions.len() as u64);
            // Gradient-search counters are booked by the SH run itself.
            let cpu: f64 = sessions.iter().map(HwSession::cost_seconds).sum();
            st.clock
                .charge(cpu, (sessions.len() * env.num_jobs()) as u32);

            // ---- Assess the batch: PPA + robustness. ----
            let mut batch_records: Vec<usize> = Vec::with_capacity(sessions.len());
            for s in &sessions {
                let assessment = s.assess();
                let robustness = aggregate_robustness(&s.job_histories(), cfg.alpha);
                let idx = st.evaluations.len();
                if let Some(a) = &assessment {
                    st.front.offer(a.objectives(), idx);
                    let mut y = a.objectives();
                    if cfg.robustness_objective {
                        y.push(robustness.unwrap_or(0.0));
                    }
                    st.all_xs.push(env.platform().encode(s.hw()));
                    st.all_ys.push(y);
                }
                st.evaluations.push(HwRecord {
                    hw: s.hw().clone(),
                    assessment,
                    robustness,
                    budget_spent: s.spent(),
                    iteration,
                    fed_surrogate: false,
                });
                batch_records.push(idx);
            }
            // Fusion-planner counters accumulate inside each session as
            // SH and the final assessment price candidate groups.
            let mut fstats = unico_mapping::FusionStats::default();
            for s in &sessions {
                fstats.merge(s.fusion_stats());
            }
            telemetry.add_fusion_stats(fstats);

            // ---- Lines 10–11: high-fidelity surrogate update. ----
            if !st.all_ys.is_empty() {
                let weights = sample_simplex(&mut st.rng, obj_dim);
                let normalized = normalize_columns(&st.all_ys);
                let scalars: Vec<f64> = normalized
                    .iter()
                    .map(|y| parego(y, &weights, cfg.rho))
                    .collect();
                let v_best = scalars.iter().copied().fold(f64::INFINITY, f64::min);
                // Map feasible batch members to their position in all_ys.
                let feasible_batch: Vec<(usize, usize)> = {
                    let mut pos = st.all_ys.len();
                    let feasible_count = batch_records
                        .iter()
                        .filter(|&&i| st.evaluations[i].assessment.is_some())
                        .count();
                    pos -= feasible_count;
                    batch_records
                        .iter()
                        .filter(|&&i| st.evaluations[i].assessment.is_some())
                        .map(|&i| {
                            let p = pos;
                            pos += 1;
                            (i, p)
                        })
                        .collect()
                };
                if cfg.high_fidelity {
                    let mut new_d = Vec::new();
                    for &(rec_idx, ys_idx) in &feasible_batch {
                        let d = (scalars[ys_idx] - v_best).abs();
                        if d <= st.uul {
                            st.hf_xs.push(st.all_xs[ys_idx].clone());
                            st.hf_ys.push(st.all_ys[ys_idx].clone());
                            st.evaluations[rec_idx].fed_surrogate = true;
                            new_d.push(d);
                            telemetry.add(Counter::UulAccepted, 1);
                        } else {
                            telemetry.add(Counter::UulRejected, 1);
                        }
                    }
                    st.accepted_d.extend(new_d);
                    st.uul =
                        percentile(&st.accepted_d, cfg.uul_percentile).unwrap_or(f64::INFINITY);
                    // Bound the GP training set (keep the newest points —
                    // UUL already biases selection toward high quality).
                    const HF_CAP: usize = 400;
                    if st.hf_xs.len() > HF_CAP {
                        let drop = st.hf_xs.len() - HF_CAP;
                        st.hf_xs.drain(..drop);
                        st.hf_ys.drain(..drop);
                        // Dropping leading rows invalidates the carried
                        // Cholesky factor (it extends by appends only);
                        // force a full refit next round.
                        st.gp = None;
                        st.gp_hypers = None;
                    }
                } else if let Some(&(rec_idx, ys_idx)) = feasible_batch.iter().min_by(|a, b| {
                    scalars[a.1]
                        .partial_cmp(&scalars[b.1])
                        .unwrap_or(std::cmp::Ordering::Equal)
                }) {
                    // Champion update: only the batch-best sample.
                    st.hf_xs.push(st.all_xs[ys_idx].clone());
                    st.hf_ys.push(st.all_ys[ys_idx].clone());
                    st.evaluations[rec_idx].fed_surrogate = true;
                }
            }

            // ---- Line 12: update HW Pareto front snapshot. ----
            st.trace.record(st.clock.seconds(), st.front.objectives());
            iterations_done = iteration + 1;

            // ---- Checkpoint boundary. ----
            if let Some(policy) = opts.checkpoint.as_ref() {
                let done = iteration + 1;
                let snap = build_checkpoint(
                    cfg,
                    env,
                    done,
                    &st,
                    &telemetry,
                    &engine,
                    cache_start.as_ref(),
                    batch_start.as_ref(),
                );
                guard.arm(snap, policy.path.clone());
                if opts.kill_after == Some(done) {
                    panic!("unico: kill_after test hook fired at checkpoint boundary {done}");
                }
                if done % policy.every == 0 || done == cfg.max_iter {
                    guard.flush().expect("checkpoint write failed");
                    telemetry.add(Counter::CheckpointsWritten, 1);
                }
            }

            if let Some(observer) = opts.observer {
                observer.on_iteration(&IterationUpdate {
                    iteration: iteration + 1,
                    max_iter: cfg.max_iter,
                    front_size: st.front.len(),
                    evaluations: st.evaluations.len(),
                    wall_clock_s: st.clock.seconds(),
                    telemetry: &telemetry,
                });
            }
        }

        let m = engine.metrics();
        telemetry.add(Counter::EngineJobs, m.jobs_executed);
        telemetry.add(Counter::EngineBatches, m.batches);
        telemetry.add(Counter::EnginePanics, m.panics_contained);
        telemetry.add(Counter::EngineThreadsSpawned, m.threads_spawned);
        if let (Some(cache), Some(start)) = (env.platform().eval_cache(), batch_start) {
            let d = cache.batch_stats().delta_since(&start);
            telemetry.add(Counter::CacheBatchLookups, d.lookups);
            telemetry.add(Counter::CacheBatchKeys, d.keys);
        }
        let cache_delta = match (env.platform().eval_cache(), cache_start) {
            (Some(cache), Some(start)) => {
                let d = cache.stats().delta_since(&start);
                telemetry.add_cache_stats(d);
                // A resumed run reports whole-run totals: the restored
                // baseline plus its own delta (entries is a level, not
                // a counter, so the live value is already the total).
                let (base_h, base_m, base_e) = st.cache_baseline.unwrap_or((0, 0, 0));
                Some(CacheStats {
                    hits: base_h + d.hits,
                    misses: base_m + d.misses,
                    evictions: base_e + d.evictions,
                    entries: d.entries,
                })
            }
            _ => None,
        };
        let mut report = telemetry.report("unico.run");
        report.cache = cache_delta.map(CacheReport::from);
        Telemetry::global().absorb(&telemetry);

        UnicoResult {
            hw_evals: st.evaluations.len(),
            front: st.front,
            evaluations: st.evaluations,
            trace: st.trace,
            wall_clock_s: st.clock.seconds(),
            iterations_done,
            cancelled,
            report,
        }
    }

    /// Batch acquisition: EI on the ParEGO-scalarized GP over the
    /// high-fidelity training set, plus a random exploration share. The
    /// candidate pool mixes uniform samples with local perturbations of
    /// current Pareto designs so the acquisition can exploit the
    /// incumbent region.
    #[allow(clippy::too_many_arguments)]
    fn sample_batch<P: Platform>(
        &self,
        env: &CoSearchEnv<'_, P>,
        hf_xs: &[Vec<f64>],
        hf_ys: &[Vec<f64>],
        front_hw: &[P::Hw],
        rng: &mut StdRng,
        clock: &mut SimClock,
        telemetry: &Telemetry,
        gp_slot: &mut Option<GaussianProcess>,
        gp_hypers: &mut Option<GpHypers>,
    ) -> Vec<P::Hw> {
        let cfg = &self.cfg;
        let n_random = ((cfg.batch as f64) * cfg.random_fraction).ceil() as usize;
        let n_model = cfg.batch.saturating_sub(n_random);
        let mut batch: Vec<P::Hw> = Vec::with_capacity(cfg.batch);
        if n_model > 0 && hf_xs.len() >= 4 {
            let obj_dim = hf_ys[0].len();
            let weights = sample_simplex(rng, obj_dim);
            let normalized = normalize_columns(hf_ys);
            let targets: Vec<f64> = normalized
                .iter()
                .map(|y| parego(y, &weights, cfg.rho))
                .collect();
            let best = targets.iter().copied().fold(f64::INFINITY, f64::min);
            // Full hyper-search fits are only re-run once the training
            // set has doubled since the last one; in between, rounds
            // reuse the accepted hypers and extend the carried Cholesky
            // factor row-by-row (or rebuild it with zero RNG draws
            // after a resume, which is bit-identical).
            let needs_full = gp_hypers.is_none_or(|h| hf_xs.len() >= 2 * h.fitted_n);
            telemetry.add(Counter::GpFits, 1);
            let fitted = if needs_full {
                let mut gp =
                    GaussianProcess::new(KernelKind::Matern52, env.platform().feature_dim());
                let ok = telemetry.time("gp_fit", || gp.fit(hf_xs, &targets, rng).is_ok());
                if ok {
                    *gp_hypers = Some(GpHypers {
                        length_scale: gp.kernel().length_scale(),
                        variance: gp.kernel().variance(),
                        noise: gp.noise(),
                        fitted_n: hf_xs.len(),
                    });
                    *gp_slot = Some(gp);
                } else {
                    *gp_slot = None;
                    *gp_hypers = None;
                }
                ok
            } else {
                telemetry.add(Counter::GpFitsIncremental, 1);
                let h = gp_hypers.as_mut().expect("needs_full is false");
                let mut gp = match gp_slot.take() {
                    Some(gp) if !gp.is_empty() => gp,
                    _ => GaussianProcess::new(KernelKind::Matern52, env.platform().feature_dim()),
                };
                let ok = telemetry.time("gp_fit", || {
                    if !gp.is_empty() {
                        gp.fit_incremental(hf_xs, &targets).is_ok()
                    } else {
                        gp.fit_with_hypers(hf_xs, &targets, h.length_scale, h.variance, h.noise)
                            .is_ok()
                    }
                });
                if ok {
                    // The jitter ladder may have escalated the noise;
                    // store the post-fit level so a checkpoint/resume
                    // rebuild starts where the live factor ended.
                    h.noise = gp.noise();
                    *gp_slot = Some(gp);
                } else {
                    *gp_slot = None;
                    *gp_hypers = None;
                }
                ok
            };
            if fitted {
                clock.charge_sequential(2.0);
                let n_local = if front_hw.is_empty() {
                    0
                } else {
                    cfg.candidate_pool / 4
                };
                let mut pool: Vec<P::Hw> = (0..cfg.candidate_pool - n_local)
                    .map(|_| env.platform().sample_hw(rng))
                    .collect();
                for _ in 0..n_local {
                    let seed_hw = &front_hw[rng.gen_range(0..front_hw.len())];
                    let mut cand = env.platform().perturb_hw(rng, seed_hw);
                    if rng.gen_bool(0.5) {
                        cand = env.platform().perturb_hw(rng, &cand);
                    }
                    pool.push(cand);
                }
                let feats: Vec<Vec<f64>> = pool.iter().map(|h| env.platform().encode(h)).collect();
                let gp = gp_slot.clone().expect("fitted implies a carried GP");
                let picks = telemetry.time("acquisition", || {
                    select_batch(
                        gp,
                        &feats,
                        best,
                        AcquisitionKind::ExpectedImprovement,
                        n_model,
                    )
                });
                for i in picks {
                    batch.push(pool[i].clone());
                }
            }
        }
        while batch.len() < cfg.batch {
            batch.push(env.platform().sample_hw(rng));
        }
        batch
    }
}

/// The `q`-quantile of `values` (linear index, values unsorted).
fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((q.clamp(0.0, 1.0)) * (v.len() - 1) as f64).round() as usize;
    Some(v[idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use unico_model::SpatialPlatform;
    use unico_search::EnvConfig;
    use unico_workloads::zoo;

    fn smoke_cfg() -> UnicoConfig {
        UnicoConfig {
            max_iter: 3,
            batch: 6,
            b_max: 32,
            candidate_pool: 32,
            ..UnicoConfig::default()
        }
    }

    fn env(platform: &SpatialPlatform) -> CoSearchEnv<'_, SpatialPlatform> {
        CoSearchEnv::new(
            platform,
            &[zoo::mobilenet_v1()],
            EnvConfig {
                max_layers_per_network: 1,
                power_cap_mw: None,
                area_cap_mm2: None,
            },
        )
    }

    #[test]
    fn unico_smoke_run() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let res = Unico::new(smoke_cfg()).run(&e);
        assert_eq!(res.hw_evals, 18);
        assert_eq!(res.evaluations.len(), 18);
        assert_eq!(res.trace.points().len(), 3);
        assert!(!res.front.is_empty());
        assert!(res.wall_clock_s > 0.0);
        let rec = res.min_euclidean_record().expect("front non-empty");
        assert!(rec.assessment.is_some());
    }

    #[test]
    fn deterministic_under_seed() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let a = Unico::new(smoke_cfg()).run(&e);
        let b = Unico::new(smoke_cfg()).run(&e);
        assert_eq!(a.front.objectives(), b.front.objectives());
        assert_eq!(a.wall_clock_s, b.wall_clock_s);
    }

    #[test]
    fn high_fidelity_feeds_subset_champion_feeds_one_per_iter() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let hf = Unico::new(smoke_cfg()).run(&e);
        let fed_hf = hf.evaluations.iter().filter(|r| r.fed_surrogate).count();
        assert!(fed_hf >= 1);

        let champ = Unico::new(smoke_cfg().msh_champion()).run(&e);
        let fed_champ = champ.evaluations.iter().filter(|r| r.fed_surrogate).count();
        assert!(fed_champ <= 3, "champion update feeds ≤ 1 per iteration");
    }

    #[test]
    fn msh_early_stops_some_candidates() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let res = Unico::new(smoke_cfg()).run(&e);
        let spent: Vec<u64> = res.evaluations.iter().map(|r| r.budget_spent).collect();
        assert!(spent.contains(&32), "finalists reach b_max");
        assert!(spent.iter().any(|&s| s < 32), "some candidates stop early");
    }

    #[test]
    fn robustness_recorded_for_feasible_candidates() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let res = Unico::new(smoke_cfg()).run(&e);
        let with_r = res
            .evaluations
            .iter()
            .filter(|r| r.assessment.is_some() && r.robustness.is_some())
            .count();
        assert!(with_r > 0, "feasible candidates must carry R");
    }

    #[test]
    fn ablation_configs() {
        let c = smoke_cfg();
        let shc = c.sh_champion();
        assert_eq!(shc.auc_fraction, 0.0);
        assert!(!shc.high_fidelity);
        let mshc = c.msh_champion();
        assert!(mshc.auc_fraction > 0.0);
        assert!(!mshc.high_fidelity);
        assert!(!c.without_robustness().robustness_objective);
    }

    #[test]
    fn run_report_carries_phases_and_counters() {
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let res = Unico::new(smoke_cfg()).run(&e);
        let r = &res.report;
        assert_eq!(r.name, "unico.run");
        assert_eq!(r.counters["hw_evals"], 18);
        assert!(r.counters["mapping_evals"] > 0);
        assert!(r.counters["sh_rounds"] > 0);
        assert_eq!(
            r.counters["engine_threads_spawned"], 16,
            "one pool for the whole run, spawned once"
        );
        assert!(r.counters["engine_batches"] >= r.counters["sh_rounds"]);
        assert!(r.phases_s.contains_key("sampling"));
        assert!(r.phases_s.contains_key("mapping_search"));
        assert!(r.to_json().contains("unico.run_report.v3"));
        // No cache attached to the stock edge platform here.
        assert!(r.cache.is_none());
        assert!(r.to_json().contains("\"cache\":null"));
    }

    #[test]
    fn run_report_carries_cache_section_when_cache_attached() {
        use std::sync::Arc;
        let cache = Arc::new(EvalCache::new());
        let p = SpatialPlatform::edge().with_eval_cache(Arc::clone(&cache));
        let e = env(&p);
        let res = Unico::new(smoke_cfg()).run(&e);
        let c = res.report.cache.expect("cache section present");
        assert!(c.misses > 0, "first run must compute");
        assert!(c.hits > 0, "SH re-assessments must hit");
        assert_eq!(c.hits + c.misses, cache.stats().lookups());
        assert_eq!(res.report.counters["cache_hits"], c.hits);
        assert_eq!(res.report.counters["cache_misses"], c.misses);
        assert!(res.report.to_json().contains("\"cache\":{\"hits\":"));
    }

    #[test]
    fn observer_sees_every_iteration_boundary() {
        use std::sync::Mutex;
        #[derive(Default)]
        struct Recorder {
            seen: Mutex<Vec<(usize, usize, usize)>>,
        }
        impl RunObserver for Recorder {
            fn on_iteration(&self, u: &IterationUpdate<'_>) {
                assert!(u.telemetry.get(unico_search::Counter::HwEvals) > 0);
                assert!(u.wall_clock_s > 0.0);
                self.seen
                    .lock()
                    .unwrap()
                    .push((u.iteration, u.front_size, u.evaluations));
            }
        }
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let rec = Recorder::default();
        let opts = RunOptions {
            observer: Some(&rec),
            ..RunOptions::default()
        };
        let res = Unico::new(smoke_cfg()).run_with_options(&e, &opts);
        let seen = rec.seen.lock().unwrap();
        assert_eq!(
            seen.iter().map(|s| s.0).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "one update per iteration, in order"
        );
        assert_eq!(seen.last().unwrap().2, 18);
        assert!(!res.cancelled);
        assert_eq!(res.iterations_done, 3);
        // The debug form names the observer without requiring Debug on it.
        assert!(format!("{opts:?}").contains("dyn RunObserver"));
    }

    #[test]
    fn observer_cancellation_stops_the_run_cooperatively() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct StopAfter {
            boundary: usize,
            seen: AtomicUsize,
        }
        impl RunObserver for StopAfter {
            fn on_iteration(&self, u: &IterationUpdate<'_>) {
                self.seen.store(u.iteration, Ordering::SeqCst);
            }
            fn cancelled(&self) -> bool {
                self.seen.load(Ordering::SeqCst) >= self.boundary
            }
        }
        let p = SpatialPlatform::edge();
        let e = env(&p);
        let stop = StopAfter {
            boundary: 1,
            seen: AtomicUsize::new(0),
        };
        let opts = RunOptions {
            observer: Some(&stop),
            ..RunOptions::default()
        };
        let res = Unico::new(smoke_cfg()).run_with_options(&e, &opts);
        assert!(res.cancelled);
        assert_eq!(res.iterations_done, 1);
        assert_eq!(res.hw_evals, 6, "one batch evaluated before the stop");
        assert_eq!(res.evaluations.len(), 6);
        assert_eq!(res.trace.points().len(), 1);
    }

    #[test]
    fn percentile_helper() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 0.0), Some(1.0));
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 1.0), Some(3.0));
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 0.5), Some(2.0));
    }
}
