//! Crash-safe checkpointing of an in-flight UNICO run.
//!
//! A [`Checkpoint`] is a pure-data snapshot of everything the MOBO outer
//! loop carries across iterations: the run configuration, RNG state,
//! simulated clock, Pareto archive, evaluation records (hardware encoded
//! through `Platform::hw_words`), the surrogate training sets, the UUL
//! threshold state, telemetry counters, and — when an evaluation cache
//! is attached — its counters plus the full golden trace needed to
//! rebuild it.
//!
//! The on-disk format is a single JSON object with schema
//! `unico.checkpoint.v1`. **Every `f64` is stored as its IEEE-754 bit
//! pattern** (a decimal `u64`), so a restore is bit-exact and the
//! resume-equivalence oracle can compare fronts and reports
//! byte-for-byte; it also means non-finite values (the initial
//! `uul = +inf`) round-trip without special cases. Writes are atomic:
//! the file is staged as `<path>.tmp`, synced, then renamed over the
//! destination, so a crash mid-write never corrupts the previous
//! checkpoint.
//!
//! Serialization lives here; conversion to and from the live loop state
//! is `unico.rs`'s job, keeping this module free of search/platform
//! types.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::unico::UnicoConfig;

/// Schema identifier embedded in (and required of) every checkpoint.
pub const SCHEMA: &str = "unico.checkpoint.v1";

/// When and where the outer loop writes checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Destination file (written atomically via `<path>.tmp` + rename).
    pub path: PathBuf,
    /// Write every `every` completed iterations (and always at the final
    /// one). `1` checkpoints every boundary.
    pub every: usize,
}

impl CheckpointPolicy {
    /// Checkpoints to `path` at every iteration boundary.
    ///
    /// # Panics
    ///
    /// Never; `every` defaults to 1.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointPolicy {
            path: path.into(),
            every: 1,
        }
    }

    /// Sets the cadence.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn with_every(mut self, every: usize) -> Self {
        assert!(every > 0, "checkpoint cadence must be positive");
        self.every = every;
        self
    }

    /// Builds a policy from the environment: `UNICO_CHECKPOINT` names
    /// the file (absent or empty → `None`), `UNICO_CHECKPOINT_EVERY`
    /// the cadence (absent → 1).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when `UNICO_CHECKPOINT_EVERY`
    /// is set but malformed (not a positive integer). A typo'd cadence
    /// used to silently degrade to "checkpoint every iteration"; an
    /// operator who asked for durability gets what they configured or a
    /// loud failure, never a silent fallback.
    pub fn from_env() -> Option<Self> {
        let path = std::env::var_os("UNICO_CHECKPOINT")?;
        if path.is_empty() {
            return None;
        }
        let raw = std::env::var("UNICO_CHECKPOINT_EVERY").ok();
        let every = parse_every(raw.as_deref()).unwrap_or_else(|e| panic!("{e}"));
        Some(CheckpointPolicy::new(PathBuf::from(path)).with_every(every))
    }
}

/// Parses the `UNICO_CHECKPOINT_EVERY` value: absent means every
/// iteration (1); anything set must be a positive decimal integer
/// (surrounding whitespace tolerated).
///
/// # Errors
///
/// A descriptive message naming the variable and the offending value —
/// the caller is expected to surface it loudly (panic or process exit),
/// never to fall back to a default.
pub fn parse_every(raw: Option<&str>) -> Result<usize, String> {
    match raw {
        None => Ok(1),
        Some(s) => s
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&e| e > 0)
            .ok_or_else(|| format!("UNICO_CHECKPOINT_EVERY must be a positive integer, got {s:?}")),
    }
}

/// What [`scan_dir`] found in a checkpoint directory.
#[derive(Debug, Default)]
pub struct DirScan {
    /// Parseable checkpoints, sorted by file name for deterministic
    /// recovery order.
    pub resumable: Vec<(PathBuf, Checkpoint)>,
    /// Files with the checkpoint extension that failed to parse, with
    /// the reason (a daemon reports these instead of crashing on them).
    pub corrupt: Vec<(PathBuf, CheckpointError)>,
}

/// Scans `dir` for `*.checkpoint` files — the crash-recovery sweep a
/// daemon runs at boot to find interrupted runs to hand to
/// [`Unico::resume`](crate::Unico::resume). Stale `*.tmp` staging files
/// (a crash mid-[`Checkpoint::write_atomic`]) are ignored: the rename
/// never happened, so the previous checkpoint, if any, is the truth.
///
/// # Errors
///
/// Propagates filesystem errors reading the directory itself; an
/// unreadable or unparsable individual file lands in
/// [`DirScan::corrupt`] instead.
pub fn scan_dir(dir: &Path) -> std::io::Result<DirScan> {
    let mut scan = DirScan::default();
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "checkpoint"))
        .collect();
    paths.sort();
    for path in paths {
        match Checkpoint::read(&path) {
            Ok(ck) => scan.resumable.push((path, ck)),
            // A file listed a moment ago can vanish when a concurrent
            // writer renames over it or a finished run deletes it; that
            // is churn, not corruption.
            Err(CheckpointError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => scan.corrupt.push((path, e)),
        }
    }
    Ok(scan)
}

/// Why a checkpoint could not be read or written.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not well-formed checkpoint JSON.
    Parse(String),
    /// The file parses but violates the schema (wrong version, missing
    /// or mistyped field, or a platform that cannot rebuild its
    /// hardware words).
    Schema(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Parse(m) => write!(f, "checkpoint parse error: {m}"),
            CheckpointError::Schema(m) => write!(f, "checkpoint schema error: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// One Pareto-archive entry: objectives plus the index of its
/// evaluation record.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontEntry {
    /// Objective vector.
    pub y: Vec<f64>,
    /// Index into [`Checkpoint::evaluations`].
    pub idx: usize,
}

/// One evaluated hardware configuration, platform-agnostic: the
/// configuration itself is the integer-word encoding produced by
/// `Platform::hw_words`.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalSnapshot {
    /// `Platform::hw_words` encoding of the configuration.
    pub hw_words: Vec<u64>,
    /// `(latency_s, power_mw, area_mm2)`, or `None` if infeasible.
    pub assessment: Option<[f64; 3]>,
    /// Aggregated robustness `R`, if computable.
    pub robustness: Option<f64>,
    /// Mapping-search budget consumed.
    pub spent: u64,
    /// Iteration the candidate was evaluated in.
    pub iteration: usize,
    /// Whether the sample fed the surrogate.
    pub fed: bool,
}

/// One convergence-trace snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSnapshot {
    /// Simulated wall-clock seconds.
    pub seconds: f64,
    /// Front objective vectors at that instant.
    pub front: Vec<Vec<f64>>,
}

/// Informational per-network summary (names and reduced layer counts of
/// the workload set the run was launched with).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkSnapshot {
    /// Network name.
    pub name: String,
    /// Number of (reduced) layers co-searched per candidate.
    pub layers: usize,
}

/// Evaluation-cache state carried by a checkpoint: the run-so-far
/// counter deltas plus the full golden trace used to rebuild the cache
/// contents on resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Hits since the (original) run started.
    pub hits: u64,
    /// Misses since the (original) run started.
    pub misses: u64,
    /// Evictions since the (original) run started.
    pub evictions: u64,
    /// `EvalCache::to_trace` dump of the cache contents.
    pub trace: String,
}

/// Surrogate hyperparameter state carried by a checkpoint: enough for a
/// resumed run to rebuild the GP factorization with
/// `fit_with_hypers` (zero RNG draws) bit-identical to the
/// incrementally grown factor of an uninterrupted run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpHypers {
    /// Kernel length scale of the last accepted fit.
    pub length_scale: f64,
    /// Kernel signal variance of the last accepted fit.
    pub variance: f64,
    /// Observation-noise/jitter level of the current factorization
    /// (post jitter-escalation, so a rebuild starts where the live
    /// factor ended).
    pub noise: f64,
    /// Training-set size at the last **full** (hyper-search) fit; the
    /// outer loop re-runs a full fit once the set doubles past this.
    pub fitted_n: usize,
}

/// A complete snapshot of the UNICO outer loop at an iteration
/// boundary (schema [`SCHEMA`]).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The run configuration (a resumed run must re-use it verbatim).
    pub config: UnicoConfig,
    /// `Platform::name` of the platform the run targets; resume refuses
    /// a mismatched platform.
    pub platform: String,
    /// Completed MOBO iterations.
    pub iterations_done: usize,
    /// xoshiro256++ RNG state words.
    pub rng: [u64; 4],
    /// Simulated wall-clock seconds elapsed.
    pub clock_seconds: f64,
    /// Current Upper Update Limit (starts at `+inf`).
    pub uul: f64,
    /// Accepted ParEGO-distance set `D`.
    pub accepted_d: Vec<f64>,
    /// Pareto archive in insertion order.
    pub front: Vec<FrontEntry>,
    /// Every evaluation record so far, in evaluation order.
    pub evaluations: Vec<EvalSnapshot>,
    /// Feature vectors of all feasible samples.
    pub all_xs: Vec<Vec<f64>>,
    /// Objective vectors of all feasible samples.
    pub all_ys: Vec<Vec<f64>>,
    /// High-fidelity GP training features.
    pub hf_xs: Vec<Vec<f64>>,
    /// High-fidelity GP training objectives.
    pub hf_ys: Vec<Vec<f64>>,
    /// Convergence trace so far.
    pub trace: Vec<TraceSnapshot>,
    /// Per-network workload summaries (informational).
    pub networks: Vec<NetworkSnapshot>,
    /// Telemetry counter totals at the boundary, by stable name. The
    /// `checkpoints_written` entry counts the write carrying it, and
    /// `engine_threads_spawned` is excluded (a resumed run spawns its
    /// own pool).
    pub counters: BTreeMap<String, u64>,
    /// Evaluation-cache state, when a cache is attached.
    pub cache: Option<CacheSnapshot>,
    /// Surrogate hyperparameter state, when a GP fit has been accepted.
    /// Absent in checkpoints written before the field existed; such
    /// files still parse (the resumed run simply performs a full fit).
    pub gp: Option<GpHypers>,
}

impl Checkpoint {
    /// Renders the checkpoint as its on-disk JSON form.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(4096);
        o.push('{');
        o.push_str(&format!("\"schema\":{},", string(SCHEMA)));
        let c = &self.config;
        o.push_str(&format!(
            "\"config\":{{\"max_iter\":{},\"batch\":{},\"b_max\":{},\"auc_fraction\":{},\
             \"high_fidelity\":{},\"robustness_objective\":{},\"alpha\":{},\"rho\":{},\
             \"random_fraction\":{},\"candidate_pool\":{},\"uul_percentile\":{},\"seed\":{},\
             \"workers\":{}}},",
            c.max_iter,
            c.batch,
            c.b_max,
            bits(c.auc_fraction),
            c.high_fidelity,
            c.robustness_objective,
            bits(c.alpha),
            bits(c.rho),
            bits(c.random_fraction),
            c.candidate_pool,
            bits(c.uul_percentile),
            c.seed,
            c.workers
        ));
        o.push_str(&format!("\"platform\":{},", string(&self.platform)));
        o.push_str(&format!("\"iterations_done\":{},", self.iterations_done));
        o.push_str(&format!(
            "\"rng\":[{},{},{},{}],",
            self.rng[0], self.rng[1], self.rng[2], self.rng[3]
        ));
        o.push_str(&format!("\"clock_seconds\":{},", bits(self.clock_seconds)));
        o.push_str(&format!("\"uul\":{},", bits(self.uul)));
        o.push_str(&format!("\"accepted_d\":{},", bits_array(&self.accepted_d)));
        o.push_str("\"front\":[");
        push_joined(&mut o, &self.front, |o, e| {
            o.push_str(&format!("{{\"y\":{},\"idx\":{}}}", bits_array(&e.y), e.idx))
        });
        o.push_str("],\"evaluations\":[");
        push_joined(&mut o, &self.evaluations, |o, e| {
            o.push_str("{\"hw\":[");
            push_joined(o, &e.hw_words, |o, w| o.push_str(&w.to_string()));
            o.push_str("],\"assessment\":");
            match &e.assessment {
                None => o.push_str("null"),
                Some(a) => o.push_str(&format!("[{},{},{}]", bits(a[0]), bits(a[1]), bits(a[2]))),
            }
            o.push_str(",\"robustness\":");
            match e.robustness {
                None => o.push_str("null"),
                Some(r) => o.push_str(&bits(r).to_string()),
            }
            o.push_str(&format!(
                ",\"spent\":{},\"iteration\":{},\"fed\":{}}}",
                e.spent, e.iteration, e.fed
            ))
        });
        o.push(']');
        for (key, rows) in [
            ("all_xs", &self.all_xs),
            ("all_ys", &self.all_ys),
            ("hf_xs", &self.hf_xs),
            ("hf_ys", &self.hf_ys),
        ] {
            o.push_str(&format!(",\"{key}\":["));
            push_joined(&mut o, rows, |o, row| o.push_str(&bits_array(row)));
            o.push(']');
        }
        o.push_str(",\"trace\":[");
        push_joined(&mut o, &self.trace, |o, p| {
            o.push_str(&format!("{{\"seconds\":{},\"front\":[", bits(p.seconds)));
            push_joined(o, &p.front, |o, row| o.push_str(&bits_array(row)));
            o.push_str("]}")
        });
        o.push_str("],\"networks\":[");
        push_joined(&mut o, &self.networks, |o, n| {
            o.push_str(&format!(
                "{{\"name\":{},\"layers\":{}}}",
                string(&n.name),
                n.layers
            ))
        });
        o.push_str("],\"counters\":{");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                o.push(',');
            }
            first = false;
            o.push_str(&format!("{}:{v}", string(k)));
        }
        o.push_str("},\"cache\":");
        match &self.cache {
            None => o.push_str("null"),
            Some(c) => o.push_str(&format!(
                "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"trace\":{}}}",
                c.hits,
                c.misses,
                c.evictions,
                string(&c.trace)
            )),
        }
        o.push_str(",\"gp\":");
        match &self.gp {
            None => o.push_str("null"),
            Some(g) => o.push_str(&format!(
                "{{\"length_scale\":{},\"variance\":{},\"noise\":{},\"fitted_n\":{}}}",
                bits(g.length_scale),
                bits(g.variance),
                bits(g.noise),
                g.fitted_n
            )),
        }
        o.push('}');
        o
    }

    /// Parses the on-disk JSON form.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Parse`] for malformed JSON,
    /// [`CheckpointError::Schema`] for a wrong schema string or a
    /// missing/mistyped field.
    pub fn from_json(text: &str) -> Result<Self, CheckpointError> {
        let v = parse_json(text).map_err(CheckpointError::Parse)?;
        let top = v.as_obj("checkpoint")?;
        let schema = get(top, "schema")?.as_str("schema")?;
        if schema != SCHEMA {
            return Err(CheckpointError::Schema(format!(
                "unsupported schema {schema:?} (expected {SCHEMA:?})"
            )));
        }
        let c = get(top, "config")?.as_obj("config")?;
        let config = UnicoConfig {
            max_iter: get(c, "max_iter")?.as_usize("max_iter")?,
            batch: get(c, "batch")?.as_usize("batch")?,
            b_max: get(c, "b_max")?.as_u64("b_max")?,
            auc_fraction: get(c, "auc_fraction")?.as_f64_bits("auc_fraction")?,
            high_fidelity: get(c, "high_fidelity")?.as_bool("high_fidelity")?,
            robustness_objective: get(c, "robustness_objective")?
                .as_bool("robustness_objective")?,
            alpha: get(c, "alpha")?.as_f64_bits("alpha")?,
            rho: get(c, "rho")?.as_f64_bits("rho")?,
            random_fraction: get(c, "random_fraction")?.as_f64_bits("random_fraction")?,
            candidate_pool: get(c, "candidate_pool")?.as_usize("candidate_pool")?,
            uul_percentile: get(c, "uul_percentile")?.as_f64_bits("uul_percentile")?,
            seed: get(c, "seed")?.as_u64("seed")?,
            workers: get(c, "workers")?.as_u64("workers")? as u32,
        };
        let rng_v = get(top, "rng")?.as_arr("rng")?;
        if rng_v.len() != 4 {
            return Err(CheckpointError::Schema("rng must have 4 words".into()));
        }
        let mut rng = [0u64; 4];
        for (dst, v) in rng.iter_mut().zip(rng_v) {
            *dst = v.as_u64("rng word")?;
        }
        let front = get(top, "front")?
            .as_arr("front")?
            .iter()
            .map(|e| {
                let e = e.as_obj("front entry")?;
                Ok(FrontEntry {
                    y: f64_rows_one(get(e, "y")?, "front y")?,
                    idx: get(e, "idx")?.as_usize("front idx")?,
                })
            })
            .collect::<Result<Vec<_>, CheckpointError>>()?;
        let evaluations = get(top, "evaluations")?
            .as_arr("evaluations")?
            .iter()
            .map(|e| {
                let e = e.as_obj("evaluation")?;
                let hw_words = get(e, "hw")?
                    .as_arr("hw")?
                    .iter()
                    .map(|w| w.as_u64("hw word"))
                    .collect::<Result<Vec<_>, _>>()?;
                let assessment = match get(e, "assessment")? {
                    Json::Null => None,
                    v => {
                        let a = f64_rows_one(v, "assessment")?;
                        if a.len() != 3 {
                            return Err(CheckpointError::Schema(
                                "assessment must have 3 objectives".into(),
                            ));
                        }
                        Some([a[0], a[1], a[2]])
                    }
                };
                let robustness = match get(e, "robustness")? {
                    Json::Null => None,
                    v => Some(v.as_f64_bits("robustness")?),
                };
                Ok(EvalSnapshot {
                    hw_words,
                    assessment,
                    robustness,
                    spent: get(e, "spent")?.as_u64("spent")?,
                    iteration: get(e, "iteration")?.as_usize("iteration")?,
                    fed: get(e, "fed")?.as_bool("fed")?,
                })
            })
            .collect::<Result<Vec<_>, CheckpointError>>()?;
        let trace = get(top, "trace")?
            .as_arr("trace")?
            .iter()
            .map(|p| {
                let p = p.as_obj("trace point")?;
                Ok(TraceSnapshot {
                    seconds: get(p, "seconds")?.as_f64_bits("seconds")?,
                    front: f64_rows(get(p, "front")?, "trace front")?,
                })
            })
            .collect::<Result<Vec<_>, CheckpointError>>()?;
        let networks = get(top, "networks")?
            .as_arr("networks")?
            .iter()
            .map(|n| {
                let n = n.as_obj("network")?;
                Ok(NetworkSnapshot {
                    name: get(n, "name")?.as_str("network name")?.to_string(),
                    layers: get(n, "layers")?.as_usize("network layers")?,
                })
            })
            .collect::<Result<Vec<_>, CheckpointError>>()?;
        let mut counters = BTreeMap::new();
        for (k, v) in get(top, "counters")?.as_obj("counters")? {
            counters.insert(k.clone(), v.as_u64("counter")?);
        }
        let cache = match get(top, "cache")? {
            Json::Null => None,
            v => {
                let c = v.as_obj("cache")?;
                Some(CacheSnapshot {
                    hits: get(c, "hits")?.as_u64("cache hits")?,
                    misses: get(c, "misses")?.as_u64("cache misses")?,
                    evictions: get(c, "evictions")?.as_u64("cache evictions")?,
                    trace: get(c, "trace")?.as_str("cache trace")?.to_string(),
                })
            }
        };
        // Lenient lookup: checkpoints written before the `gp` field
        // existed omit it entirely and must keep parsing.
        let gp = match top.iter().find(|(k, _)| k == "gp").map(|(_, v)| v) {
            None | Some(Json::Null) => None,
            Some(v) => {
                let g = v.as_obj("gp")?;
                Some(GpHypers {
                    length_scale: get(g, "length_scale")?.as_f64_bits("gp length_scale")?,
                    variance: get(g, "variance")?.as_f64_bits("gp variance")?,
                    noise: get(g, "noise")?.as_f64_bits("gp noise")?,
                    fitted_n: get(g, "fitted_n")?.as_usize("gp fitted_n")?,
                })
            }
        };
        Ok(Checkpoint {
            config,
            platform: get(top, "platform")?.as_str("platform")?.to_string(),
            iterations_done: get(top, "iterations_done")?.as_usize("iterations_done")?,
            rng,
            clock_seconds: get(top, "clock_seconds")?.as_f64_bits("clock_seconds")?,
            uul: get(top, "uul")?.as_f64_bits("uul")?,
            accepted_d: f64_rows_one(get(top, "accepted_d")?, "accepted_d")?,
            front,
            evaluations,
            all_xs: f64_rows(get(top, "all_xs")?, "all_xs")?,
            all_ys: f64_rows(get(top, "all_ys")?, "all_ys")?,
            hf_xs: f64_rows(get(top, "hf_xs")?, "hf_xs")?,
            hf_ys: f64_rows(get(top, "hf_ys")?, "hf_ys")?,
            trace,
            networks,
            counters,
            cache,
            gp,
        })
    }

    /// Atomically writes the checkpoint to `path`: the JSON is staged
    /// as a uniquely named `<path>.<pid>-<n>.tmp` file, synced to disk,
    /// then renamed over the destination, so a crash mid-write leaves
    /// any previous checkpoint intact — and concurrent writers (N
    /// workers sharing a state dir) can never interleave bytes in a
    /// shared staging file: each rename installs one writer's complete
    /// document.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(
            ".{}-{}.tmp",
            std::process::id(),
            WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let tmp = PathBuf::from(tmp);
        let res = (|| {
            {
                let mut f = fs::File::create(&tmp)?;
                f.write_all(self.to_json().as_bytes())?;
                f.sync_all()?;
            }
            fs::rename(&tmp, path)
        })();
        if res.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        res
    }

    /// Reads and parses a checkpoint file.
    ///
    /// # Errors
    ///
    /// See [`Checkpoint::from_json`]; filesystem failures surface as
    /// [`CheckpointError::Io`].
    pub fn read(path: &Path) -> Result<Self, CheckpointError> {
        Checkpoint::from_json(&fs::read_to_string(path)?)
    }
}

fn bits(v: f64) -> u64 {
    v.to_bits()
}

fn bits_array(vs: &[f64]) -> String {
    let mut o = String::from("[");
    push_joined(&mut o, vs, |o, v| o.push_str(&bits(*v).to_string()));
    o.push(']');
    o
}

fn push_joined<T>(out: &mut String, items: &[T], mut f: impl FnMut(&mut String, &T)) {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        f(out, item);
    }
}

fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------
// Minimal JSON reader for the checkpoint dialect: objects, arrays,
// strings, `true`/`false`/`null`, and *unsigned decimal integers* (the
// writer stores every float as its u64 bit pattern, so signs, fractions
// and exponents never occur and are rejected).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    fn as_obj(&self, what: &str) -> Result<&[(String, Json)], CheckpointError> {
        match self {
            Json::Obj(m) => Ok(m),
            v => Err(mistyped(what, "object", v)),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json], CheckpointError> {
        match self {
            Json::Arr(a) => Ok(a),
            v => Err(mistyped(what, "array", v)),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, CheckpointError> {
        match self {
            Json::Str(s) => Ok(s),
            v => Err(mistyped(what, "string", v)),
        }
    }

    fn as_bool(&self, what: &str) -> Result<bool, CheckpointError> {
        match self {
            Json::Bool(b) => Ok(*b),
            v => Err(mistyped(what, "bool", v)),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, CheckpointError> {
        match self {
            Json::Num(n) => Ok(*n),
            v => Err(mistyped(what, "number", v)),
        }
    }

    fn as_usize(&self, what: &str) -> Result<usize, CheckpointError> {
        usize::try_from(self.as_u64(what)?)
            .map_err(|_| CheckpointError::Schema(format!("{what} overflows usize")))
    }

    fn as_f64_bits(&self, what: &str) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.as_u64(what)?))
    }
}

fn mistyped(what: &str, want: &str, got: &Json) -> CheckpointError {
    CheckpointError::Schema(format!(
        "{what}: expected {want}, found {}",
        got.type_name()
    ))
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, CheckpointError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| CheckpointError::Schema(format!("missing field {key:?}")))
}

fn f64_rows_one(v: &Json, what: &str) -> Result<Vec<f64>, CheckpointError> {
    v.as_arr(what)?
        .iter()
        .map(|b| b.as_f64_bits(what))
        .collect()
}

fn f64_rows(v: &Json, what: &str) -> Result<Vec<Vec<f64>>, CheckpointError> {
    v.as_arr(what)?
        .iter()
        .map(|r| f64_rows_one(r, what))
        .collect()
}

fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            Some(_) if self.eat_literal("null") => Ok(Json::Null),
            Some(_) if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(_) if self.eat_literal("false") => Ok(Json::Bool(false)),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
            return Err(format!(
                "non-integer number at byte {start} (checkpoint floats are bit patterns)"
            ));
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        s.parse::<u64>()
            .map(Json::Num)
            .map_err(|_| format!("number out of u64 range at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "\\u escape not a scalar".to_string())?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control character at byte {}", self.pos))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            config: UnicoConfig {
                max_iter: 3,
                batch: 6,
                seed: 7,
                ..UnicoConfig::default()
            },
            platform: "spatial-edge".to_string(),
            iterations_done: 2,
            rng: [1, 2, 3, u64::MAX],
            clock_seconds: 1234.5678,
            uul: f64::INFINITY,
            accepted_d: vec![0.25, 0.5, f64::NAN],
            front: vec![FrontEntry {
                y: vec![1.5, -2.5, 0.0],
                idx: 4,
            }],
            evaluations: vec![
                EvalSnapshot {
                    hw_words: vec![4, 8, 1024, 65536, 64, 1],
                    assessment: Some([0.001, 120.0, 3.25]),
                    robustness: Some(0.125),
                    spent: 32,
                    iteration: 0,
                    fed: true,
                },
                EvalSnapshot {
                    hw_words: vec![2, 2, 512, 32768, 32, 0],
                    assessment: None,
                    robustness: None,
                    spent: 8,
                    iteration: 1,
                    fed: false,
                },
            ],
            all_xs: vec![vec![0.1, 0.2]],
            all_ys: vec![vec![1.0, 2.0, 3.0]],
            hf_xs: vec![],
            hf_ys: vec![],
            trace: vec![TraceSnapshot {
                seconds: 10.0,
                front: vec![vec![1.0, 2.0, 3.0]],
            }],
            networks: vec![NetworkSnapshot {
                name: "mobilenet_v1".to_string(),
                layers: 1,
            }],
            counters: [("hw_evals".to_string(), 12), ("gp_fits".to_string(), 2)]
                .into_iter()
                .collect(),
            cache: Some(CacheSnapshot {
                hits: 5,
                misses: 7,
                evictions: 0,
                trace: "unico.evalcache.trace.v1\ncount 0\n".to_string(),
            }),
            gp: Some(GpHypers {
                length_scale: 0.75,
                variance: 1.25,
                noise: 1e-5,
                fitted_n: 16,
            }),
        }
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let ck = sample();
        let json = ck.to_json();
        let back = Checkpoint::from_json(&json).expect("round trip parses");
        // NaN forbids a direct PartialEq; byte-compare the re-render.
        assert_eq!(back.to_json(), json);
        assert_eq!(back.iterations_done, 2);
        assert_eq!(back.rng, [1, 2, 3, u64::MAX]);
        assert!(back.uul.is_infinite());
        assert!(back.accepted_d[2].is_nan());
        assert_eq!(back.evaluations[1].assessment, None);
        assert_eq!(back.config.seed, 7);
        assert_eq!(back.cache.as_ref().unwrap().misses, 7);
        let gp = back.gp.expect("gp hypers survive the round trip");
        assert_eq!(gp.length_scale.to_bits(), 0.75f64.to_bits());
        assert_eq!(gp.noise.to_bits(), 1e-5f64.to_bits());
        assert_eq!(gp.fitted_n, 16);
    }

    #[test]
    fn checkpoint_without_gp_field_still_parses() {
        // Files written before the `gp` field existed omit it entirely.
        let mut ck = sample();
        ck.gp = None;
        let json = ck.to_json().replace(",\"gp\":null", "");
        let back = Checkpoint::from_json(&json).expect("legacy checkpoint parses");
        assert!(back.gp.is_none());
    }

    #[test]
    fn empty_collections_round_trip() {
        let mut ck = sample();
        ck.front.clear();
        ck.evaluations.clear();
        ck.accepted_d.clear();
        ck.trace.clear();
        ck.networks.clear();
        ck.counters.clear();
        ck.cache = None;
        let json = ck.to_json();
        let back = Checkpoint::from_json(&json).expect("parses");
        assert_eq!(back.to_json(), json);
        assert!(back.cache.is_none());
    }

    #[test]
    fn schema_mismatch_rejected() {
        let json = sample()
            .to_json()
            .replace("unico.checkpoint.v1", "unico.checkpoint.v9");
        match Checkpoint::from_json(&json) {
            Err(CheckpointError::Schema(m)) => assert!(m.contains("v9")),
            other => panic!("expected schema error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_json_rejected() {
        for bad in [
            "",
            "{",
            "{\"schema\":}",
            "nope",
            "{\"schema\":\"unico.checkpoint.v1\"} trailing",
            "{\"a\":1.5}",
            "{\"a\":-3}",
        ] {
            assert!(
                matches!(Checkpoint::from_json(bad), Err(CheckpointError::Parse(_))),
                "{bad:?} must be a parse error"
            );
        }
        // Well-formed JSON with a missing field is a schema error.
        assert!(matches!(
            Checkpoint::from_json("{\"schema\":\"unico.checkpoint.v1\"}"),
            Err(CheckpointError::Schema(_))
        ));
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join("unico-ckpt-test");
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("atomic_write_then_read.checkpoint");
        let ck = sample();
        ck.write_atomic(&path).expect("write");
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!PathBuf::from(tmp).exists(), "staging file renamed away");
        let back = Checkpoint::read(&path).expect("read back");
        assert_eq!(back.to_json(), ck.to_json());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let p = PathBuf::from("/nonexistent/unico.checkpoint");
        assert!(matches!(Checkpoint::read(&p), Err(CheckpointError::Io(_))));
    }

    #[test]
    fn policy_cadence_validation() {
        let p = CheckpointPolicy::new("/tmp/x.ck");
        assert_eq!(p.every, 1);
        assert_eq!(p.clone().with_every(5).every, 5);
        let e = CheckpointError::Parse("boom".into());
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cadence_panics() {
        let _ = CheckpointPolicy::new("/tmp/x.ck").with_every(0);
    }

    #[test]
    fn parse_every_accepts_positive_integers_only() {
        assert_eq!(parse_every(None), Ok(1));
        assert_eq!(parse_every(Some("1")), Ok(1));
        assert_eq!(parse_every(Some("25")), Ok(25));
        assert_eq!(parse_every(Some(" 3\n")), Ok(3), "whitespace tolerated");
        for bad in ["", "0", "-2", "2.5", "five", "1e3", "3 iterations"] {
            let err = parse_every(Some(bad)).expect_err(bad);
            assert!(
                err.contains("UNICO_CHECKPOINT_EVERY") && err.contains(bad),
                "error must name the variable and the value: {err}"
            );
        }
    }

    #[test]
    fn scan_dir_sorts_resumable_and_isolates_corrupt() {
        let dir = std::env::temp_dir().join("unico-ckpt-scan-test");
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).expect("mkdir");
        let ck = sample();
        ck.write_atomic(&dir.join("b.checkpoint")).expect("write b");
        ck.write_atomic(&dir.join("a.checkpoint")).expect("write a");
        fs::write(dir.join("broken.checkpoint"), "{not json").expect("write corrupt");
        // Non-checkpoint files and stale staging files are ignored.
        fs::write(dir.join("c.checkpoint.tmp"), "partial").expect("write tmp");
        fs::write(dir.join("notes.txt"), "irrelevant").expect("write txt");
        let scan = scan_dir(&dir).expect("scan");
        let names: Vec<_> = scan
            .resumable
            .iter()
            .map(|(p, _)| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["a.checkpoint", "b.checkpoint"]);
        assert_eq!(scan.resumable[0].1.iterations_done, 2);
        assert_eq!(scan.corrupt.len(), 1);
        assert!(scan.corrupt[0].0.ends_with("broken.checkpoint"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_dir_missing_directory_is_io_error() {
        assert!(scan_dir(Path::new("/nonexistent/unico-ckpts")).is_err());
    }

    /// Regression for the cluster state dir: N writers hammering the
    /// same checkpoint path while a scanner loops over the directory.
    /// Unique staging names mean no writer can interleave bytes in
    /// another's tmp file, every scan must parse whatever rename was
    /// last installed, and vanishing files (rename churn) must never be
    /// reported as corrupt.
    #[test]
    fn concurrent_writers_and_scans_never_observe_torn_state() {
        let dir = std::env::temp_dir().join(format!(
            "unico-ckpt-concurrent-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("shared.checkpoint");
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let path = path.clone();
                std::thread::spawn(move || {
                    for i in 0..25 {
                        let mut ck = sample();
                        ck.iterations_done = (w * 100 + i) as usize;
                        ck.write_atomic(&path).expect("concurrent write");
                    }
                })
            })
            .collect();
        let scanner = {
            let dir = dir.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let scan = scan_dir(&dir).expect("scan during writes");
                    assert!(
                        scan.corrupt.is_empty(),
                        "concurrent atomic writers must never expose a torn file: {:?}",
                        scan.corrupt
                    );
                }
            })
        };
        for w in writers {
            w.join().expect("writer");
        }
        scanner.join().expect("scanner");
        // The survivor is one writer's complete document.
        let back = Checkpoint::read(&path).expect("final read");
        assert_eq!(back.config.seed, 7);
        // No staging litter: every tmp was renamed or cleaned up.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .expect("list")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "staging files left behind: {leftovers:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut ck = sample();
        ck.platform = "weird \"name\"\n\twith\\escapes \u{1F600} \u{0001}".to_string();
        let back = Checkpoint::from_json(&ck.to_json()).expect("parses");
        assert_eq!(back.platform, ck.platform);
    }
}
