//! Property-based tests of the Ascend-like cycle-level model: totality
//! over the design/mapping space and architectural monotonicities.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use unico_camodel::{AscendConfig, AscendModel, AscendSpace, DepthFirstFusionSearch};
use unico_mapping::MappingSpace;
use unico_workloads::TensorOp;

fn arb_nest() -> impl Strategy<Value = unico_workloads::LoopNest> {
    (1u64..=64, 1u64..=64, 4u64..=64, 4u64..=64, 1u64..=5).prop_map(|(k, c, y, x, r)| {
        TensorOp::Conv2d {
            n: 1,
            k,
            c,
            y,
            x,
            r,
            s: r,
            stride: 1,
        }
        .to_loop_nest()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The simulator never panics: every (config, mapping) pair either
    /// prices or rejects cleanly, and priced results are physical.
    #[test]
    fn model_total_over_space(nest in arb_nest(), seed in 0u64..500) {
        let model = AscendModel::default();
        let space = AscendSpace::default();
        let mspace = MappingSpace::new(&nest);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..6 {
            let hw = space.sample(&mut rng);
            let mapping = mspace.sample(&mut rng);
            if let Ok((ppa, bd)) = model.evaluate_with_breakdown(&hw, &mapping, &nest) {
                prop_assert!(ppa.latency_s > 0.0);
                prop_assert!(ppa.power_mw > 0.0);
                prop_assert!(ppa.energy_pj > 0.0);
                prop_assert!(ppa.area_mm2 >= 2.0, "area below base overhead");
                prop_assert!(bd.total_tiles >= 1);
                // Cube throughput bound: latency can never beat MACs at
                // full cube rate.
                let floor = nest.macs() as f64
                    / (hw.cube_macs() as f64 * model.tech().clock_hz);
                prop_assert!(ppa.latency_s >= floor * 0.99);
            }
        }
    }

    /// The deterministic seed mapping of the depth-first search fits the
    /// hardware it was built for.
    #[test]
    fn seed_mapping_always_fits(nest in arb_nest(), seed in 0u64..200) {
        let space = AscendSpace::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let hw = space.sample(&mut rng);
        let mapping = DepthFirstFusionSearch::seed_mapping(&hw, &nest);
        let model = AscendModel::default();
        prop_assert!(
            model.evaluate(&hw, &mapping, &nest).is_ok(),
            "seed mapping overflows on {hw}"
        );
    }

    /// More L0 bank groups (more double buffering) never slow a fixed
    /// mapping down.
    #[test]
    fn more_banks_never_hurt(nest in arb_nest(), seed in 0u64..200) {
        let model = AscendModel::default();
        let single = AscendConfig {
            l0a_banks: 1,
            l0b_banks: 1,
            l0c_banks: 1,
            ..AscendConfig::expert_default()
        };
        let double = AscendConfig::expert_default();
        // A mapping that fits the *single-banked* (tighter) layout fits
        // both.
        let mapping = DepthFirstFusionSearch::seed_mapping(&single, &nest);
        let _ = seed;
        if let (Ok(a), Ok(b)) = (
            model.evaluate(&single, &mapping, &nest),
            model.evaluate(&double, &mapping, &nest),
        ) {
            prop_assert!(
                b.latency_s <= a.latency_s + 1e-12,
                "double-buffered slower: {} vs {}",
                b.latency_s,
                a.latency_s
            );
        }
    }

    /// Area is monotone in every buffer size.
    #[test]
    fn area_monotone_in_buffers(extra in 1u32..256) {
        let model = AscendModel::default();
        let base = AscendConfig::expert_default();
        let bigger = AscendConfig {
            l0a_kb: base.l0a_kb + extra,
            l1_kb: base.l1_kb + extra,
            ub_kb: base.ub_kb + extra,
            ..base
        };
        prop_assert!(model.area_mm2(&bigger) > model.area_mm2(&base));
    }
}
