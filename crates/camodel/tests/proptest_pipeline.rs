//! Property-based tests of the pipeline-timeline simulator.

use proptest::prelude::*;

use unico_camodel::{PipelineSim, StageSpec};

fn stages(depths: &[u32]) -> Vec<StageSpec> {
    depths
        .iter()
        .map(|&d| StageSpec {
            name: "s",
            out_depth: d,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Finish time is bounded below by both the critical path of one
    /// tile and the bottleneck-stage throughput bound.
    #[test]
    fn finish_respects_lower_bounds(
        durations in proptest::collection::vec(0.5f64..20.0, 2..6),
        depths_seed in 0u32..8,
        tiles in 1u64..40,
    ) {
        let depths: Vec<u32> = (0..durations.len())
            .map(|i| 1 + ((depths_seed >> i) & 1))
            .collect();
        let mut sim = PipelineSim::new(stages(&depths));
        for _ in 0..tiles {
            sim.push_tile(&durations);
        }
        let finish = sim.finish_cycle();
        let critical: f64 = durations.iter().sum();
        let bottleneck = durations.iter().copied().fold(0.0, f64::max);
        prop_assert!(finish >= critical - 1e-9, "below one-tile critical path");
        prop_assert!(
            finish >= bottleneck * tiles as f64 - 1e-9,
            "below throughput bound"
        );
        // And bounded above by fully serial execution.
        prop_assert!(finish <= critical * tiles as f64 + 1e-9);
    }

    /// run_uniform is exactly equivalent to pushing tiles one by one.
    #[test]
    fn run_uniform_equals_explicit(
        durations in proptest::collection::vec(0.5f64..10.0, 2..5),
        depths_seed in 0u32..8,
        tiles in 1u64..200,
    ) {
        let depths: Vec<u32> = (0..durations.len())
            .map(|i| 1 + ((depths_seed >> i) & 1))
            .collect();
        let mut a = PipelineSim::new(stages(&depths));
        let mut b = PipelineSim::new(stages(&depths));
        for _ in 0..tiles {
            a.push_tile(&durations);
        }
        let fb = b.run_uniform(&durations, tiles);
        prop_assert!((a.finish_cycle() - fb).abs() < 1e-6,
            "explicit {} vs uniform {}", a.finish_cycle(), fb);
        prop_assert_eq!(a.tiles_done(), b.tiles_done());
    }

    /// Increasing any stage duration never speeds the pipeline up, and
    /// deeper buffers never slow it down.
    #[test]
    fn monotonicity(
        durations in proptest::collection::vec(0.5f64..10.0, 3..5),
        bump_idx in 0usize..3,
        bump in 0.1f64..5.0,
        tiles in 1u64..60,
    ) {
        let n = durations.len();
        let bump_idx = bump_idx % n;
        let base_depths = vec![1u32; n];
        let deep_depths = vec![2u32; n];

        let run = |durs: &[f64], depths: &[u32]| {
            let mut s = PipelineSim::new(stages(depths));
            s.run_uniform(durs, tiles)
        };
        let base = run(&durations, &base_depths);
        let mut slower = durations.clone();
        slower[bump_idx] += bump;
        prop_assert!(run(&slower, &base_depths) >= base - 1e-9);
        prop_assert!(run(&durations, &deep_depths) <= base + 1e-9);
    }

    /// Stage busy totals equal duration × tiles exactly.
    #[test]
    fn busy_accounting_exact(
        durations in proptest::collection::vec(0.5f64..10.0, 2..5),
        tiles in 1u64..300,
    ) {
        let depths = vec![2u32; durations.len()];
        let mut s = PipelineSim::new(stages(&depths));
        s.run_uniform(&durations, tiles);
        for (i, d) in durations.iter().enumerate() {
            let expect = d * tiles as f64;
            prop_assert!((s.stage_busy_cycles()[i] - expect).abs() < 1e-6);
        }
        let (_, util) = s.bottleneck().expect("stages exist");
        prop_assert!(util > 0.0 && util <= 1.0 + 1e-9);
    }
}
