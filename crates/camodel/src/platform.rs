//! `Platform` implementation for the Ascend-like core.

use std::sync::Arc;

use rand::rngs::StdRng;

use unico_mapping::{MappingCost, MappingSearcher};
use unico_model::{EvalCache, Platform};
use unico_workloads::LoopNest;

use crate::config::{AscendConfig, AscendSpace};
use crate::dfsearch::DepthFirstFusionSearch;
use crate::sim::{AscendModel, BoundAscendCost};

/// The Ascend-like co-design platform: cycle-level simulator + enumerated
/// design space + depth-first fusion mapping search.
#[derive(Debug, Clone)]
pub struct AscendPlatform {
    model: AscendModel,
    space: AscendSpace,
    cache: Option<Arc<EvalCache>>,
    batch_eval: bool,
}

impl Default for AscendPlatform {
    fn default() -> Self {
        AscendPlatform {
            model: AscendModel::default(),
            space: AscendSpace::default(),
            cache: None,
            batch_eval: unico_model::batch_eval_from_env(),
        }
    }
}

impl AscendPlatform {
    /// Creates the platform with default technology constants and space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the batched cache-lookup toggle (the constructor reads
    /// `UNICO_BATCH_EVAL`; see `unico_model::batch_eval_from_env`).
    pub fn with_batch_eval(mut self, enabled: bool) -> Self {
        self.batch_eval = enabled;
        self
    }

    /// Attaches an evaluation cache; every bound cost memoizes through
    /// it. Worth far more here than on the analytical platform: one
    /// cycle-level evaluation costs microseconds, a hit costs tens of
    /// nanoseconds.
    pub fn with_eval_cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The underlying cycle-level model.
    pub fn model(&self) -> &AscendModel {
        &self.model
    }

    /// The hardware design space.
    pub fn space(&self) -> &AscendSpace {
        &self.space
    }
}

impl Platform for AscendPlatform {
    type Hw = AscendConfig;

    fn name(&self) -> &str {
        "ascend-like"
    }

    fn feature_dim(&self) -> usize {
        13
    }

    fn encode(&self, hw: &AscendConfig) -> Vec<f64> {
        self.space.features(hw)
    }

    fn sample_hw(&self, rng: &mut StdRng) -> AscendConfig {
        self.space.sample(rng)
    }

    fn perturb_hw(&self, rng: &mut StdRng, hw: &AscendConfig) -> AscendConfig {
        self.space.perturb(rng, hw)
    }

    fn crossover_hw(&self, rng: &mut StdRng, a: &AscendConfig, b: &AscendConfig) -> AscendConfig {
        self.space.crossover(rng, a, b)
    }

    fn area_mm2(&self, hw: &AscendConfig) -> f64 {
        self.model.area_mm2(hw)
    }

    fn hw_space_size(&self) -> u64 {
        self.space.size()
    }

    fn bind<'a>(
        &'a self,
        hw: &AscendConfig,
        nest: &LoopNest,
    ) -> Box<dyn MappingCost + Send + Sync + 'a> {
        Box::new(
            BoundAscendCost::new(&self.model, *hw, *nest)
                .with_cache(self.cache.as_deref())
                .with_batch_eval(self.batch_eval),
        )
    }

    fn make_searcher(
        &self,
        hw: &AscendConfig,
        nest: &LoopNest,
        seed: u64,
    ) -> Box<dyn MappingSearcher + Send> {
        Box::new(DepthFirstFusionSearch::new(hw, nest, seed))
    }

    fn eval_cost_seconds(&self) -> f64 {
        // Representative mid-size workload cost; per-nest costs come from
        // the bound oracle.
        300.0
    }

    fn describe(&self, hw: &AscendConfig) -> String {
        hw.to_string()
    }

    fn eval_cache(&self) -> Option<&EvalCache> {
        self.cache.as_deref()
    }

    fn hw_words(&self, hw: &AscendConfig) -> Option<Vec<u64>> {
        Some(
            [
                hw.cube_m,
                hw.cube_n,
                hw.cube_k,
                hw.l0a_kb,
                hw.l0b_kb,
                hw.l0c_kb,
                hw.l0a_banks,
                hw.l0b_banks,
                hw.l0c_banks,
                hw.l1_kb,
                hw.ub_kb,
                hw.pb_kb,
                hw.icache_kb,
            ]
            .iter()
            .map(|&w| w as u64)
            .collect(),
        )
    }

    fn hw_from_words(&self, words: &[u64]) -> Option<AscendConfig> {
        if words.len() != 13 {
            return None;
        }
        let mut w = [0u32; 13];
        for (dst, &src) in w.iter_mut().zip(words) {
            *dst = u32::try_from(src).ok()?;
        }
        Some(AscendConfig {
            cube_m: w[0],
            cube_n: w[1],
            cube_k: w[2],
            l0a_kb: w[3],
            l0b_kb: w[4],
            l0c_kb: w[5],
            l0a_banks: w[6],
            l0b_banks: w[7],
            l0c_banks: w[8],
            l1_kb: w[9],
            ub_kb: w[10],
            pb_kb: w[11],
            icache_kb: w[12],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use unico_workloads::TensorOp;

    #[test]
    fn platform_contract() {
        let p = AscendPlatform::new();
        let mut rng = StdRng::seed_from_u64(1);
        let hw = p.sample_hw(&mut rng);
        assert_eq!(p.encode(&hw).len(), p.feature_dim());
        assert!(p.area_mm2(&hw) > 0.0);
        assert!(p.hw_space_size() as f64 > 1e7);
        assert!(p.eval_cost_seconds() >= 120.0);
        assert_eq!(p.name(), "ascend-like");
    }

    #[test]
    fn hw_words_round_trip_exactly() {
        let p = AscendPlatform::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..32 {
            let hw = p.sample_hw(&mut rng);
            let words = p.hw_words(&hw).expect("ascend supports checkpointing");
            let back = p.hw_from_words(&words).expect("words round-trip");
            assert_eq!(back, hw);
        }
        assert!(p.hw_from_words(&[1, 2]).is_none());
        assert!(p.hw_from_words(&[u64::MAX; 13]).is_none());
    }

    #[test]
    fn df_search_through_platform() {
        let p = AscendPlatform::new();
        let hw = AscendConfig::expert_default();
        let nest = TensorOp::Conv2d {
            n: 1,
            k: 16,
            c: 8,
            y: 32,
            x: 32,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest();
        let cost = p.bind(&hw, &nest);
        let mut s = p.make_searcher(&hw, &nest, 3);
        s.run_until(cost.as_ref(), 60);
        assert!(s.best().is_some(), "df search must find a feasible mapping");
    }
}
