//! A resource-timeline pipeline simulator.
//!
//! Models a linear pipeline of hardware stages (MTE2 → MTE1 → CUBE →
//! FIXP → VEC) processing a stream of tiles. Each stage processes one
//! tile at a time; the buffer *between* stage `s` and `s+1` has a depth
//! (bank groups): depth 1 serializes producer and consumer, depth ≥ 2
//! lets them overlap (double buffering).

/// Static description of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSpec {
    /// Stage label for diagnostics.
    pub name: &'static str,
    /// Depth of the buffer feeding the *next* stage (1 = no double
    /// buffering, ≥ 2 = overlapped).
    pub out_depth: u32,
}

/// Cycle-timeline simulation of a tile stream through a linear pipeline.
#[derive(Debug, Clone)]
pub struct PipelineSim {
    stages: Vec<StageSpec>,
    /// `done[s]` holds, for the most recent `max_depth` tiles, the cycle
    /// at which stage `s` finished each of them (ring buffer).
    history: Vec<Vec<f64>>,
    stage_free: Vec<f64>,
    stage_busy: Vec<f64>,
    tiles_done: u64,
    last_finish: f64,
}

impl PipelineSim {
    /// Creates a simulator for the given stages.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty or any depth is zero.
    pub fn new(stages: Vec<StageSpec>) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        assert!(
            stages.iter().all(|s| s.out_depth >= 1),
            "buffer depth must be ≥ 1"
        );
        let n = stages.len();
        PipelineSim {
            stages,
            history: vec![Vec::new(); n],
            stage_free: vec![0.0; n],
            stage_busy: vec![0.0; n],
            tiles_done: 0,
            last_finish: 0.0,
        }
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Tiles pushed so far.
    pub fn tiles_done(&self) -> u64 {
        self.tiles_done
    }

    /// Cycle at which the last pushed tile left the pipeline.
    pub fn finish_cycle(&self) -> f64 {
        self.last_finish
    }

    /// Total busy cycles accumulated per stage, in stage order. Divided
    /// by [`PipelineSim::finish_cycle`], this is per-stage utilization —
    /// the bottleneck diagnosis an architect reads off a CAModel run.
    pub fn stage_busy_cycles(&self) -> &[f64] {
        &self.stage_busy
    }

    /// Name and utilization of the busiest stage.
    pub fn bottleneck(&self) -> Option<(&'static str, f64)> {
        let total = self.last_finish.max(1e-12);
        self.stage_busy
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, &busy)| (self.stages[i].name, busy / total))
    }

    /// Pushes one tile with the given per-stage durations (cycles) and
    /// returns the cycle at which it leaves the last stage.
    ///
    /// # Panics
    ///
    /// Panics if `durations.len() != self.num_stages()`.
    pub fn push_tile(&mut self, durations: &[f64]) -> f64 {
        assert_eq!(
            durations.len(),
            self.stages.len(),
            "one duration per stage required"
        );
        let n = self.stages.len();
        let mut done_prev_stage = 0.0f64; // completion of this tile at s-1
        let mut finishes = vec![0.0f64; n];
        #[allow(clippy::needless_range_loop)]
        for s in 0..n {
            let mut start = done_prev_stage.max(self.stage_free[s]);
            // Back-pressure: the output buffer of stage s holds
            // `out_depth` tiles; stage s cannot start tile i before the
            // consumer (stage s+1) has freed the slot used
            // `out_depth - 1` tiles ago.
            if s + 1 < n {
                let depth = self.stages[s].out_depth as usize;
                let hist = &self.history[s + 1];
                if hist.len() >= depth {
                    let gate = hist[hist.len() - depth];
                    start = start.max(gate);
                }
            }
            let finish = start + durations[s];
            self.stage_free[s] = finish;
            self.stage_busy[s] += durations[s];
            finishes[s] = finish;
            done_prev_stage = finish;
        }
        for (s, &fin) in finishes.iter().enumerate() {
            let hist = &mut self.history[s];
            hist.push(fin);
            // Keep only what back-pressure lookups can reach.
            let keep = self
                .stages
                .iter()
                .map(|st| st.out_depth as usize)
                .max()
                .unwrap_or(1)
                + 2;
            if hist.len() > 4 * keep {
                hist.drain(..hist.len() - keep);
            }
        }
        self.tiles_done += 1;
        self.last_finish = finishes[n - 1];
        self.last_finish
    }

    /// Simulates `count` identical tiles, exploiting steady state: after
    /// a warm-up prefix the per-tile increment is constant, so the tail
    /// is extrapolated analytically. Returns the total finish cycle.
    pub fn run_uniform(&mut self, durations: &[f64], count: u64) -> f64 {
        const WARMUP: u64 = 64;
        if count == 0 {
            return self.last_finish;
        }
        let explicit = count.min(WARMUP);
        let mut prev = self.last_finish;
        let mut delta = 0.0;
        for _ in 0..explicit {
            let f = self.push_tile(durations);
            delta = f - prev;
            prev = f;
        }
        let remaining = count - explicit;
        if remaining > 0 {
            for (s, d) in durations.iter().enumerate() {
                self.stage_busy[s] += d * remaining as f64;
            }
            // Steady state: each further tile adds exactly `delta`
            // (the bottleneck stage's duration once pipelined).
            self.last_finish += delta * remaining as f64;
            self.tiles_done += remaining;
            for s in 0..self.stages.len() {
                self.stage_free[s] += delta * remaining as f64;
                if let Some(last) = self.history[s].last().copied() {
                    self.history[s].push(last + delta * remaining as f64);
                }
            }
        }
        self.last_finish
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stages(depths: &[u32]) -> Vec<StageSpec> {
        depths
            .iter()
            .map(|&d| StageSpec {
                name: "s",
                out_depth: d,
            })
            .collect()
    }

    #[test]
    fn single_stage_serializes() {
        let mut p = PipelineSim::new(stages(&[1]));
        assert_eq!(p.push_tile(&[10.0]), 10.0);
        assert_eq!(p.push_tile(&[10.0]), 20.0);
        assert_eq!(p.tiles_done(), 2);
    }

    #[test]
    fn double_buffering_overlaps_stages() {
        // Two stages, each 10 cycles. With depth-2 buffers the second
        // tile's stage-0 runs while tile 1 is in stage 1.
        let mut db = PipelineSim::new(stages(&[2, 2]));
        db.push_tile(&[10.0, 10.0]);
        let t2 = db.push_tile(&[10.0, 10.0]);
        assert_eq!(t2, 30.0); // pipelined: 10 startup + 2x10

        let mut serial = PipelineSim::new(stages(&[1, 1]));
        serial.push_tile(&[10.0, 10.0]);
        let s2 = serial.push_tile(&[10.0, 10.0]);
        assert!(s2 > t2, "serial {s2} should exceed pipelined {t2}");
    }

    #[test]
    fn steady_state_rate_is_bottleneck() {
        let mut p = PipelineSim::new(stages(&[2, 2, 2]));
        let d = [3.0, 7.0, 2.0];
        let mut prev = 0.0;
        let mut deltas = Vec::new();
        for _ in 0..50 {
            let f = p.push_tile(&d);
            deltas.push(f - prev);
            prev = f;
        }
        // After warm-up every tile takes exactly the bottleneck time.
        assert!((deltas[49] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn run_uniform_matches_explicit() {
        let d = [3.0, 7.0, 2.0];
        let mut explicit = PipelineSim::new(stages(&[2, 2, 2]));
        for _ in 0..500 {
            explicit.push_tile(&d);
        }
        let mut fast = PipelineSim::new(stages(&[2, 2, 2]));
        let total = fast.run_uniform(&d, 500);
        assert!((total - explicit.finish_cycle()).abs() < 1e-6);
        assert_eq!(fast.tiles_done(), 500);
    }

    #[test]
    fn zero_tiles_is_noop() {
        let mut p = PipelineSim::new(stages(&[2]));
        assert_eq!(p.run_uniform(&[5.0], 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_panics() {
        let _ = PipelineSim::new(vec![]);
    }
}
