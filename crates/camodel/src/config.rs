//! The Ascend-like hardware configuration and its design space.

use std::fmt;

use rand::rngs::StdRng;
use rand::Rng;

/// One configuration of the Ascend-like core: cube intrinsic shape, the
/// three L0 operand buffers with their bank groups, L1, the
/// unified/vector buffer, the parameter buffer and the ICache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AscendConfig {
    /// Cube intrinsic M (output rows per beat).
    pub cube_m: u32,
    /// Cube intrinsic N (output columns per beat).
    pub cube_n: u32,
    /// Cube intrinsic K (reduction depth per beat).
    pub cube_k: u32,
    /// L0A (left operand) size, KiB.
    pub l0a_kb: u32,
    /// L0B (right operand) size, KiB.
    pub l0b_kb: u32,
    /// L0C (accumulator) size, KiB.
    pub l0c_kb: u32,
    /// L0A bank groups (≥ 2 enables double buffering).
    pub l0a_banks: u32,
    /// L0B bank groups.
    pub l0b_banks: u32,
    /// L0C bank groups.
    pub l0c_banks: u32,
    /// L1 staging buffer, KiB.
    pub l1_kb: u32,
    /// Unified (vector) buffer, KiB.
    pub ub_kb: u32,
    /// Parameter buffer, KiB.
    pub pb_kb: u32,
    /// Instruction cache, KiB.
    pub icache_kb: u32,
}

impl AscendConfig {
    /// The expert-selected default architecture the paper's Fig. 11
    /// compares against: a balanced 16×16×16 cube with symmetric L0A/L0B.
    pub fn expert_default() -> Self {
        AscendConfig {
            cube_m: 16,
            cube_n: 16,
            cube_k: 16,
            l0a_kb: 64,
            l0b_kb: 64,
            l0c_kb: 256,
            l0a_banks: 2,
            l0b_banks: 2,
            l0c_banks: 2,
            l1_kb: 1024,
            ub_kb: 256,
            pb_kb: 32,
            icache_kb: 32,
        }
    }

    /// MACs the cube performs per beat.
    pub fn cube_macs(&self) -> u64 {
        u64::from(self.cube_m) * u64::from(self.cube_n) * u64::from(self.cube_k)
    }
}

impl fmt::Display for AscendConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cube {}x{}x{}, L0A {}K/{}b, L0B {}K/{}b, L0C {}K/{}b, L1 {}K, UB {}K, PB {}K, IC {}K",
            self.cube_m,
            self.cube_n,
            self.cube_k,
            self.l0a_kb,
            self.l0a_banks,
            self.l0b_kb,
            self.l0b_banks,
            self.l0c_kb,
            self.l0c_banks,
            self.l1_kb,
            self.ub_kb,
            self.pb_kb,
            self.icache_kb
        )
    }
}

/// The enumerated Ascend-like design space (≈ `2e8` points; the paper
/// quotes `1e9` with finer buffer granularity — the search dynamics are
/// unchanged).
#[derive(Debug, Clone)]
pub struct AscendSpace {
    cube_opts: Vec<u32>,
    l0ab_opts: Vec<u32>,
    l0c_opts: Vec<u32>,
    bank_opts: Vec<u32>,
    l1_opts: Vec<u32>,
    ub_opts: Vec<u32>,
    pb_opts: Vec<u32>,
    icache_opts: Vec<u32>,
}

impl Default for AscendSpace {
    fn default() -> Self {
        AscendSpace {
            cube_opts: vec![8, 16, 32],
            l0ab_opts: vec![16, 32, 48, 64, 96, 128, 192, 256],
            l0c_opts: vec![32, 64, 96, 128, 192, 256, 384, 512],
            bank_opts: vec![1, 2, 4],
            l1_opts: vec![256, 512, 768, 1024, 1536, 2048],
            ub_opts: vec![64, 128, 192, 256, 384, 512],
            pb_opts: vec![16, 32, 64],
            icache_opts: vec![16, 32, 64],
        }
    }
}

/// Genome length for [`AscendSpace`] integer encoding.
pub(crate) const GENOME_LEN: usize = 13;

impl AscendSpace {
    /// Number of configurations in the space.
    pub fn size(&self) -> u64 {
        (self.cube_opts.len() as u64).pow(3)
            * (self.l0ab_opts.len() as u64).pow(2)
            * self.l0c_opts.len() as u64
            * (self.bank_opts.len() as u64).pow(3)
            * self.l1_opts.len() as u64
            * self.ub_opts.len() as u64
            * self.pb_opts.len() as u64
            * self.icache_opts.len() as u64
    }

    fn gene_lists(&self) -> [&[u32]; GENOME_LEN] {
        [
            &self.cube_opts,
            &self.cube_opts,
            &self.cube_opts,
            &self.l0ab_opts,
            &self.l0ab_opts,
            &self.l0c_opts,
            &self.bank_opts,
            &self.bank_opts,
            &self.bank_opts,
            &self.l1_opts,
            &self.ub_opts,
            &self.pb_opts,
            &self.icache_opts,
        ]
    }

    /// Decodes an option-index genome into a configuration (indices are
    /// clamped into range).
    pub fn decode(&self, genome: &[usize; GENOME_LEN]) -> AscendConfig {
        let lists = self.gene_lists();
        let pick = |i: usize| lists[i][genome[i].min(lists[i].len() - 1)];
        AscendConfig {
            cube_m: pick(0),
            cube_n: pick(1),
            cube_k: pick(2),
            l0a_kb: pick(3),
            l0b_kb: pick(4),
            l0c_kb: pick(5),
            l0a_banks: pick(6),
            l0b_banks: pick(7),
            l0c_banks: pick(8),
            l1_kb: pick(9),
            ub_kb: pick(10),
            pb_kb: pick(11),
            icache_kb: pick(12),
        }
    }

    /// Encodes a configuration into a genome (nearest option per gene).
    pub fn encode_genome(&self, hw: &AscendConfig) -> [usize; GENOME_LEN] {
        let lists = self.gene_lists();
        let vals = [
            hw.cube_m,
            hw.cube_n,
            hw.cube_k,
            hw.l0a_kb,
            hw.l0b_kb,
            hw.l0c_kb,
            hw.l0a_banks,
            hw.l0b_banks,
            hw.l0c_banks,
            hw.l1_kb,
            hw.ub_kb,
            hw.pb_kb,
            hw.icache_kb,
        ];
        std::array::from_fn(|i| {
            lists[i]
                .iter()
                .enumerate()
                .min_by_key(|(_, &o)| o.abs_diff(vals[i]))
                .map(|(idx, _)| idx)
                .unwrap_or(0)
        })
    }

    /// Samples a uniformly random configuration.
    pub fn sample(&self, rng: &mut StdRng) -> AscendConfig {
        let lists = self.gene_lists();
        let genome = std::array::from_fn(|i| rng.gen_range(0..lists[i].len()));
        self.decode(&genome)
    }

    /// Perturbs one gene by a small option step.
    pub fn perturb(&self, rng: &mut StdRng, hw: &AscendConfig) -> AscendConfig {
        let mut genome = self.encode_genome(hw);
        let g = rng.gen_range(0..GENOME_LEN);
        let card = self.gene_lists()[g].len() as i64;
        let step = rng.gen_range(1..=2i64) * if rng.gen_bool(0.5) { 1 } else { -1 };
        genome[g] = (genome[g] as i64 + step).clamp(0, card - 1) as usize;
        self.decode(&genome)
    }

    /// Uniform genome crossover.
    pub fn crossover(&self, rng: &mut StdRng, a: &AscendConfig, b: &AscendConfig) -> AscendConfig {
        let ga = self.encode_genome(a);
        let gb = self.encode_genome(b);
        let genome = std::array::from_fn(|i| if rng.gen_bool(0.5) { ga[i] } else { gb[i] });
        self.decode(&genome)
    }

    /// Normalized `[0, 1]^13` feature encoding for the GP surrogate.
    pub fn features(&self, hw: &AscendConfig) -> Vec<f64> {
        let lists = self.gene_lists();
        let genome = self.encode_genome(hw);
        genome
            .iter()
            .enumerate()
            .map(|(i, &g)| {
                let n = lists[i].len();
                if n > 1 {
                    g as f64 / (n - 1) as f64
                } else {
                    0.0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn space_is_large() {
        let s = AscendSpace::default();
        assert!(s.size() as f64 > 1e7, "size {}", s.size());
    }

    #[test]
    fn genome_roundtrip() {
        let s = AscendSpace::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let hw = s.sample(&mut rng);
            assert_eq!(s.decode(&s.encode_genome(&hw)), hw);
        }
    }

    #[test]
    fn expert_default_is_in_space() {
        let s = AscendSpace::default();
        let d = AscendConfig::expert_default();
        assert_eq!(s.decode(&s.encode_genome(&d)), d);
        assert_eq!(d.cube_macs(), 4096);
    }

    #[test]
    fn features_unit_box() {
        let s = AscendSpace::default();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let f = s.features(&s.sample(&mut rng));
            assert_eq!(f.len(), GENOME_LEN);
            assert!(f.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn perturb_changes_one_gene_at_most() {
        let s = AscendSpace::default();
        let mut rng = StdRng::seed_from_u64(3);
        let hw = AscendConfig::expert_default();
        for _ in 0..50 {
            let p = s.perturb(&mut rng, &hw);
            let ga = s.encode_genome(&hw);
            let gb = s.encode_genome(&p);
            let diff = ga.iter().zip(&gb).filter(|(a, b)| a != b).count();
            assert!(diff <= 1);
        }
    }

    #[test]
    fn display_mentions_cube() {
        assert!(AscendConfig::expert_default()
            .to_string()
            .contains("cube 16x16x16"));
    }
}
