//! The cycle-level Ascend-like core model.

use unico_mapping::{Mapping, MappingCost, MappingOutcome};
use unico_model::{EngineTag, EvalCache, EvalError, EvalKey, EvalKeyBuilder, Ppa};
use unico_workloads::{Dim, LoopNest};

use crate::config::AscendConfig;
use crate::pipeline::{PipelineSim, StageSpec};

/// Technology constants of the Ascend-like model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AscendTech {
    /// Core clock, Hz.
    pub clock_hz: f64,
    /// DRAM bytes per cycle (MTE2 rate).
    pub dram_bytes_per_cycle: f64,
    /// L1 → L0 bytes per cycle per MTE1 engine.
    pub l0_bytes_per_cycle: f64,
    /// L0C → UB bytes per cycle (fixpipe rate).
    pub fixp_bytes_per_cycle: f64,
    /// Vector unit lanes (elements per cycle).
    pub vector_lanes: f64,
    /// Cube pipeline depth (beats of latency per tile).
    pub cube_pipe_depth: f64,
    /// Energy per cube MAC, pJ.
    pub e_mac_pj: f64,
    /// Energy per byte in L0 buffers, pJ.
    pub e_l0_pj_per_byte: f64,
    /// Energy per byte in L1/UB, pJ.
    pub e_l1_pj_per_byte: f64,
    /// Energy per DRAM byte, pJ.
    pub e_dram_pj_per_byte: f64,
    /// Leakage, mW per mm².
    pub leakage_mw_per_mm2: f64,
    /// Fixed die overhead (I/O ring, host interface, control), mm².
    pub area_base_mm2: f64,
    /// Area per cube MAC, mm².
    pub area_cube_mm2_per_mac: f64,
    /// Area per KiB of L0 SRAM, mm² (multi-ported, expensive).
    pub area_l0_mm2_per_kb: f64,
    /// Area per KiB of L1/UB SRAM, mm².
    pub area_l1_mm2_per_kb: f64,
    /// Simulated seconds charged per evaluation (base).
    pub sim_cost_base_s: f64,
    /// Additional simulated seconds per GMAC of workload.
    pub sim_cost_per_gmac_s: f64,
}

impl Default for AscendTech {
    fn default() -> Self {
        AscendTech {
            clock_hz: 1.0e9,
            dram_bytes_per_cycle: 48.0,
            l0_bytes_per_cycle: 256.0,
            fixp_bytes_per_cycle: 128.0,
            vector_lanes: 128.0,
            cube_pipe_depth: 8.0,
            e_mac_pj: 0.35,
            e_l0_pj_per_byte: 0.15,
            e_l1_pj_per_byte: 0.35,
            e_dram_pj_per_byte: 10.0,
            leakage_mw_per_mm2: 5.0,
            area_base_mm2: 2.0,
            area_cube_mm2_per_mac: 0.0030,
            area_l0_mm2_per_kb: 0.010,
            area_l1_mm2_per_kb: 0.0035,
            sim_cost_base_s: 120.0,
            sim_cost_per_gmac_s: 12.0,
        }
    }
}

/// GEMM view of an L1 tile on the cube unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TileGemm {
    m: u64,
    n: u64,
    k: u64,
}

impl TileGemm {
    fn of(mapping: &Mapping) -> TileGemm {
        let t = mapping.l1_tile();
        TileGemm {
            m: t[Dim::N.index()] * t[Dim::Y.index()] * t[Dim::X.index()],
            n: t[Dim::K.index()],
            k: t[Dim::C.index()] * t[Dim::R.index()] * t[Dim::S.index()],
        }
    }
}

/// Per-stage diagnosis of one simulated layer execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AscendBreakdown {
    /// Utilization of each pipeline stage
    /// `[MTE2, MTE1, CUBE, FIXP, VEC]` as busy-cycles / total-cycles.
    pub stage_utilization: [f64; 5],
    /// Name of the busiest stage.
    pub bottleneck: &'static str,
    /// Utilization of the busiest stage.
    pub bottleneck_utilization: f64,
    /// Number of L1 tiles streamed through the pipeline.
    pub total_tiles: u64,
}

/// The Ascend-like cycle-level PPA model.
#[derive(Debug, Clone, Copy, Default)]
pub struct AscendModel {
    tech: AscendTech,
}

impl AscendModel {
    /// Creates a model with explicit technology constants.
    pub fn new(tech: AscendTech) -> Self {
        AscendModel { tech }
    }

    /// Technology constants in use.
    pub fn tech(&self) -> &AscendTech {
        &self.tech
    }

    /// Silicon area of a configuration, mm².
    pub fn area_mm2(&self, hw: &AscendConfig) -> f64 {
        let t = &self.tech;
        t.area_base_mm2
            + hw.cube_macs() as f64 * t.area_cube_mm2_per_mac
            + f64::from(hw.l0a_kb + hw.l0b_kb + hw.l0c_kb) * t.area_l0_mm2_per_kb
            + f64::from(hw.l1_kb + hw.ub_kb + hw.pb_kb + hw.icache_kb) * t.area_l1_mm2_per_kb
    }

    /// Simulated wall-clock seconds one evaluation of `nest` costs
    /// (CAModels take minutes; cost grows with workload size, capped at
    /// 10 minutes as in the paper's 2–10 min range).
    pub fn eval_cost_seconds(&self, nest: &LoopNest) -> f64 {
        let gmacs = nest.macs() as f64 / 1e9;
        (self.tech.sim_cost_base_s + self.tech.sim_cost_per_gmac_s * gmacs).min(600.0)
    }

    /// Evaluates one `(hardware, mapping, nest)` triple by simulating the
    /// tile pipeline cycle-by-cycle (with steady-state extrapolation).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if any tile working set overflows its
    /// buffer: L0A/L0B/L0C per bank group, the fusion tile in L1, or the
    /// output tile in the unified buffer.
    pub fn evaluate(
        &self,
        hw: &AscendConfig,
        mapping: &Mapping,
        nest: &LoopNest,
    ) -> Result<Ppa, EvalError> {
        self.evaluate_with_breakdown(hw, mapping, nest)
            .map(|(ppa, _)| ppa)
    }

    /// Like [`AscendModel::evaluate`] but also returns the per-stage
    /// utilization diagnosis.
    ///
    /// # Errors
    ///
    /// See [`AscendModel::evaluate`].
    pub fn evaluate_with_breakdown(
        &self,
        hw: &AscendConfig,
        mapping: &Mapping,
        nest: &LoopNest,
    ) -> Result<(Ppa, AscendBreakdown), EvalError> {
        let t = &self.tech;
        let g = TileGemm::of(mapping);

        // --- Buffer feasibility. ---
        let l0a_need = g.m * g.k * 2;
        let l0a_have = u64::from(hw.l0a_kb) * 1024 / u64::from(hw.l0a_banks);
        if l0a_need > l0a_have {
            return Err(EvalError::L1Overflow {
                required: l0a_need,
                available: l0a_have,
            });
        }
        let l0b_need = g.k * g.n * 2;
        let l0b_have = u64::from(hw.l0b_kb) * 1024 / u64::from(hw.l0b_banks);
        if l0b_need > l0b_have {
            return Err(EvalError::L1Overflow {
                required: l0b_need,
                available: l0b_have,
            });
        }
        let l0c_need = g.m * g.n * 4;
        let l0c_have = u64::from(hw.l0c_kb) * 1024 / u64::from(hw.l0c_banks);
        if l0c_need > l0c_have {
            return Err(EvalError::L1Overflow {
                required: l0c_need,
                available: l0c_have,
            });
        }
        let fp2 = mapping.l2_footprint(nest, 2);
        let l1_need = fp2.total() * 2;
        let l1_have = u64::from(hw.l1_kb) * 1024;
        if l1_need > l1_have {
            return Err(EvalError::L2Overflow {
                required: l1_need,
                available: l1_have,
            });
        }
        let ub_need = g.m * g.n * 2 * 2; // double-buffered fp16 output tile
        let ub_have = u64::from(hw.ub_kb) * 1024;
        if ub_need > ub_have {
            return Err(EvalError::L2Overflow {
                required: ub_need,
                available: ub_have,
            });
        }

        // --- Per-tile stage durations (cycles). ---
        let fp1 = mapping.l1_footprint(nest, 2);
        let tiles_per_l2 = mapping.num_l1_tiles_per_l2().max(1);
        let l2_tiles = mapping.num_l2_tiles(nest).max(1);
        let total_tiles = tiles_per_l2 * l2_tiles;

        // DRAM traffic amortized per tile: fusion tile fetched once per
        // L2 tile, outputs written once.
        let dram_bytes_total = (fp2.total() * l2_tiles) as f64;
        let mte2 = dram_bytes_total / total_tiles as f64 / t.dram_bytes_per_cycle;
        // MTE1: two engines move A and B concurrently.
        let mte1 = ((fp1.input as f64).max(fp1.weight as f64)) / t.l0_bytes_per_cycle;
        let cube_beats = g.m.div_ceil(u64::from(hw.cube_m)) as f64
            * g.n.div_ceil(u64::from(hw.cube_n)) as f64
            * g.k.div_ceil(u64::from(hw.cube_k)) as f64
            + t.cube_pipe_depth;
        let fixp = (g.m * g.n * 4) as f64 / t.fixp_bytes_per_cycle;
        let vec = (g.m * g.n) as f64 / t.vector_lanes;

        // Instruction / parameter overheads.
        let icache_penalty = if hw.icache_kb < 32 { 8.0 } else { 0.0 };
        let pb_penalty = if u64::from(hw.pb_kb) * 1024 < g.n * 8 {
            (g.n * 8) as f64 / t.dram_bytes_per_cycle
        } else {
            0.0
        };

        let durations = [
            mte2 + icache_penalty + pb_penalty,
            mte1,
            cube_beats,
            fixp,
            vec,
        ];
        let stages = vec![
            StageSpec {
                name: "mte2",
                out_depth: 2,
            },
            StageSpec {
                name: "mte1",
                out_depth: hw.l0a_banks.min(hw.l0b_banks),
            },
            StageSpec {
                name: "cube",
                out_depth: hw.l0c_banks,
            },
            StageSpec {
                name: "fixp",
                out_depth: 2,
            },
            StageSpec {
                name: "vec",
                out_depth: 2,
            },
        ];
        let mut pipe = PipelineSim::new(stages);
        let finish = pipe.run_uniform(&durations, total_tiles);
        let total_cycles = finish + l2_tiles as f64 * 32.0 + 4000.0;
        let latency_s = total_cycles / t.clock_hz;
        let busy = pipe.stage_busy_cycles();
        let stage_utilization: [f64; 5] =
            std::array::from_fn(|i| (busy[i] / total_cycles).clamp(0.0, 1.0));
        let stage_names = ["mte2", "mte1", "cube", "fixp", "vec"];
        let (bi, &bu) = stage_utilization
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("five-stage pipeline");
        let breakdown = AscendBreakdown {
            stage_utilization,
            bottleneck: stage_names[bi],
            bottleneck_utilization: bu,
            total_tiles,
        };

        // --- Energy. ---
        let macs = nest.macs() as f64;
        // Cube beats waste energy on padding when tile dims don't divide
        // the intrinsic.
        let cube_energy = (cube_beats - t.cube_pipe_depth)
            * hw.cube_macs() as f64
            * t.e_mac_pj
            * total_tiles as f64;
        let l0_bytes =
            ((fp1.input + fp1.weight) as f64 + (g.m * g.n * 4) as f64) * total_tiles as f64;
        let l1_bytes = (fp1.total() * total_tiles) as f64 + dram_bytes_total;
        let area = self.area_mm2(hw);
        let energy_pj = cube_energy.max(macs * t.e_mac_pj)
            + l0_bytes * t.e_l0_pj_per_byte
            + l1_bytes * t.e_l1_pj_per_byte
            + dram_bytes_total * t.e_dram_pj_per_byte
            + t.leakage_mw_per_mm2 * area * latency_s * 1e9;
        let power_mw = energy_pj / (latency_s * 1e9);

        Ok((
            Ppa {
                latency_s,
                power_mw,
                area_mm2: area,
                energy_pj,
            },
            breakdown,
        ))
    }
}

/// [`MappingCost`] adapter binding the Ascend model to `(hw, nest)`.
#[derive(Debug, Clone, Copy)]
pub struct BoundAscendCost<'a> {
    model: &'a AscendModel,
    hw: AscendConfig,
    nest: LoopNest,
    cache: Option<&'a EvalCache>,
    batch_eval: bool,
}

impl<'a> BoundAscendCost<'a> {
    /// Binds the model to a configuration and loop nest.
    pub fn new(model: &'a AscendModel, hw: AscendConfig, nest: LoopNest) -> Self {
        BoundAscendCost {
            model,
            hw,
            nest,
            cache: None,
            batch_eval: true,
        }
    }

    /// Memoizes evaluations in `cache`.
    pub fn with_cache(mut self, cache: Option<&'a EvalCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Enables or disables the batched cache path (`true` by default;
    /// see `UNICO_BATCH_EVAL`).
    pub fn with_batch_eval(mut self, enabled: bool) -> Self {
        self.batch_eval = enabled;
        self
    }

    fn eval_key(&self, mapping: &Mapping) -> EvalKey {
        ascend_eval_key(&self.hw, mapping, &self.nest)
    }

    fn evaluate_cached(&self, mapping: &Mapping) -> Result<Ppa, EvalError> {
        match self.cache {
            Some(cache) => cache.get_or_compute(self.eval_key(mapping), || {
                self.model.evaluate(&self.hw, mapping, &self.nest)
            }),
            None => self.model.evaluate(&self.hw, mapping, &self.nest),
        }
    }
}

/// The canonical cache key for the Ascend-like cycle model. The model
/// prices the L1 GEMM tile and the buffer footprints only — it never
/// reads the temporal order or the spatial dims — so the key hashes the
/// tile extents alone and order permutations of the same tiling hit the
/// same entry.
pub fn ascend_eval_key(hw: &AscendConfig, mapping: &Mapping, nest: &LoopNest) -> EvalKey {
    let mut b = ascend_key_prefix(hw, nest);
    b.mapping_tiles(mapping, nest);
    b.finish()
}

/// The hardware + nest prefix of [`ascend_eval_key`], shared by every
/// mapping of one `(hw, nest)` binding. Batch lookups clone it per
/// candidate instead of re-hashing the 13 configuration words and the
/// nest each time.
pub fn ascend_key_prefix(hw: &AscendConfig, nest: &LoopNest) -> EvalKeyBuilder {
    let mut b = EvalKeyBuilder::new(EngineTag::Ascend);
    for w in [
        hw.cube_m,
        hw.cube_n,
        hw.cube_k,
        hw.l0a_kb,
        hw.l0b_kb,
        hw.l0c_kb,
        hw.l0a_banks,
        hw.l0b_banks,
        hw.l0c_banks,
        hw.l1_kb,
        hw.ub_kb,
        hw.pb_kb,
        hw.icache_kb,
    ] {
        b.word(u64::from(w));
    }
    b.nest(nest);
    b
}

fn outcome(r: Result<Ppa, EvalError>) -> Option<MappingOutcome> {
    match r {
        Ok(ppa) => Some(MappingOutcome {
            loss: ppa.latency_s,
            latency_s: ppa.latency_s,
            power_mw: ppa.power_mw,
        }),
        Err(_) => None,
    }
}

impl MappingCost for BoundAscendCost<'_> {
    fn assess(&self, mapping: &Mapping) -> Option<MappingOutcome> {
        outcome(self.evaluate_cached(mapping))
    }

    fn assess_batch(&self, mappings: &[Mapping]) -> Vec<Option<MappingOutcome>> {
        let Some(cache) = self.cache.filter(|_| self.batch_eval) else {
            // Without a cache there is nothing to amortize for the cycle
            // model (it reads the Mapping struct directly), so fall back
            // to the scalar loop — bitwise the same by definition.
            return mappings.iter().map(|m| self.assess(m)).collect();
        };
        let prefix = ascend_key_prefix(&self.hw, &self.nest);
        let keys: Vec<EvalKey> = mappings
            .iter()
            .map(|m| {
                let mut kb = prefix.clone();
                kb.mapping_tiles(m, &self.nest);
                kb.finish()
            })
            .collect();
        cache
            .get_or_compute_batch(&keys, |i| {
                self.model.evaluate(&self.hw, &mappings[i], &self.nest)
            })
            .into_iter()
            .map(outcome)
            .collect()
    }

    fn eval_cost_seconds(&self) -> f64 {
        self.model.eval_cost_seconds(&self.nest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unico_workloads::TensorOp;

    fn nest() -> LoopNest {
        TensorOp::Conv2d {
            n: 1,
            k: 32,
            c: 16,
            y: 64,
            x: 64,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest()
    }

    fn fitting_mapping(n: &LoopNest) -> Mapping {
        let mut l2 = n.extents();
        l2[Dim::Y.index()] = 16;
        let mut l1 = [1u64; 7];
        l1[Dim::Y.index()] = 8;
        l1[Dim::X.index()] = 8;
        l1[Dim::K.index()] = 16;
        l1[Dim::C.index()] = 16;
        l1[Dim::R.index()] = 3;
        l1[Dim::S.index()] = 3;
        Mapping::new(n, l2, l1, Dim::ALL, (Dim::K, Dim::Y))
    }

    #[test]
    fn evaluates_default_config() {
        let m = AscendModel::default();
        let n = nest();
        let ppa = m
            .evaluate(&AscendConfig::expert_default(), &fitting_mapping(&n), &n)
            .unwrap();
        assert!(ppa.latency_s > 0.0);
        assert!(ppa.power_mw > 0.0);
        assert!(
            (5.0..200.0).contains(&ppa.area_mm2),
            "area {}",
            ppa.area_mm2
        );
    }

    #[test]
    fn l0_overflow_detected() {
        let m = AscendModel::default();
        let n = nest();
        let huge = Mapping::identity(&n);
        assert!(m
            .evaluate(&AscendConfig::expert_default(), &huge, &n)
            .is_err());
    }

    #[test]
    fn bigger_cube_is_faster_on_big_gemm() {
        let m = AscendModel::default();
        let n = TensorOp::Gemm {
            m: 512,
            n: 512,
            k: 512,
        }
        .to_loop_nest();
        let mut l1 = [1u64; 7];
        l1[Dim::Y.index()] = 64; // m tile
        l1[Dim::K.index()] = 32; // n tile
        l1[Dim::C.index()] = 64; // k tile
        let mut l2 = [1u64; 7];
        l2[Dim::Y.index()] = 128;
        l2[Dim::K.index()] = 128;
        l2[Dim::C.index()] = 512;
        let map = Mapping::new(&n, l2, l1, Dim::ALL, (Dim::K, Dim::Y));
        let small = AscendConfig {
            cube_m: 8,
            cube_n: 8,
            cube_k: 8,
            ..AscendConfig::expert_default()
        };
        let big = AscendConfig {
            cube_m: 32,
            cube_n: 32,
            cube_k: 32,
            ..AscendConfig::expert_default()
        };
        let lat_small = m.evaluate(&small, &map, &n).unwrap().latency_s;
        let lat_big = m.evaluate(&big, &map, &n).unwrap().latency_s;
        assert!(lat_big < lat_small);
    }

    #[test]
    fn single_banked_l0_serializes_and_slows() {
        let m = AscendModel::default();
        let n = nest();
        let map = fitting_mapping(&n);
        let db = AscendConfig::expert_default();
        let sb = AscendConfig {
            l0a_banks: 1,
            l0b_banks: 1,
            l0c_banks: 1,
            ..db
        };
        let lat_db = m.evaluate(&db, &map, &n).unwrap().latency_s;
        let lat_sb = m.evaluate(&sb, &map, &n).unwrap().latency_s;
        assert!(lat_sb > lat_db, "single-bank {lat_sb} vs double {lat_db}");
    }

    #[test]
    fn eval_cost_in_camodel_range() {
        let m = AscendModel::default();
        let small = nest();
        let cost = m.eval_cost_seconds(&small);
        assert!((120.0..=600.0).contains(&cost));
        let big = TensorOp::Conv2d {
            n: 1,
            k: 256,
            c: 128,
            y: 512,
            x: 512,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest();
        assert!(m.eval_cost_seconds(&big) > cost);
        assert_eq!(
            m.eval_cost_seconds(&big),
            600.0,
            "huge workloads cap at 10 min"
        );
    }

    #[test]
    fn bound_cost_reports_latency_loss() {
        let m = AscendModel::default();
        let n = nest();
        let c = BoundAscendCost::new(&m, AscendConfig::expert_default(), n);
        let out = c.assess(&fitting_mapping(&n)).unwrap();
        assert_eq!(out.loss, out.latency_s);
        assert!(c.eval_cost_seconds() >= 120.0);
    }

    #[test]
    fn breakdown_reports_consistent_utilization() {
        let m = AscendModel::default();
        let n = nest();
        let (_, bd) = m
            .evaluate_with_breakdown(&AscendConfig::expert_default(), &fitting_mapping(&n), &n)
            .unwrap();
        assert!(bd.total_tiles > 0);
        for u in bd.stage_utilization {
            assert!((0.0..=1.0).contains(&u), "utilization {u}");
        }
        let max = bd.stage_utilization.iter().copied().fold(0.0f64, f64::max);
        assert!((bd.bottleneck_utilization - max).abs() < 1e-9);
        assert!(["mte2", "mte1", "cube", "fixp", "vec"].contains(&bd.bottleneck));
    }

    #[test]
    fn cube_bound_mapping_reports_cube_bottleneck() {
        // Deep reduction, small output: cube beats dominate every other
        // stage.
        let m = AscendModel::default();
        let n = TensorOp::Gemm {
            m: 256,
            n: 256,
            k: 4096,
        }
        .to_loop_nest();
        let mut l1 = [1u64; 7];
        l1[Dim::Y.index()] = 32; // m tile
        l1[Dim::K.index()] = 32; // n tile
        l1[Dim::C.index()] = 128; // k tile
        let mut l2 = [1u64; 7];
        l2[Dim::Y.index()] = 64;
        l2[Dim::K.index()] = 64;
        l2[Dim::C.index()] = 512;
        let map = Mapping::new(&n, l2, l1, Dim::ALL, (Dim::K, Dim::Y));
        let small_cube = AscendConfig {
            cube_m: 8,
            cube_n: 8,
            cube_k: 8,
            ..AscendConfig::expert_default()
        };
        let (_, bd) = m.evaluate_with_breakdown(&small_cube, &map, &n).unwrap();
        assert_eq!(bd.bottleneck, "cube", "breakdown: {bd:?}");
    }

    #[test]
    fn area_cap_relevant_configs_exist() {
        let m = AscendModel::default();
        let max = AscendConfig {
            cube_m: 32,
            cube_n: 32,
            cube_k: 32,
            l0a_kb: 256,
            l0b_kb: 256,
            l0c_kb: 512,
            l1_kb: 2048,
            ub_kb: 512,
            ..AscendConfig::expert_default()
        };
        assert!(m.area_mm2(&max) > m.area_mm2(&AscendConfig::expert_default()));
        assert!(m.area_mm2(&max) < 300.0);
    }
}
