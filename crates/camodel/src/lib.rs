//! Cycle-level simulator for an Ascend-like accelerator core.
//!
//! This crate is the *expensive, high-fidelity* PPA engine of the UNICO
//! stack — the stand-in for the proprietary cycle-accurate model
//! (CAModel) the paper uses for its industrial case study. It models a
//! DaVinci-style core:
//!
//! * a 3-D **cube unit** computing an `M×N×K` matrix-multiply intrinsic
//!   per pipeline beat;
//! * **L0A / L0B / L0C** operand buffers with configurable sizes and bank
//!   groups (bank groups ≥ 2 enable double buffering, decoupling the
//!   transfer engines from the cube);
//! * an **L1** staging buffer fed from DRAM by MTE2, a **unified/vector
//!   buffer** for post-processing, a parameter buffer and an ICache;
//! * **MTE transfer engines** whose per-tile move times contend with
//!   compute through an explicit pipeline-timeline simulation of every
//!   tile (with steady-state extrapolation for very long tile streams).
//!
//! Workload execution follows the depth-first buffer-fusion style the
//! paper cites: output rows are tiled first, the `(M, N, K)` GEMM view of
//! each tile is blocked to the cube intrinsic, and the crate ships a
//! deterministic [`DepthFirstFusionSearch`] mapping tool mirroring that
//! scheme.
//!
//! Every evaluation charges minutes of *simulated* wall-clock cost
//! (`eval_cost_seconds`), reproducing the regime where each CAModel call
//! costs 2–10 minutes and search efficiency dominates.
//!
//! # Example
//!
//! ```
//! use unico_camodel::{AscendModel, AscendConfig};
//! use unico_workloads::TensorOp;
//! use unico_mapping::Mapping;
//!
//! let model = AscendModel::default();
//! let hw = AscendConfig::expert_default();
//! let nest = TensorOp::Conv2d { n: 1, k: 32, c: 16, y: 32, x: 32, r: 3, s: 3, stride: 1 }
//!     .to_loop_nest();
//! let mapping = unico_camodel::DepthFirstFusionSearch::seed_mapping(&hw, &nest);
//! let ppa = model.evaluate(&hw, &mapping, &nest).expect("seed mapping fits");
//! assert!(ppa.latency_s > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod dfsearch;
mod pipeline;
mod platform;
mod sim;

pub use config::{AscendConfig, AscendSpace};
pub use dfsearch::DepthFirstFusionSearch;
pub use pipeline::{PipelineSim, StageSpec};
pub use platform::AscendPlatform;
pub use sim::{
    ascend_eval_key, ascend_key_prefix, AscendBreakdown, AscendModel, AscendTech, BoundAscendCost,
};
