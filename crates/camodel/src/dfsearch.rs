//! Depth-first buffer-fusion mapping search for the Ascend-like core.
//!
//! Mirrors the paper's description of the industrial SW mapping tool: a
//! *depth-first* exploration that fuses output rows into L1-resident
//! tiles (line-buffer style) and blocks each tile to the cube intrinsic,
//! followed by local refinement. The enumeration phase is deterministic
//! (a fixed ladder of fusion depths and cube-aligned block shapes); the
//! refinement phase is a seeded stochastic hill climb over the same
//! mapping space.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use unico_mapping::{
    Mapping, MappingCost, MappingOutcome, MappingSearcher, MappingSpace, SearchHistory,
};
use unico_workloads::{Dim, LoopNest, DIM_COUNT};

use crate::config::AscendConfig;

/// Depth-first fusion mapping search (see module docs).
#[derive(Debug)]
pub struct DepthFirstFusionSearch {
    space: MappingSpace,
    rng: StdRng,
    history: SearchHistory,
    queue: Vec<Mapping>,
    best: Option<(Mapping, MappingOutcome)>,
}

impl DepthFirstFusionSearch {
    /// Creates the search for `(hw, nest)`; `seed` controls the
    /// refinement phase only — the enumeration ladder is deterministic.
    pub fn new(hw: &AscendConfig, nest: &LoopNest, seed: u64) -> Self {
        let mut queue = Self::candidate_ladder(hw, nest);
        queue.reverse(); // evaluate in ladder order via pop()
        DepthFirstFusionSearch {
            space: MappingSpace::new(nest),
            rng: StdRng::seed_from_u64(seed),
            history: SearchHistory::new(),
            queue,
            best: None,
        }
    }

    /// A deterministic cube-aligned, buffer-fitting seed mapping: the
    /// first rung of the enumeration ladder.
    pub fn seed_mapping(hw: &AscendConfig, nest: &LoopNest) -> Mapping {
        Self::build(hw, nest, 1, 1, 1)
    }

    /// Builds one ladder candidate: `n_mult` cube-N columns per tile,
    /// `k_mult` cube-K reduction blocks per tile, `depth_div` divides the
    /// fused row extent staged in L1.
    fn build(
        hw: &AscendConfig,
        nest: &LoopNest,
        n_mult: u64,
        k_mult: u64,
        depth_div: u64,
    ) -> Mapping {
        let ext = nest.extents();
        let mut l1 = [1u64; DIM_COUNT];
        l1[Dim::R.index()] = ext[Dim::R.index()];
        l1[Dim::S.index()] = ext[Dim::S.index()];
        l1[Dim::K.index()] = (u64::from(hw.cube_n) * n_mult).min(ext[Dim::K.index()]);
        let k_budget =
            (u64::from(hw.cube_k) * k_mult).max(ext[Dim::R.index()] * ext[Dim::S.index()]);
        l1[Dim::C.index()] =
            (k_budget / (ext[Dim::R.index()] * ext[Dim::S.index()])).clamp(1, ext[Dim::C.index()]);
        // Fill the M side of L0A / L0C with output pixels.
        let k_tile = l1[Dim::C.index()] * l1[Dim::R.index()] * l1[Dim::S.index()];
        let n_tile = l1[Dim::K.index()];
        let m_from_a =
            (u64::from(hw.l0a_kb) * 1024 / u64::from(hw.l0a_banks)) / (k_tile * 2).max(1);
        let m_from_c =
            (u64::from(hw.l0c_kb) * 1024 / u64::from(hw.l0c_banks)) / (n_tile * 4).max(1);
        let m_from_ub = (u64::from(hw.ub_kb) * 1024) / (n_tile * 4).max(1);
        let m_budget = m_from_a.min(m_from_c).min(m_from_ub).max(1);
        l1[Dim::X.index()] = ext[Dim::X.index()].min(m_budget);
        l1[Dim::Y.index()] = (m_budget / l1[Dim::X.index()]).clamp(1, ext[Dim::Y.index()]);
        // Fusion (L2) tile: full tensor but output rows split depth-first
        // so the working set fits L1.
        let mut l2 = ext;
        l2[Dim::Y.index()] = (ext[Dim::Y.index()] / depth_div)
            .max(l1[Dim::Y.index()])
            .max(1);
        // Depth-first order: fused rows outermost, reduction innermost.
        let order = [Dim::N, Dim::Y, Dim::X, Dim::K, Dim::C, Dim::R, Dim::S];
        let mut mapping = Mapping::new(nest, l2, l1, order, (Dim::K, Dim::Y));
        // Shrink the fusion tile (then, if needed, the L1 tile) until the
        // double-buffered working set fits the L1 staging buffer, so the
        // seed mapping is feasible on any configuration.
        let l1_capacity = u64::from(hw.l1_kb) * 1024;
        for _ in 0..64 {
            if mapping.l2_footprint(nest, 2).total() * 2 <= l1_capacity {
                break;
            }
            let mut l2 = mapping.l2_tile();
            let mut l1 = mapping.l1_tile();
            // Halve the largest L2 dim still above its L1 tile; if none
            // remains, halve the largest L1 dim (L2 clamps with it).
            if let Some(d) = (0..DIM_COUNT)
                .filter(|&d| l2[d] > l1[d])
                .max_by_key(|&d| l2[d] / l1[d].max(1))
            {
                l2[d] = (l2[d] / 2).max(l1[d]).max(1);
            } else if let Some(d) = (0..DIM_COUNT).filter(|&d| l1[d] > 1).max_by_key(|&d| l1[d]) {
                l1[d] = (l1[d] / 2).max(1);
                l2[d] = l2[d].min(l1[d].max(1));
            } else {
                break;
            }
            mapping = Mapping::new(nest, l2, l1, order, (Dim::K, Dim::Y));
        }
        mapping
    }

    /// The deterministic enumeration ladder over fusion depths and cube
    /// block multiples.
    fn candidate_ladder(hw: &AscendConfig, nest: &LoopNest) -> Vec<Mapping> {
        let mut v = Vec::new();
        for depth_div in [1u64, 2, 4, 8, 16] {
            for n_mult in [1u64, 2, 4] {
                for k_mult in [1u64, 2, 4] {
                    let m = Self::build(hw, nest, n_mult, k_mult, depth_div);
                    if !v.contains(&m) {
                        v.push(m);
                    }
                }
            }
        }
        v
    }

    fn offer(&mut self, m: &Mapping, o: MappingOutcome) {
        if self.best.as_ref().is_none_or(|(_, b)| o.loss < b.loss) {
            self.best = Some((m.clone(), o));
        }
    }
}

impl MappingSearcher for DepthFirstFusionSearch {
    fn run_until(&mut self, cost: &dyn MappingCost, budget: u64) {
        while self.history.spent() < budget {
            let candidate = if let Some(c) = self.queue.pop() {
                c
            } else {
                // Refinement: mutate the incumbent (or sample fresh when
                // nothing feasible was found yet).
                match &self.best {
                    Some((m, _)) => {
                        let mut c = self.space.mutate(&mut self.rng, m);
                        // Occasionally take a bigger jump.
                        if self.rng.gen_bool(0.2) {
                            c = self.space.mutate(&mut self.rng, &c);
                        }
                        c
                    }
                    None => self.space.sample(&mut self.rng),
                }
            };
            match cost.assess(&candidate) {
                Some(o) => {
                    self.offer(&candidate, o);
                    self.history.push(o);
                }
                None => self.history.push_infeasible(),
            }
        }
    }

    fn history(&self) -> &SearchHistory {
        &self.history
    }

    fn best(&self) -> Option<(&Mapping, MappingOutcome)> {
        self.best.as_ref().map(|(m, o)| (m, *o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{AscendModel, BoundAscendCost};
    use unico_workloads::TensorOp;

    fn nest() -> LoopNest {
        TensorOp::Conv2d {
            n: 1,
            k: 32,
            c: 16,
            y: 64,
            x: 64,
            r: 3,
            s: 3,
            stride: 1,
        }
        .to_loop_nest()
    }

    #[test]
    fn seed_mapping_fits_default_config() {
        let hw = AscendConfig::expert_default();
        let n = nest();
        let m = DepthFirstFusionSearch::seed_mapping(&hw, &n);
        let model = AscendModel::default();
        assert!(model.evaluate(&hw, &m, &n).is_ok());
    }

    #[test]
    fn ladder_is_deterministic_and_nonempty() {
        let hw = AscendConfig::expert_default();
        let n = nest();
        let a = DepthFirstFusionSearch::candidate_ladder(&hw, &n);
        let b = DepthFirstFusionSearch::candidate_ladder(&hw, &n);
        assert_eq!(a, b);
        assert!(a.len() >= 5, "ladder has {} rungs", a.len());
    }

    #[test]
    fn search_improves_over_seed() {
        let hw = AscendConfig::expert_default();
        let n = nest();
        let model = AscendModel::default();
        let cost = BoundAscendCost::new(&model, hw, n);
        let seed_lat = model
            .evaluate(&hw, &DepthFirstFusionSearch::seed_mapping(&hw, &n), &n)
            .unwrap()
            .latency_s;
        let mut s = DepthFirstFusionSearch::new(&hw, &n, 5);
        s.run_until(&cost, 120);
        let best = s.history().terminal_value();
        assert!(best <= seed_lat, "search {best} vs seed {seed_lat}");
        assert_eq!(s.history().spent(), 120);
    }

    #[test]
    fn resumable_budget_accounting() {
        let hw = AscendConfig::expert_default();
        let n = nest();
        let model = AscendModel::default();
        let cost = BoundAscendCost::new(&model, hw, n);
        let mut s = DepthFirstFusionSearch::new(&hw, &n, 1);
        s.run_until(&cost, 20);
        let b20 = s.history().terminal_value();
        s.run_until(&cost, 80);
        assert_eq!(s.history().spent(), 80);
        assert!(s.history().terminal_value() <= b20);
    }

    #[test]
    fn larger_l0a_admits_deeper_tiles() {
        let n = nest();
        let small = AscendConfig {
            l0a_kb: 16,
            ..AscendConfig::expert_default()
        };
        let big = AscendConfig {
            l0a_kb: 256,
            ..AscendConfig::expert_default()
        };
        let m_small = DepthFirstFusionSearch::seed_mapping(&small, &n);
        let m_big = DepthFirstFusionSearch::seed_mapping(&big, &n);
        let mtile = |m: &Mapping| m.l1_tile()[Dim::Y.index()] * m.l1_tile()[Dim::X.index()];
        assert!(mtile(&m_big) >= mtile(&m_small));
    }
}
