//! UNICO — unified hardware–software co-optimization for robust neural
//! network acceleration.
//!
//! This facade crate re-exports the whole stack so applications can
//! depend on a single crate:
//!
//! * [`workloads`] — tensor operators, loop nests and DNN layer tables;
//! * [`model`] — the analytical spatial-accelerator PPA model and HW
//!   design space;
//! * [`camodel`] — the cycle-level Ascend-like simulator;
//! * [`mapping`] — software mapping space and mapping searchers;
//! * [`surrogate`] — GP surrogate, acquisitions, Pareto & hypervolume;
//! * [`search`] — the co-search environment, SH/MSH, and the HASCO /
//!   NSGA-II / MOBOHB baselines;
//! * [`core`] — the UNICO algorithm, robustness metric and experiment
//!   drivers;
//! * [`serve`] — the `unico-served` job-service daemon: HTTP/JSON API,
//!   bounded worker pool, shared evaluation cache, crash recovery.
//!
//! Real networks enter through [`workloads::frontend`] — a
//! dependency-free ONNX-subset / JSON graph importer — and fuse across
//! layers via [`mapping::search_fusion`] with fused-group cost
//! accounting in [`model`]:
//!
//! ```no_run
//! use unico::prelude::*;
//!
//! let graph = frontend::import_json(include_str!("../tests/fixtures/tiny_cnn.graph.json"))
//!     .expect("valid graph");
//! let platform = SpatialPlatform::edge();
//! let env = CoSearchEnv::with_graphs(&platform, std::slice::from_ref(&graph), EnvConfig::default());
//! let result = Unico::new(UnicoConfig::default()).run(&env);
//! # drop(result);
//! ```
//!
//! # Quickstart
//!
//! ```no_run
//! use unico::prelude::*;
//!
//! let platform = SpatialPlatform::edge();
//! let env = CoSearchEnv::new(&platform, &[zoo::mobilenet_v1()], EnvConfig::default());
//! let result = Unico::new(UnicoConfig::default()).run(&env);
//! if let Some(best) = result.min_euclidean_record() {
//!     println!("best design: {:?}", best.hw);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use unico_camodel as camodel;
pub use unico_core as core;
pub use unico_mapping as mapping;
pub use unico_model as model;
pub use unico_search as search;
pub use unico_serve as serve;
pub use unico_surrogate as surrogate;
pub use unico_workloads as workloads;

/// One-stop imports for typical co-optimization applications.
pub mod prelude {
    pub use unico_camodel::{AscendConfig, AscendPlatform};
    pub use unico_core::{
        experiments::Scale, Checkpoint, CheckpointError, CheckpointPolicy, IterationUpdate,
        RunObserver, RunOptions, Unico, UnicoConfig, UnicoResult,
    };
    pub use unico_mapping::{
        search_fusion, FusionGain, FusionOracle, FusionPlan, FusionStats, Mapping, MappingSearcher,
        MappingSpace,
    };
    pub use unico_model::{
        Dataflow, EvalCache, FusedCostOracle, FusionPricer, HwConfig, HwSpace, Platform,
        SpatialPlatform,
    };
    pub use unico_search::{
        CacheReport, CoSearchEnv, EnvConfig, FaultContext, FaultKind, FaultPlan, FusionReport,
        RetryPolicy, TelemetrySnapshot,
    };
    pub use unico_serve::{JobSpec, JobState, Scheduler, ServeConfig, Server};
    pub use unico_workloads::{
        frontend, zoo, FrontendError, FusionEdge, ImportedGraph, Network, TensorOp,
    };
}
